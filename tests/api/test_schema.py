"""Round-trip property tests for the versioned request/response schema.

Every schema type must satisfy ``from_dict(to_dict(r)) == r`` — also
after a real ``json.dumps``/``json.loads`` cycle, which is what the CLI
``--json`` path and any cross-process consumer actually do.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.schema import (
    SCHEMA_VERSION,
    CommandPayload,
    ErrorInfo,
    EvaluationRequest,
    EvaluationResult,
    FidelityPoint,
    FidelityRequest,
    FidelityResult,
    NetworkDesignSummary,
    NetworkRequest,
    NetworkResult,
    SweepPoint,
    SweepRequest,
    SweepResult,
    payload_from_dict,
)
from repro.arch.breakdown import (
    AreaBreakdown,
    DesignMetrics,
    EnergyBreakdown,
    LatencyBreakdown,
)
from repro.deconv.shapes import DeconvSpec
from repro.errors import SchemaError, ShapeError
from repro.eval.parallel import CycleStats
from repro.workloads.specs import layer_names

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
)


@st.composite
def specs(draw):
    stride = draw(st.integers(1, 4))
    kernel = draw(st.integers(1, 6))
    padding = draw(st.integers(0, max(kernel - 1, 0)))
    try:
        return DeconvSpec(
            input_height=draw(st.integers(1, 6)),
            input_width=draw(st.integers(1, 6)),
            in_channels=draw(st.integers(1, 4)),
            kernel_height=kernel,
            kernel_width=kernel,
            out_channels=draw(st.integers(1, 4)),
            stride=stride,
            padding=padding,
            output_padding=draw(st.integers(0, stride - 1)),
        )
    except ShapeError:
        # Some sampled combinations produce non-positive outputs.
        return DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)


def breakdowns(cls):
    component_names = ("wordline", "bitline", "computation", "decoder", "mux")
    return st.builds(
        cls, **{name: finite for name in component_names}
    )


metrics_values = st.builds(
    DesignMetrics,
    design=names,
    layer=names,
    latency=breakdowns(LatencyBreakdown),
    energy=breakdowns(EnergyBreakdown),
    area=breakdowns(AreaBreakdown),
    cycles=st.integers(0, 10**9),
)

cycle_stats_values = st.builds(
    CycleStats,
    design=names,
    layer=names,
    fold=st.integers(1, 64),
    cycles=st.integers(0, 10**9),
    counters=st.dictionaries(names, st.integers(0, 10**12), max_size=4).map(
        lambda d: tuple(sorted(d.items()))
    ),
)

folds = st.one_of(st.none(), st.just("auto"), st.integers(1, 32))
overrides = st.dictionaries(
    st.sampled_from(("t_adc", "e_mac", "clock_hz", "mux_share")),
    st.one_of(st.integers(1, 8), finite.filter(lambda v: v > 0)),
    max_size=3,
)

evaluation_requests = st.one_of(
    st.builds(
        EvaluationRequest,
        layer=st.sampled_from(layer_names()),
        designs=st.lists(st.sampled_from(("RED", "zp", "padding-free")), max_size=3).map(tuple),
        fold=folds,
        tech_overrides=overrides,
        trace=st.booleans(),
        layer_name=st.one_of(st.just(""), names),
    ),
    st.builds(
        EvaluationRequest,
        spec=specs(),
        fold=folds,
        trace=st.booleans(),
    ),
)


@st.composite
def evaluation_results(draw):
    count = draw(st.integers(1, 3))
    design_names = draw(
        st.lists(names, min_size=count, max_size=count, unique=True)
    )
    traced = draw(st.booleans())
    return EvaluationResult(
        layer=draw(names),
        designs=tuple(design_names),
        metrics=tuple(draw(metrics_values) for _ in range(count)),
        cycle_stats=(
            tuple(
                draw(st.one_of(st.none(), cycle_stats_values))
                for _ in range(count)
            )
            if traced
            else ()
        ),
    )


sweep_requests = st.builds(
    SweepRequest,
    strides=st.lists(st.integers(1, 12), min_size=1, max_size=5).map(tuple),
    input_size=st.integers(1, 16),
    channels=st.integers(1, 64),
    filters=st.integers(1, 64),
    fold=st.one_of(st.just("auto"), st.integers(1, 16)),
    tech_overrides=overrides,
)

error_infos = st.builds(
    ErrorInfo,
    error_type=names,
    message=st.text(max_size=40),
    retryable=st.booleans(),
    source=st.one_of(st.just(""), names),
)

sweep_results = st.builds(
    SweepResult,
    points=st.lists(
        st.builds(
            SweepPoint,
            stride=st.integers(1, 32),
            modes=st.integers(1, 1024),
            cycles_red=st.integers(0, 10**9),
            cycles_zp=st.integers(0, 10**9),
            speedup=finite,
        ),
        max_size=5,
    ).map(tuple),
    fitted_exponent=st.one_of(st.none(), finite),
    failures=st.lists(error_infos, max_size=3).map(tuple),
)

network_requests = st.builds(
    NetworkRequest,
    network=st.sampled_from(("DCGAN", "Improved GAN", "SNGAN", "voc-fcn8s 8x")),
    designs=st.lists(st.sampled_from(("RED", "zero-padding")), max_size=2).map(tuple),
    batch=st.integers(1, 256),
    input_height=st.integers(1, 8),
    input_width=st.integers(1, 8),
    seed=st.integers(0, 2**31),
    tech_overrides=overrides,
)


@st.composite
def network_results(draw):
    design_names = draw(st.lists(names, min_size=1, max_size=2, unique=True))
    layer_labels = draw(st.lists(names, min_size=1, max_size=2, unique=True))
    layer_results = tuple(
        EvaluationResult(
            layer=label,
            designs=tuple(design_names),
            metrics=tuple(draw(metrics_values) for _ in design_names),
        )
        for label in layer_labels
    )
    summaries = tuple(
        NetworkDesignSummary(
            design=design,
            total_latency_s=draw(finite),
            total_energy_j=draw(finite),
            speedup=draw(finite),
            energy_saving=draw(finite),
            fill_latency_s=draw(finite),
            bottleneck_latency_s=draw(finite),
            throughput_per_s=draw(finite),
            chip_area_m2=draw(finite),
        )
        for design in design_names
    )
    return NetworkResult(
        network=draw(names),
        batch=draw(st.integers(1, 64)),
        layers=tuple(layer_labels),
        designs=tuple(design_names),
        layer_results=layer_results,
        summaries=summaries,
    )


positive_times = st.lists(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=4,
).map(tuple)

fidelity_requests = st.one_of(
    st.builds(
        FidelityRequest,
        layer=st.sampled_from(layer_names()),
        designs=st.lists(
            st.sampled_from(("RED", "zp", "padding-free")), max_size=3
        ).map(tuple),
        seeds=st.lists(st.integers(0, 2**31), min_size=1, max_size=4).map(tuple),
        times=positive_times,
        programming_sigma=finite,
        read_noise_sigma=finite,
        stuck_at_rate=st.floats(0.0, 1.0, allow_nan=False),
        adc_bits=st.one_of(st.none(), st.integers(1, 12)),
        tech_overrides=overrides,
        layer_name=st.one_of(st.just(""), names),
    ),
    st.builds(
        FidelityRequest,
        spec=specs(),
        seeds=st.lists(st.integers(0, 2**31), min_size=1, max_size=4).map(tuple),
        times=positive_times,
        max_rows=st.integers(1, 256),
        max_cols=st.integers(1, 256),
    ),
)


@st.composite
def fidelity_results(draw):
    design_names = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    points = tuple(
        FidelityPoint(
            design=design,
            seed=draw(st.integers(0, 2**31)),
            time_s=draw(st.floats(1e-3, 1e9, allow_nan=False)),
            rms_error=draw(finite),
            mean_abs_error=draw(finite),
            max_abs_error=draw(finite),
            stuck_fraction=draw(st.floats(0.0, 1.0, allow_nan=False)),
        )
        for design in design_names
        for _ in range(draw(st.integers(0, 2)))
    )
    return FidelityResult(
        layer=draw(names),
        designs=tuple(design_names),
        energy_j=tuple(draw(finite) for _ in design_names),
        points=points,
    )


command_payloads = st.builds(
    CommandPayload,
    command=names,
    data=st.one_of(
        st.none(),
        st.dictionaries(names, st.one_of(st.integers(), finite, names), max_size=3),
        st.lists(st.integers(), max_size=4),
    ),
    results=st.lists(evaluation_results(), max_size=2).map(tuple),
    text=st.text(max_size=40),
)

all_payloads = st.one_of(
    evaluation_requests,
    evaluation_results(),
    sweep_requests,
    sweep_results,
    network_requests,
    network_results(),
    fidelity_requests,
    fidelity_results(),
    command_payloads,
    error_infos,
)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(all_payloads)
    def test_from_dict_inverts_to_dict(self, payload):
        assert type(payload).from_dict(payload.to_dict()) == payload

    @settings(max_examples=60, deadline=None)
    @given(all_payloads)
    def test_round_trip_survives_json(self, payload):
        wire = json.loads(json.dumps(payload.to_dict()))
        assert payload_from_dict(wire) == payload

    @settings(max_examples=30, deadline=None)
    @given(all_payloads)
    def test_payload_is_json_native_and_version_tagged(self, payload):
        wire = payload.to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["kind"] in (
            "evaluation_request", "evaluation_result", "sweep_request",
            "sweep_result", "network_request", "network_result",
            "fidelity_request", "fidelity_result", "command_result",
            "error_info",
        )
        json.dumps(wire)  # must not raise


class TestStrictValidation:
    def test_wrong_version_rejected(self):
        payload = EvaluationRequest(layer="GAN_Deconv1").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            EvaluationRequest.from_dict(payload)

    def test_unknown_key_rejected(self):
        payload = SweepRequest().to_dict()
        payload["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            SweepRequest.from_dict(payload)

    def test_missing_required_key_rejected(self):
        payload = NetworkRequest(network="SNGAN").to_dict()
        del payload["network"]
        with pytest.raises(SchemaError, match="network"):
            NetworkRequest.from_dict(payload)

    def test_wrong_kind_rejected(self):
        payload = SweepRequest().to_dict()
        with pytest.raises(SchemaError, match="kind"):
            NetworkRequest.from_dict(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown payload kind"):
            payload_from_dict({"kind": "mystery", "schema_version": SCHEMA_VERSION})

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError):
            payload_from_dict([1, 2, 3])

    def test_layer_and_spec_both_set_rejected(self):
        with pytest.raises(SchemaError, match="exactly one"):
            EvaluationRequest(
                layer="GAN_Deconv1", spec=DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)
            )

    def test_neither_layer_nor_spec_rejected(self):
        with pytest.raises(SchemaError, match="exactly one"):
            EvaluationRequest()

    def test_bad_fold_rejected(self):
        with pytest.raises(SchemaError, match="fold"):
            EvaluationRequest(layer="GAN_Deconv1", fold=0)

    def test_unknown_tech_override_rejected(self):
        with pytest.raises(SchemaError, match="t_warp"):
            EvaluationRequest(layer="GAN_Deconv1", tech_overrides={"t_warp": 1.0})

    def test_empty_strides_rejected(self):
        with pytest.raises(SchemaError, match="strides"):
            SweepRequest(strides=())

    def test_bad_batch_rejected(self):
        with pytest.raises(SchemaError, match="batch"):
            NetworkRequest(network="SNGAN", batch=0)

    def test_overrides_are_normalized_and_hash_stable(self):
        a = EvaluationRequest(
            layer="GAN_Deconv1", tech_overrides={"t_adc": 1e-9, "e_mac": 2e-15}
        )
        b = EvaluationRequest(
            layer="GAN_Deconv1", tech_overrides=(("e_mac", 2e-15), ("t_adc", 1e-9))
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_resolved_tech_applies_overrides(self):
        request = EvaluationRequest(layer="GAN_Deconv1", tech_overrides={"t_adc": 1e-9})
        assert request.resolved_tech().t_adc == 1e-9

    def test_mismatched_metrics_length_rejected(self):
        with pytest.raises(SchemaError, match="metrics"):
            EvaluationResult(layer="L", designs=("a", "b"), metrics=())


class TestFidelityValidation:
    def test_layer_and_spec_both_set_rejected(self):
        with pytest.raises(SchemaError, match="exactly one"):
            FidelityRequest(
                layer="GAN_Deconv1",
                spec=DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1),
            )

    def test_empty_seeds_rejected(self):
        with pytest.raises(SchemaError, match="seeds"):
            FidelityRequest(layer="GAN_Deconv1", seeds=())

    def test_negative_seed_rejected(self):
        with pytest.raises(SchemaError, match="seeds"):
            FidelityRequest(layer="GAN_Deconv1", seeds=(0, -1))

    def test_non_positive_time_rejected(self):
        with pytest.raises(SchemaError, match="times"):
            FidelityRequest(layer="GAN_Deconv1", times=(1.0, 0.0))

    def test_stuck_rate_above_one_rejected(self):
        with pytest.raises(SchemaError, match="stuck_at_rate"):
            FidelityRequest(layer="GAN_Deconv1", stuck_at_rate=1.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(SchemaError, match="programming_sigma"):
            FidelityRequest(layer="GAN_Deconv1", programming_sigma=-0.1)

    def test_bool_adc_bits_rejected(self):
        with pytest.raises(SchemaError, match="adc_bits"):
            FidelityRequest(layer="GAN_Deconv1", adc_bits=True)

    def test_zero_max_rows_rejected(self):
        with pytest.raises(SchemaError, match="max_rows"):
            FidelityRequest(layer="GAN_Deconv1", max_rows=0)

    def test_seeds_and_times_normalized(self):
        request = FidelityRequest(layer="GAN_Deconv1", seeds=[2, 3], times=[60, 3600])
        assert request.seeds == (2, 3)
        assert request.times == (60.0, 3600.0)
        assert all(isinstance(t, float) for t in request.times)

    def test_mismatched_energy_length_rejected(self):
        with pytest.raises(SchemaError, match="energies"):
            FidelityResult(layer="L", designs=("a", "b"), energy_j=(1.0,), points=())

    def test_points_for_unknown_design_rejected(self):
        result = FidelityResult(layer="L", designs=("a",), energy_j=(1.0,), points=())
        with pytest.raises(KeyError):
            result.points_for("b")
        with pytest.raises(KeyError):
            result.energy_for("b")

    def test_fidelity_request_unknown_key_rejected(self):
        wire = FidelityRequest(layer="GAN_Deconv1").to_dict()
        wire["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            FidelityRequest.from_dict(wire)


class TestErrorInfo:
    def test_from_exception_transient(self):
        info = ErrorInfo.from_exception(OSError("disk full"), source="stride=4")
        assert info.error_type == "OSError"
        assert info.message == "disk full"
        assert info.retryable
        assert info.source == "stride=4"

    def test_from_exception_permanent(self):
        info = ErrorInfo.from_exception(ShapeError("bad"))
        assert info.error_type == "ShapeError"
        assert not info.retryable
        assert info.source == ""

    def test_empty_error_type_rejected(self):
        with pytest.raises(SchemaError, match="error_type"):
            ErrorInfo(error_type="", message="x")

    def test_non_bool_retryable_rejected(self):
        with pytest.raises(SchemaError, match="retryable"):
            ErrorInfo(error_type="OSError", message="x", retryable=1)

    def test_unknown_key_rejected(self):
        wire = ErrorInfo(error_type="OSError", message="x").to_dict()
        wire["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            ErrorInfo.from_dict(wire)

    def test_sweep_result_failures_must_hold_error_info(self):
        with pytest.raises(SchemaError, match="ErrorInfo"):
            SweepResult(points=(), failures=("stride=2",))

    def test_sweep_result_omits_empty_failures_on_wire(self):
        wire = SweepResult(points=()).to_dict()
        assert "failures" not in wire

    def test_payload_dispatch_rebuilds_error_info(self):
        info = ErrorInfo.from_exception(OSError("boom"), source="cli")
        wire = json.loads(json.dumps(info.to_dict()))
        assert payload_from_dict(wire) == info


class TestSchemaV2:
    """Version negotiation: v1 payloads round-trip, v2 fields downgrade."""

    def test_v1_payload_round_trips_as_v1(self):
        wire = SweepRequest(strides=(1, 2)).to_dict()
        wire["schema_version"] = 1
        parsed = payload_from_dict(wire)
        assert parsed.schema_version == 1
        assert parsed.to_dict()["schema_version"] == 1

    def test_unsupported_version_names_the_supported_set(self):
        wire = SweepRequest(strides=(1, 2)).to_dict()
        wire["schema_version"] = 99
        with pytest.raises(SchemaError, match=r"\[1, 2\]"):
            payload_from_dict(wire)

    def test_retry_after_s_requires_v2(self):
        with pytest.raises(SchemaError, match="retry_after_s"):
            ErrorInfo(
                error_type="OverloadedError",
                message="busy",
                retryable=True,
                retry_after_s=0.5,
                schema_version=1,
            )

    def test_retry_after_s_must_be_positive(self):
        with pytest.raises(SchemaError, match="retry_after_s"):
            ErrorInfo(
                error_type="OverloadedError",
                message="busy",
                retry_after_s=0.0,
            )

    def test_retry_after_s_round_trips_and_omits_when_unset(self):
        info = ErrorInfo(
            error_type="OverloadedError",
            message="busy",
            retryable=True,
            retry_after_s=0.25,
        )
        wire = json.loads(json.dumps(info.to_dict()))
        assert wire["retry_after_s"] == 0.25
        assert payload_from_dict(wire) == info
        bare = ErrorInfo(error_type="OSError", message="x").to_dict()
        assert "retry_after_s" not in bare

    def test_from_exception_carries_retry_hint(self):
        from repro.errors import OverloadedError

        info = ErrorInfo.from_exception(
            OverloadedError("queue full", retry_after_s=0.2)
        )
        assert info.retryable
        assert info.retry_after_s == 0.2

    def test_from_exception_follows_one_cause_level(self):
        from repro.errors import ReproError

        try:
            try:
                raise OSError("disk")
            except OSError as inner:
                raise ReproError("wrapped") from inner
        except ReproError as exc:
            info = ErrorInfo.from_exception(exc)
        assert info.error_type == "ReproError"
        assert info.retryable  # retryability preserved through __cause__

    def test_downgrade_strips_v2_fields_recursively(self):
        from repro.api.schema import downgrade_payload

        result = SweepResult(
            points=(),
            failures=(
                ErrorInfo(
                    error_type="OverloadedError",
                    message="busy",
                    retryable=True,
                    retry_after_s=0.5,
                ),
            ),
        )
        wire = downgrade_payload(result.to_dict(), 1)
        assert wire["schema_version"] == 1
        assert wire["failures"][0]["schema_version"] == 1
        assert "retry_after_s" not in wire["failures"][0]
        parsed = payload_from_dict(wire)
        assert parsed.schema_version == 1

    def test_downgrade_to_unsupported_version_rejected(self):
        from repro.api.schema import downgrade_payload

        with pytest.raises(SchemaError):
            downgrade_payload(SweepRequest(strides=(2,)).to_dict(), 0)
