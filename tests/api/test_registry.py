"""Design-registry behavior: registration, aliases, dispatch, errors."""

import pytest

from repro.api.registry import (
    available_designs,
    baseline_design,
    build_design,
    design_entries,
    get_design,
    register_design,
    resolve_design,
    unregister_design,
)
from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.errors import (
    DuplicateDesignError,
    ParameterError,
    RegistryError,
    UnknownDesignError,
)

SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)


class TestBuiltins:
    def test_registration_order_is_presentation_order(self):
        assert available_designs() == ("zero-padding", "padding-free", "RED")

    def test_baseline_is_zero_padding(self):
        assert baseline_design() == "zero-padding"

    def test_entries_expose_capabilities(self):
        by_name = {entry.name: entry for entry in design_entries()}
        assert by_name["RED"].accepts_fold
        assert by_name["RED"].supports_trace
        assert not by_name["zero-padding"].accepts_fold
        assert by_name["zero-padding"].baseline

    def test_builtins_register_perf_batch_hooks(self):
        """Every built-in design ships a vectorized perf-input hook."""
        from repro.arch.metrics_batch import PerfInputBatch
        from repro.arch.tech import default_tech
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)
        for entry in design_entries():
            assert entry.perf_batch is not None
            batch = entry.perf_batch([spec], ["auto"], default_tech(), ["layer"])
            assert isinstance(batch, PerfInputBatch)
            assert batch.layers == ("layer",)
            assert batch.designs == (entry.name,)

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("zp", "zero-padding"),
            ("zero_padding", "zero-padding"),
            ("pf", "padding-free"),
            ("red", "RED"),
            ("RED", "RED"),
            ("zero-padding", "zero-padding"),
        ],
    )
    def test_alias_resolution(self, alias, canonical):
        assert resolve_design(alias) == canonical

    def test_build_design_dispatch(self):
        for name in available_designs():
            design = build_design(name, SPEC, default_tech())
            assert design.name == name

    def test_build_via_alias(self):
        assert build_design("red", SPEC).name == "RED"

    def test_fold_forwarded_to_fold_aware_designs(self):
        assert build_design("RED", SPEC, fold=2).fold == 2
        # Designs without the parameter silently ignore it.
        assert build_design("zp", SPEC, fold=2).name == "zero-padding"


class TestErrors:
    def test_unknown_design(self):
        with pytest.raises(UnknownDesignError, match="systolic"):
            resolve_design("systolic")

    def test_unknown_design_is_a_key_error(self):
        # Pre-registry callers caught KeyError from the hard-coded dispatch.
        with pytest.raises(KeyError):
            build_design("systolic", SPEC)

    def test_unknown_design_lists_choices(self):
        with pytest.raises(RegistryError, match="zero-padding"):
            get_design("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateDesignError, match="RED"):
            register_design("RED")(lambda spec, tech: None)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(DuplicateDesignError):
            register_design("fresh-name", aliases=("zp",))(lambda spec, tech: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            register_design("")

    def test_second_baseline_rejected(self):
        # There is exactly one normalization reference; a silent second
        # baseline would leave every figure normalizing against the
        # wrong design.
        with pytest.raises(DuplicateDesignError, match="baseline"):
            register_design("usurper", baseline=True)(lambda spec, tech: None)
        with pytest.raises(UnknownDesignError):
            resolve_design("usurper")

    def test_alias_clash_leaves_registry_unchanged(self):
        before = available_designs()
        with pytest.raises(DuplicateDesignError):
            register_design("fresh-name", aliases=("red",))(lambda spec, tech: None)
        assert available_designs() == before
        with pytest.raises(UnknownDesignError):
            resolve_design("fresh-name")


class TestUserRegistration:
    def test_register_design_from_user_module(self):
        """The documented fourth-design flow: decorate a design class."""

        @register_design("toy", aliases=("toy-design",), description="test-only")
        class ToyDesign(ZeroPaddingDesign):
            name = "toy"

        try:
            assert "toy" in available_designs()
            assert resolve_design("TOY-DESIGN") == "toy"
            design = build_design("toy", SPEC)
            assert isinstance(design, ToyDesign)
            assert design.evaluate("L").layer == "L"
        finally:
            unregister_design("toy")
        assert "toy" not in available_designs()
        with pytest.raises(UnknownDesignError):
            resolve_design("toy-design")

    def test_registered_design_flows_through_requests(self):
        from repro.api.schema import EvaluationRequest
        from repro.api.service import RedService

        @register_design("toy2")
        class Toy2Design(ZeroPaddingDesign):
            name = "toy2"

        try:
            result = RedService().evaluate(
                EvaluationRequest(spec=SPEC, designs=("toy2", "RED"))
            )
            assert result.designs == ("toy2", "RED")
            assert result.metrics[0].design == "toy2"
        finally:
            unregister_design("toy2")
