"""RedService facade: request handling, caching, tracing, concurrency."""

import pickle

import pytest

from repro.api.schema import (
    EvaluationRequest,
    EvaluationResult,
    FidelityRequest,
    FidelityResult,
    NetworkRequest,
    NetworkResult,
    SweepRequest,
    SweepResult,
    payload_from_dict,
)
from repro.api.service import RedService
from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import SchemaError, ServiceClosedError, UnknownDesignError
from repro.eval.parallel import CYCLES_KIND, DesignJob, SweepCache, job_key
from repro.eval.store import PackedSweepStore

SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)


@pytest.fixture
def service():
    with RedService() as svc:
        yield svc


class TestEvaluate:
    def test_layer_request_matches_direct_evaluation(self, service):
        from repro.eval.parallel import evaluate_design_job
        from repro.workloads.specs import get_layer

        result = service.evaluate(EvaluationRequest(layer="GAN_Deconv3"))
        assert result.designs == ("zero-padding", "padding-free", "RED")
        direct = evaluate_design_job(
            DesignJob("RED", get_layer("GAN_Deconv3").spec, default_tech(),
                      layer_name="GAN_Deconv3")
        )
        assert result.metrics_for("RED") == direct

    def test_spec_request(self, service):
        result = service.evaluate(EvaluationRequest(spec=SPEC, layer_name="mine"))
        assert result.layer == "mine"
        assert all(m.layer == "mine" for m in result.metrics)

    def test_aliases_resolve_to_canonical_names(self, service):
        result = service.evaluate(
            EvaluationRequest(spec=SPEC, designs=("red", "zp"))
        )
        assert result.designs == ("RED", "zero-padding")
        assert result.metrics[0].design == "RED"

    def test_tech_overrides_change_the_result(self, service):
        plain = service.evaluate(EvaluationRequest(spec=SPEC))
        tuned = service.evaluate(
            EvaluationRequest(spec=SPEC, tech_overrides={"t_adc": 5e-9})
        )
        assert (
            tuned.metrics_for("RED").latency.total
            > plain.metrics_for("RED").latency.total
        )

    def test_unknown_layer_is_a_schema_error(self, service):
        with pytest.raises(SchemaError):
            service.evaluate(EvaluationRequest(layer="GAN_Deconv99"))

    def test_unknown_design_error(self, service):
        with pytest.raises(UnknownDesignError):
            service.evaluate(EvaluationRequest(spec=SPEC, designs=("systolic",)))

    def test_wrong_request_type_rejected(self, service):
        with pytest.raises(SchemaError):
            service.evaluate(SweepRequest())


class TestTrace:
    def test_trace_off_by_default(self, service):
        assert service.evaluate(EvaluationRequest(spec=SPEC)).cycle_stats == ()

    def test_trace_returns_cycle_stats_for_capable_designs(self, service):
        result = service.evaluate(EvaluationRequest(spec=SPEC, trace=True))
        stats = dict(zip(result.designs, result.cycle_stats))
        assert stats["zero-padding"] is None
        assert stats["padding-free"] is None
        red = stats["RED"]
        assert red.cycles == result.metrics_for("RED").cycles
        assert red.fold >= 1
        assert dict(red.counters)["output_pixels"] > 0

    def test_trace_results_persist_in_the_sweep_cache(self, tmp_path):
        request = EvaluationRequest(spec=SPEC, trace=True, layer_name="L")
        cold = RedService(cache=tmp_path).evaluate(request)
        # A path constructs the packed store; a fresh open sees the
        # entries the cold service published.
        store = PackedSweepStore(tmp_path)
        warm_service = RedService(cache=store)
        warm = warm_service.evaluate(request)
        assert warm == cold
        # Every entry was served from the store: three metrics + one cycles.
        assert store.hits == 4
        assert store.misses == 0
        job = DesignJob("RED", SPEC, default_tech(), layer_name="L")
        key = job_key(job, kind=CYCLES_KIND)
        assert key in store
        stats = store.get_many([key], kind=CYCLES_KIND)[0]
        assert stats.cycles == cold.metrics_for("RED").cycles

    def test_legacy_sweep_cache_still_accepted(self, tmp_path):
        request = EvaluationRequest(spec=SPEC, trace=True, layer_name="L")
        cache = SweepCache(tmp_path)
        cold = RedService(cache=cache).evaluate(request)
        warm = RedService(cache=cache).evaluate(request)
        assert warm == cold
        assert cache.hits == 4

    def test_cached_cycle_stats_relabelled(self, tmp_path):
        RedService(cache=tmp_path).evaluate(
            EvaluationRequest(spec=SPEC, trace=True, layer_name="first")
        )
        relabelled = RedService(cache=tmp_path).evaluate(
            EvaluationRequest(spec=SPEC, trace=True, layer_name="second")
        )
        assert relabelled.cycle_stats[-1].layer == "second"


class TestSweep:
    def test_matches_library_sweep(self, service):
        from repro.eval.sweeps import stride_speedup_sweep

        result = service.sweep(SweepRequest(strides=(1, 2, 4)))
        assert list(result.points) == stride_speedup_sweep(strides=(1, 2, 4))

    def test_exponent_requires_two_superunit_strides(self, service):
        assert service.sweep(SweepRequest(strides=(2,))).fitted_exponent is None
        fitted = service.sweep(SweepRequest(strides=(2, 4))).fitted_exponent
        assert fitted == pytest.approx(2.0, abs=0.5)


class TestNetwork:
    def test_summaries_match_network_evaluation(self):
        import numpy as np

        from repro.system.network_mapper import evaluate_network
        from repro.workloads.networks import build_network

        with RedService() as service:
            result = service.evaluate_network(NetworkRequest(network="SNGAN"))
        network = build_network("SNGAN", rng=np.random.default_rng(0))
        evaluation = evaluate_network(network, 1, 1)
        assert result.layers == tuple(m.name for m in evaluation.layers)
        for summary in result.summaries:
            assert summary.total_latency_s == pytest.approx(
                evaluation.total_latency(summary.design)
            )
            assert summary.speedup == pytest.approx(evaluation.speedup(summary.design))

    def test_layer_results_align_with_designs(self, service):
        result = service.evaluate_network(NetworkRequest(network="DCGAN", batch=4))
        assert result.batch == 4
        for layer_result in result.layer_results:
            assert layer_result.designs == result.designs
            assert tuple(m.design for m in layer_result.metrics) == result.designs

    def test_unknown_network_is_a_schema_error(self, service):
        with pytest.raises(SchemaError, match="StyleGAN-XL"):
            service.evaluate_network(NetworkRequest(network="StyleGAN-XL"))

    def test_design_subset_without_baseline_still_rolls_up(self, service):
        # The summaries normalize against the baseline even when the
        # request only asks for RED; the baseline is evaluated
        # internally but not reported.
        result = service.evaluate_network(
            NetworkRequest(network="SNGAN", designs=("RED",))
        )
        assert result.designs == ("RED",)
        assert [s.design for s in result.summaries] == ["RED"]
        full = service.evaluate_network(NetworkRequest(network="SNGAN"))
        assert result.summary_for("RED").speedup == pytest.approx(
            full.summary_for("RED").speedup
        )
        assert result.summary_for("RED").speedup > 1.0


class TestFidelity:
    REQUEST = FidelityRequest(
        spec=SPEC,
        seeds=(0, 1),
        times=(1.0, 3600.0),
        programming_sigma=0.08,
        read_noise_sigma=0.02,
        stuck_at_rate=0.01,
        layer_name="mine",
    )

    def test_matches_direct_sampling(self, service):
        from repro.reram.batch import fidelity_point, profile_for_design

        result = service.fidelity_sweep(self.REQUEST)
        assert result.layer == "mine"
        assert result.designs == ("zero-padding", "padding-free", "RED")
        assert len(result.points) == len(result.designs) * 2 * 2
        profile = profile_for_design("RED", SPEC)
        direct = fidelity_point(
            profile, 1, 3600.0,
            programming_sigma=0.08, read_noise_sigma=0.02, stuck_at_rate=0.01,
        )
        point = [
            p for p in result.points_for("RED") if p.seed == 1 and p.time_s == 3600.0
        ]
        assert len(point) == 1
        assert point[0].rms_error == direct.rms_error
        assert point[0].stuck_fraction == direct.stuck_fraction

    def test_energy_axis_matches_evaluation(self, service):
        result = service.fidelity_sweep(self.REQUEST)
        evaluated = service.evaluate(EvaluationRequest(spec=SPEC))
        for design in result.designs:
            assert result.energy_for(design) == (
                evaluated.metrics_for(design).energy.total
            )

    def test_round_trips_through_the_wire(self, service):
        result = service.fidelity_sweep(self.REQUEST)
        assert payload_from_dict(result.to_dict()) == result
        assert payload_from_dict(self.REQUEST.to_dict()) == self.REQUEST

    def test_submit_dispatches_fidelity_requests(self, service):
        direct = service.fidelity_sweep(self.REQUEST)
        [gathered] = service.gather([service.submit(self.REQUEST)])
        assert isinstance(gathered, FidelityResult)
        assert gathered == direct

    def test_cached_and_uncached_results_identical(self, tmp_path):
        with RedService(cache=PackedSweepStore(tmp_path / "fid")) as cached:
            cold = cached.fidelity_sweep(self.REQUEST)
            warm = cached.fidelity_sweep(self.REQUEST)
        with RedService() as plain:
            uncached = plain.fidelity_sweep(self.REQUEST)
        assert pickle.dumps(cold) == pickle.dumps(warm) == pickle.dumps(uncached)

    def test_wrong_request_type_rejected(self, service):
        with pytest.raises(SchemaError):
            service.fidelity_sweep(EvaluationRequest(spec=SPEC))


class TestConcurrency:
    def test_submit_gather_preserves_order_and_types(self):
        with RedService(service_threads=3) as service:
            futures = [
                service.submit(EvaluationRequest(spec=SPEC)),
                service.submit(SweepRequest(strides=(1, 2))),
                service.submit(NetworkRequest(network="SNGAN")),
                service.submit(EvaluationRequest(layer="FCN_Deconv1")),
            ]
            results = service.gather(futures)
        assert [type(r) for r in results] == [
            EvaluationResult, SweepResult, NetworkResult, EvaluationResult,
        ]
        assert results[0] == RedService().evaluate(EvaluationRequest(spec=SPEC))

    def test_submit_rejects_non_requests(self, service):
        with pytest.raises(SchemaError):
            service.submit({"layer": "GAN_Deconv1"})

    def test_close_is_idempotent_and_retires_submit(self):
        service = RedService()
        future = service.submit(EvaluationRequest(spec=SPEC))
        assert isinstance(future.result(), EvaluationResult)
        service.close()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(EvaluationRequest(spec=SPEC))

    def test_concurrent_requests_share_one_cache(self, tmp_path):
        with RedService(cache=tmp_path, service_threads=4) as service:
            futures = [
                service.submit(EvaluationRequest(spec=SPEC, layer_name=f"j{i}"))
                for i in range(6)
            ]
            results = service.gather(futures)
        reference = [r.metrics_for("RED").latency.total for r in results]
        assert len(set(reference)) == 1


class TestScheduleCacheLifecycle:
    def test_close_releases_compiled_schedules(self):
        from repro.sim.compiler import clear_compiled_schedules, schedule_cache_info

        clear_compiled_schedules()
        service = RedService()
        service.evaluate(EvaluationRequest(spec=SPEC, trace=True))
        assert schedule_cache_info().size >= 1
        service.close()
        assert schedule_cache_info().size == 0

    def test_float32_cycle_stats_match_float64(self, tmp_path):
        request = EvaluationRequest(spec=SPEC, trace=True)
        exact = RedService().evaluate(request)
        fast = RedService(cycle_dtype="float32").evaluate(request)
        # CycleStats hold schedule-level observables only, so the
        # execution dtype must not change them.
        assert fast.cycle_stats == exact.cycle_stats


class TestVectorizedRouting:
    def test_vectorized_flag_is_behavior_invisible(self):
        """ISSUE-4: the service's default vectorized route and the scalar
        oracle route must produce byte-identical results."""
        import pickle

        request = EvaluationRequest(spec=SPEC)
        default = RedService().evaluate(request)
        scalar = RedService(vectorized=False).evaluate(request)
        assert pickle.dumps(default.metrics, 5) == pickle.dumps(scalar.metrics, 5)

    def test_sweep_points_match_across_routes(self):
        fast = RedService().sweep_points(strides=(1, 2, 4))
        slow = RedService(vectorized=False).sweep_points(strides=(1, 2, 4))
        assert fast == slow
