"""Tests for chip provisioning."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.system.chip import provision_chip
from repro.system.network_mapper import evaluate_network
from repro.workloads.networks import SNGANGenerator


@pytest.fixture(scope="module")
def evaluation():
    gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
    return evaluate_network(gen, 1, 1)


class TestChip:
    def test_chip_covers_every_layer(self, evaluation):
        chip = provision_chip(evaluation, "RED")
        for name, metrics in evaluation.metrics["RED"].items():
            layer_area = metrics.area
            for component, value in layer_area.as_dict().items():
                assert value <= chip.area.as_dict()[component] + 1e-18, (name, component)

    def test_utilization_in_unit_interval(self, evaluation):
        chip = provision_chip(evaluation, "RED")
        for layer, util in chip.per_layer_utilization.items():
            assert 0.0 < util <= 1.0, layer

    def test_biggest_layer_fully_utilizes_nothing_smaller(self, evaluation):
        chip = provision_chip(evaluation, "zero-padding")
        assert max(chip.per_layer_utilization.values()) <= 1.0

    def test_red_chip_overhead_matches_paper_gan_claim(self, evaluation):
        """Chip-level RED overhead on a GAN generator ~ the paper's +21.41%."""
        red = provision_chip(evaluation, "RED")
        zp = provision_chip(evaluation, "zero-padding")
        overhead = red.overhead_over(zp)
        assert 0.15 <= overhead <= 0.30

    def test_padding_free_chip_larger_than_red(self, evaluation):
        pf = provision_chip(evaluation, "padding-free")
        red = provision_chip(evaluation, "RED")
        assert pf.total_area > red.total_area

    def test_unknown_design_rejected(self, evaluation):
        with pytest.raises(ParameterError):
            provision_chip(evaluation, "tpu")

    def test_unknown_mode_rejected(self, evaluation):
        with pytest.raises(ParameterError):
            provision_chip(evaluation, "RED", mode="magic")


class TestPipelinedProvisioning:
    def test_pipelined_chip_is_component_sum(self, evaluation):
        pipelined = provision_chip(evaluation, "RED", mode="pipelined")
        total = sum(m.area.total for m in evaluation.metrics["RED"].values())
        assert pipelined.total_area == pytest.approx(total)

    def test_pipelined_larger_than_time_multiplexed(self, evaluation):
        tm = provision_chip(evaluation, "RED", mode="time-multiplexed")
        pipelined = provision_chip(evaluation, "RED", mode="pipelined")
        assert pipelined.total_area > tm.total_area

    def test_pipelined_array_holds_all_weights(self, evaluation):
        pipelined = provision_chip(evaluation, "RED", mode="pipelined")
        per_layer = sum(
            m.area.computation for m in evaluation.metrics["RED"].values()
        )
        assert pipelined.area.computation == pytest.approx(per_layer)
