"""Tests for inter-layer pipelining."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.system.network_mapper import evaluate_network
from repro.system.pipeline import pipeline_network, pipeline_network_sweep
from repro.workloads.networks import SNGANGenerator


@pytest.fixture(scope="module")
def evaluation():
    gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
    return evaluate_network(gen, 1, 1)


class TestPipeline:
    def test_fill_is_stage_sum(self, evaluation):
        report = pipeline_network(evaluation, "RED", batch=8)
        assert report.fill_latency == pytest.approx(sum(report.stage_latencies))

    def test_bottleneck_is_max_stage(self, evaluation):
        report = pipeline_network(evaluation, "RED", batch=8)
        assert report.bottleneck_latency == max(report.stage_latencies)

    def test_batch_latency_formula(self, evaluation):
        report = pipeline_network(evaluation, "RED", batch=10)
        expected = report.fill_latency + 9 * report.bottleneck_latency
        assert report.batch_latency == pytest.approx(expected)

    def test_batch_one_equals_fill(self, evaluation):
        report = pipeline_network(evaluation, "RED", batch=1)
        assert report.batch_latency == pytest.approx(report.fill_latency)

    def test_pipeline_speedup_above_one(self, evaluation):
        report = pipeline_network(evaluation, "RED", batch=32)
        assert report.pipeline_speedup > 1.0

    def test_speedup_grows_with_batch(self, evaluation):
        small = pipeline_network(evaluation, "RED", batch=2)
        large = pipeline_network(evaluation, "RED", batch=64)
        assert large.pipeline_speedup > small.pipeline_speedup

    def test_throughput_inverse_of_bottleneck(self, evaluation):
        report = pipeline_network(evaluation, "zero-padding", batch=4)
        assert report.throughput == pytest.approx(1.0 / report.bottleneck_latency)

    def test_red_pipeline_beats_zero_padding(self, evaluation):
        red = pipeline_network(evaluation, "RED", batch=16)
        zp = pipeline_network(evaluation, "zero-padding", batch=16)
        assert red.batch_latency < zp.batch_latency
        assert red.throughput > zp.throughput

    def test_unknown_design_rejected(self, evaluation):
        with pytest.raises(ParameterError):
            pipeline_network(evaluation, "systolic")

    def test_bad_batch_rejected(self, evaluation):
        with pytest.raises(ParameterError):
            pipeline_network(evaluation, "RED", batch=0)


class TestPipelineNetworkSweep:
    @pytest.fixture(scope="class")
    def network(self):
        return SNGANGenerator(base_size=4, rng=np.random.default_rng(0))

    def test_matches_direct_pipeline_reports(self, network, evaluation):
        reports = pipeline_network_sweep(network, batch=8)
        assert set(reports) == {"zero-padding", "padding-free", "RED"}
        for design, report in reports.items():
            direct = pipeline_network(evaluation, design, batch=8)
            assert report.stage_latencies == direct.stage_latencies
            assert report.energy_per_sample == direct.energy_per_sample
            assert report.batch == direct.batch

    def test_design_subset_and_cache(self, network, tmp_path):
        cold = pipeline_network_sweep(
            network, designs=("RED",), batch=4, cache=tmp_path
        )
        warm = pipeline_network_sweep(
            network, designs=("RED",), batch=4, cache=tmp_path, jobs=2
        )
        assert list(cold) == ["RED"]
        assert cold["RED"].stage_latencies == warm["RED"].stage_latencies
        # The path constructed the packed store (segments + index).
        assert (tmp_path / "index.bin").exists()
        assert len(list(tmp_path.glob("*.seg"))) > 0
