"""Tests for whole-network mapping."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.modules import Conv2d, ConvTranspose2d, ReLU, Sequential
from repro.system.network_mapper import evaluate_network, extract_deconv_layers
from repro.workloads.networks import DCGANGenerator, FCN8sDecoder, SNGANGenerator


class TestExtraction:
    def test_sngan_has_four_deconvs(self):
        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
        layers = extract_deconv_layers(gen, 1, 1)
        assert len(layers) == 4  # project + 3 blocks (to_rgb is a Conv2d)
        assert layers[0].spec.output_shape[:2] == (4, 4)
        assert layers[-1].spec.output_shape[:2] == (32, 32)

    def test_dcgan_has_five_deconvs(self):
        gen = DCGANGenerator(rng=np.random.default_rng(0))
        layers = extract_deconv_layers(gen, 1, 1)
        assert len(layers) == 5
        assert layers[-1].spec.output_shape == (64, 64, 3)

    def test_shapes_chain(self):
        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
        layers = extract_deconv_layers(gen, 1, 1)
        for prev, nxt in zip(layers, layers[1:]):
            assert prev.spec.output_height == nxt.spec.input_height

    def test_table1_layer_found_in_network(self):
        """GAN_Deconv3's spec appears inside the SNGAN generator mapping."""
        from repro.workloads.specs import get_layer

        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
        specs = [l.spec for l in extract_deconv_layers(gen, 1, 1)]
        assert get_layer("GAN_Deconv3").spec in specs

    def test_conv_layers_change_spatial_size(self):
        net = Sequential(
            Conv2d(3, 8, 3, stride=2, padding=1),
            ConvTranspose2d(8, 3, 4, stride=2, padding=1),
        )
        layers = extract_deconv_layers(net, 8, 8)
        assert layers[0].spec.input_height == 4  # after the conv downsample
        assert layers[0].spec.output_height == 8

    def test_fcn_decoder_layers(self):
        head = FCN8sDecoder()
        layers = extract_deconv_layers(head, 16, 16)
        assert [l.spec.stride for l in layers] == [2, 2, 8]

    def test_no_deconv_raises(self):
        with pytest.raises(ShapeError):
            extract_deconv_layers(Sequential(ReLU()), 4, 4)

    def test_layer_names_are_paths(self):
        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
        names = [l.name for l in extract_deconv_layers(gen, 1, 1)]
        assert "project.0" in names
        assert "block1.0" in names


class TestEvaluation:
    @pytest.fixture(scope="class")
    def evaluation(self):
        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(0))
        return evaluate_network(gen, 1, 1)

    def test_all_designs_present(self, evaluation):
        assert set(evaluation.metrics) == {"zero-padding", "padding-free", "RED"}

    def test_red_fastest_end_to_end(self, evaluation):
        assert evaluation.speedup("RED") > evaluation.speedup("padding-free") > 1.0

    def test_red_saves_energy_end_to_end(self, evaluation):
        assert 0.0 < evaluation.energy_saving("RED") < 1.0

    def test_padding_free_costs_energy_on_gan(self, evaluation):
        assert evaluation.energy_saving("padding-free") < 0.0

    def test_totals_are_sums(self, evaluation):
        total = sum(
            m.latency.total for m in evaluation.metrics["RED"].values()
        )
        assert evaluation.total_latency("RED") == pytest.approx(total)
