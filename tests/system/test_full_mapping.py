"""Tests for full-network (conv + deconv) PIM mapping."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.modules import ReLU, Sequential
from repro.system.full_mapping import evaluate_full_network, extract_spatial_layers
from repro.workloads.networks import SNGANGenerator


@pytest.fixture(scope="module")
def generator():
    return SNGANGenerator(base_size=4, rng=np.random.default_rng(0))


class TestExtraction:
    def test_finds_conv_and_deconv(self, generator):
        layers = extract_spatial_layers(generator, 1, 1)
        kinds = [l.kind for l in layers]
        assert kinds.count("deconv") == 4
        assert kinds.count("conv") == 1  # the to-RGB head

    def test_shapes_propagate_through_mixed_stack(self, generator):
        layers = extract_spatial_layers(generator, 1, 1)
        conv = next(l for l in layers if l.kind == "conv")
        assert conv.conv_spec.input_height == 32  # after three 2x deconvs
        assert conv.conv_spec.output_shape == (32, 32, 3)

    def test_exactly_one_spec_set(self, generator):
        for layer in extract_spatial_layers(generator, 1, 1):
            assert (layer.conv_spec is None) != (layer.deconv_spec is None)

    def test_num_weights(self, generator):
        layers = extract_spatial_layers(generator, 1, 1)
        assert all(l.num_weights > 0 for l in layers)

    def test_empty_network_rejected(self):
        with pytest.raises(ShapeError):
            extract_spatial_layers(Sequential(ReLU()), 4, 4)


class TestFullEvaluation:
    def test_red_accelerates_full_network(self, generator):
        red = evaluate_full_network(generator, deconv_design="RED")
        zp = evaluate_full_network(generator, deconv_design="zero-padding")
        assert red.total_latency < zp.total_latency

    def test_amdahl_effect(self, generator):
        """Whole-network speedup is bounded by the unaccelerated conv
        share — well below the per-layer ~3.7x."""
        red = evaluate_full_network(generator, deconv_design="RED")
        zp = evaluate_full_network(generator, deconv_design="zero-padding")
        speedup = zp.total_latency / red.total_latency
        assert 1.0 < speedup < 3.7

    def test_conv_metrics_identical_across_deconv_designs(self, generator):
        red = evaluate_full_network(generator, deconv_design="RED")
        zp = evaluate_full_network(generator, deconv_design="zero-padding")
        conv = next(l.name for l in red.layers if l.kind == "conv")
        assert red.metrics[conv].latency.total == pytest.approx(
            zp.metrics[conv].latency.total
        )

    def test_deconv_share_shrinks_under_red(self, generator):
        red = evaluate_full_network(generator, deconv_design="RED")
        zp = evaluate_full_network(generator, deconv_design="zero-padding")
        assert red.deconv_latency_share < zp.deconv_latency_share

    def test_totals_are_sums(self, generator):
        ev = evaluate_full_network(generator, deconv_design="RED")
        assert ev.total_energy == pytest.approx(
            sum(m.energy.total for m in ev.metrics.values())
        )
