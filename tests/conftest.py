"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.deconv.shapes import DeconvSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(1234)


#: Hand-picked small specs covering stride/padding/output-padding corners.
SMALL_SPECS = (
    DeconvSpec(4, 4, 3, 3, 3, 2, stride=1, padding=0),
    DeconvSpec(4, 4, 3, 3, 3, 2, stride=1, padding=1),
    DeconvSpec(4, 4, 8, 4, 4, 5, stride=2, padding=1),
    DeconvSpec(5, 3, 6, 5, 5, 4, stride=2, padding=2, output_padding=1),
    DeconvSpec(3, 3, 4, 6, 6, 3, stride=3, padding=2, output_padding=1),
    DeconvSpec(2, 5, 2, 2, 2, 3, stride=2, padding=0),
    DeconvSpec(3, 3, 2, 2, 2, 2, stride=4, padding=0),  # kernel < stride
    DeconvSpec(4, 4, 3, 8, 8, 2, stride=4, padding=2),
    DeconvSpec(2, 2, 3, 16, 16, 2, stride=8, padding=0),
)


@pytest.fixture(params=SMALL_SPECS, ids=lambda s: s.describe())
def small_spec(request) -> DeconvSpec:
    """Parametrized fixture over the corner-case spec zoo."""
    return request.param


def random_operands(spec: DeconvSpec, seed: int = 0):
    """Random (input, kernel) float tensors for a spec."""
    gen = np.random.default_rng(seed)
    x = gen.normal(size=spec.input_shape)
    w = gen.normal(size=spec.kernel_shape)
    return x, w


def integer_operands(spec: DeconvSpec, seed: int = 0, bits_input: int = 8, bits_weight: int = 8):
    """Random (input, kernel) integer tensors within the ReRAM format."""
    gen = np.random.default_rng(seed)
    x = gen.integers(0, 1 << bits_input, size=spec.input_shape)
    w = gen.integers(-(1 << (bits_weight - 1)) + 1, 1 << (bits_weight - 1), size=spec.kernel_shape)
    return x, w


@st.composite
def deconv_specs(
    draw,
    max_input: int = 5,
    max_kernel: int = 5,
    max_stride: int = 4,
    max_channels: int = 4,
) -> DeconvSpec:
    """Hypothesis strategy generating valid small DeconvSpecs."""
    from hypothesis import assume

    ih = draw(st.integers(1, max_input))
    iw = draw(st.integers(1, max_input))
    c = draw(st.integers(1, max_channels))
    m = draw(st.integers(1, max_channels))
    kh = draw(st.integers(1, max_kernel))
    kw = draw(st.integers(1, max_kernel))
    s = draw(st.integers(1, max_stride))
    p = draw(st.integers(0, min(kh, kw) - 1))
    op = draw(st.integers(0, s - 1))
    # Reject parameter draws whose output would be non-positive (the
    # constructor raises for those).
    assume((ih - 1) * s - 2 * p + kh + op >= 1)
    assume((iw - 1) * s - 2 * p + kw + op >= 1)
    return DeconvSpec(
        input_height=ih, input_width=iw, in_channels=c,
        kernel_height=kh, kernel_width=kw, out_channels=m,
        stride=s, padding=p, output_padding=op,
    )
