"""Tests for the validation helpers."""

import pytest

from repro.errors import ParameterError
from repro.utils.validation import (
    check_in_choices,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)


class TestPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            check_positive_int(1.5, "x")

    def test_message_names_parameter(self):
        with pytest.raises(ParameterError, match="stride"):
            check_positive_int(-1, "stride")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative_int(-1, "x")


class TestPositiveFloat:
    def test_accepts(self):
        assert check_positive_float(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive_float(0.0, "x")

    def test_rejects_inf_and_nan(self):
        with pytest.raises(ParameterError):
            check_positive_float(float("inf"), "x")
        with pytest.raises(ParameterError):
            check_positive_float(float("nan"), "x")

    def test_rejects_non_number(self):
        with pytest.raises(ParameterError):
            check_positive_float("abc", "x")


class TestProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            check_probability(1.01, "p")


class TestChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ParameterError):
            check_in_choices("c", "x", ("a", "b"))
