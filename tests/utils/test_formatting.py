"""Tests for the formatting helpers."""

from repro.utils.formatting import (
    format_area,
    format_engineering,
    format_joules,
    format_ratio,
    format_seconds,
    render_ascii_table,
)


class TestEngineering:
    def test_nano(self):
        assert format_seconds(1.28e-7) == "128 ns"

    def test_micro(self):
        assert format_joules(3.2e-6) == "3.2 uJ"

    def test_zero(self):
        assert format_engineering(0.0, "J") == "0 J"

    def test_unit_range(self):
        assert format_engineering(2.5, "s") == "2.5 s"

    def test_kilo(self):
        assert format_engineering(1500.0, "Hz") == "1.5 kHz"

    def test_area_mm2(self):
        assert format_area(1.33e-6) == "1.33 mm^2"

    def test_ratio(self):
        assert format_ratio(3.6901) == "3.69x"


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        text = render_ascii_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[1].startswith("| a")
        assert "333" in text

    def test_title(self):
        text = render_ascii_table(("x",), [("1",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_width_fits_widest(self):
        text = render_ascii_table(("col",), [("wideentry",)])
        header_line = text.splitlines()[1]
        assert len(header_line) >= len("| wideentry |")

    def test_non_string_cells(self):
        text = render_ascii_table(("n",), [(42,)])
        assert "42" in text
