"""Unit tests for the deconvolution shape algebra."""

import pytest
from hypothesis import given, settings

from repro.deconv.shapes import DeconvSpec, solve_padding
from repro.errors import ParameterError, ShapeError
from tests.conftest import deconv_specs


class TestOutputSize:
    def test_stride1_no_padding_is_full_convolution(self):
        spec = DeconvSpec(4, 4, 1, 3, 3, 1, stride=1, padding=0)
        assert spec.output_height == 6
        assert spec.output_width == 6

    def test_stride2_kernel4_pad1_doubles(self):
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        assert spec.output_shape == (8, 8, 1)

    def test_output_padding_adds_one(self):
        base = DeconvSpec(4, 4, 1, 5, 5, 1, stride=2, padding=2)
        extra = DeconvSpec(4, 4, 1, 5, 5, 1, stride=2, padding=2, output_padding=1)
        assert extra.output_height == base.output_height + 1

    def test_rectangular_input(self):
        spec = DeconvSpec(3, 7, 2, 3, 3, 2, stride=2, padding=1)
        assert spec.output_height == (3 - 1) * 2 - 2 + 3
        assert spec.output_width == (7 - 1) * 2 - 2 + 3

    @given(deconv_specs())
    @settings(max_examples=60, deadline=None)
    def test_output_at_least_one(self, spec):
        assert spec.output_height >= 1
        assert spec.output_width >= 1

    def test_shapes_properties(self):
        spec = DeconvSpec(2, 3, 4, 5, 6, 7, stride=2, padding=1)
        assert spec.input_shape == (2, 3, 4)
        assert spec.kernel_shape == (5, 6, 4, 7)
        assert spec.output_shape[2] == 7
        assert spec.num_kernel_taps == 30
        assert spec.num_weights == 30 * 4 * 7
        assert spec.num_input_pixels == 6


class TestValidation:
    def test_rejects_zero_stride(self):
        with pytest.raises(ParameterError):
            DeconvSpec(4, 4, 1, 3, 3, 1, stride=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ParameterError):
            DeconvSpec(4, 4, 1, 3, 3, 1, stride=1, padding=-1)

    def test_rejects_padding_ge_kernel(self):
        with pytest.raises(ShapeError):
            DeconvSpec(4, 4, 1, 3, 3, 1, stride=2, padding=3)

    def test_rejects_output_padding_ge_stride(self):
        with pytest.raises(ShapeError):
            DeconvSpec(4, 4, 1, 3, 3, 1, stride=2, output_padding=2)

    def test_rejects_bool_dimensions(self):
        with pytest.raises(ParameterError):
            DeconvSpec(True, 4, 1, 3, 3, 1, stride=1)

    def test_rejects_non_positive_output(self):
        # 1x1 input, kernel 2, padding 1, stride 1 -> output 0.
        with pytest.raises(ShapeError):
            DeconvSpec(1, 1, 1, 2, 2, 1, stride=1, padding=1)


class TestPaddedGeometry:
    def test_sngan_padded_map_is_11x11(self):
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        geom = spec.padded_geometry()
        assert (geom.height, geom.width) == (11, 11)
        assert geom.border_top == 2
        assert geom.stretched_height == 7

    def test_padded_conv_output_matches_spec(self, small_spec):
        geom = small_spec.padded_geometry()
        conv_h = geom.height - small_spec.kernel_height + 1
        conv_w = geom.width - small_spec.kernel_width + 1
        assert conv_h == small_spec.output_height
        assert conv_w == small_spec.output_width

    def test_output_padding_extends_bottom_right_only(self):
        spec = DeconvSpec(4, 4, 1, 5, 5, 1, stride=2, padding=2, output_padding=1)
        geom = spec.padded_geometry()
        assert geom.border_bottom == geom.border_top + 1
        assert geom.border_right == geom.border_left + 1

    def test_num_pixels(self):
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        assert spec.padded_geometry().num_pixels == 121


class TestContributingTaps:
    def test_scatter_gather_duality(self, small_spec):
        """Every gather tap corresponds to the scatter relation."""
        s, p = small_spec.stride, small_spec.padding
        for oy in range(min(small_spec.output_height, 6)):
            for ox in range(min(small_spec.output_width, 6)):
                for kh, kw, ih, iw in small_spec.contributing_taps(oy, ox):
                    assert s * ih + kh - p == oy
                    assert s * iw + kw - p == ox

    def test_taps_unique(self, small_spec):
        taps = small_spec.contributing_taps(0, 0)
        assert len(taps) == len(set(taps))

    def test_total_taps_equal_useful_macs(self, small_spec):
        from repro.deconv.analysis import useful_mac_count

        total = sum(
            len(small_spec.contributing_taps(oy, ox))
            for oy in range(small_spec.output_height)
            for ox in range(small_spec.output_width)
        )
        expected = useful_mac_count(small_spec) // (
            small_spec.in_channels * small_spec.out_channels
        )
        assert total == expected


class TestSolvePadding:
    @pytest.mark.parametrize(
        "i,o,k,s,expected",
        [
            (8, 16, 5, 2, (2, 1)),   # GAN_Deconv1
            (4, 8, 5, 2, (2, 1)),    # GAN_Deconv2
            (4, 8, 4, 2, (1, 0)),    # GAN_Deconv3
            (6, 12, 4, 2, (1, 0)),   # GAN_Deconv4
            (16, 34, 4, 2, (0, 0)),  # FCN_Deconv1
            (70, 568, 16, 8, (0, 0)),  # FCN_Deconv2
        ],
    )
    def test_table1_solutions(self, i, o, k, s, expected):
        assert solve_padding(i, o, k, s) == expected

    def test_unsolvable_raises(self):
        with pytest.raises(ShapeError):
            solve_padding(4, 100, 3, 2)

    def test_solution_reproduces_output(self):
        p, op = solve_padding(7, 15, 4, 2)
        spec = DeconvSpec(7, 7, 1, 4, 4, 1, stride=2, padding=p, output_padding=op)
        assert spec.output_height == 15

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_solve_padding_round_trip(self, spec):
        """solve_padding recovers parameters consistent with the output."""
        p, op = solve_padding(
            spec.input_height, spec.output_height, spec.kernel_height, spec.stride
        )
        rebuilt = DeconvSpec(
            spec.input_height, spec.input_height, 1,
            spec.kernel_height, spec.kernel_height, 1,
            stride=spec.stride, padding=p, output_padding=op,
        )
        assert rebuilt.output_height == spec.output_height
