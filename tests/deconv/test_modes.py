"""Tests for the computation-mode decomposition (Fig. 6)."""

import pytest
from hypothesis import given, settings

from repro.deconv.modes import (
    check_mode_partition,
    decompose_modes,
    max_taps_per_mode,
    mode_of_tap,
    num_nonempty_modes,
)
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from tests.conftest import deconv_specs


class TestModeCount:
    def test_stride2_has_four_modes(self):
        spec = DeconvSpec(4, 4, 1, 3, 3, 1, stride=2, padding=1)
        modes = decompose_modes(spec)
        assert len(modes) == 4

    def test_stride_s_has_s_squared_modes(self):
        for s in (1, 2, 3, 4):
            spec = DeconvSpec(4, 4, 1, 2 * s, 2 * s, 1, stride=s, padding=s // 2 if s > 1 else 0)
            assert len(decompose_modes(spec)) == s * s

    def test_paper_example_tap_counts(self):
        """Fig. 6: kernel 3x3, stride 2 -> modes with 4, 2, 2, 1 taps."""
        spec = DeconvSpec(4, 4, 1, 3, 3, 1, stride=2, padding=1)
        counts = sorted(mode.num_taps for mode in decompose_modes(spec))
        assert counts == [1, 2, 2, 4]

    def test_fcn_stride8_kernel16_uniform_modes(self):
        """K=16, s=8: 64 modes of exactly 4 taps (the paper's 256 SCs)."""
        spec = DeconvSpec(4, 4, 1, 16, 16, 1, stride=8, padding=0)
        modes = decompose_modes(spec)
        assert len(modes) == 64
        assert all(mode.num_taps == 4 for mode in modes)
        assert max_taps_per_mode(spec) == 4


class TestNonemptyModeCount:
    def test_closed_form_matches_decomposition(self, small_spec):
        expected = sum(1 for mode in decompose_modes(small_spec) if mode.taps)
        assert num_nonempty_modes(small_spec) == expected

    @given(deconv_specs(max_input=4, max_kernel=8, max_stride=6))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_matches_decomposition_property(self, spec):
        expected = sum(1 for mode in decompose_modes(spec) if mode.taps)
        assert num_nonempty_modes(spec) == expected

    def test_kernel_smaller_than_stride_leaves_empty_modes(self):
        spec = DeconvSpec(3, 3, 2, 2, 2, 2, stride=4, padding=0)
        assert num_nonempty_modes(spec) == 4  # of stride^2 = 16 modes


class TestPartition:
    def test_partition_is_exact(self, small_spec):
        check_mode_partition(small_spec)

    @given(deconv_specs(max_stride=5, max_kernel=6))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact_property(self, spec):
        check_mode_partition(spec)

    def test_kernel_smaller_than_stride_leaves_empty_modes(self):
        spec = DeconvSpec(3, 3, 1, 2, 2, 1, stride=4, padding=0)
        modes = decompose_modes(spec)
        assert len(modes) == 16
        assert sum(1 for m in modes if m.taps) == 4
        assert sum(m.num_taps for m in modes) == 4

    def test_modes_ordered_row_major(self, small_spec):
        modes = decompose_modes(small_spec)
        phases = [(m.phase_y, m.phase_x) for m in modes]
        s = small_spec.stride
        assert phases == [(py, px) for py in range(s) for px in range(s)]


class TestModeOfTap:
    def test_tap_phase_relation(self, small_spec):
        """Tap (kh, kw) serves outputs with oy = s*ih + kh - p."""
        s, p = small_spec.stride, small_spec.padding
        for kh in range(small_spec.kernel_height):
            for kw in range(small_spec.kernel_width):
                phy, phx = mode_of_tap(kh, kw, small_spec)
                # An output row oy reachable from tap kh has residue
                # (kh - p) mod s.
                assert phy == (kh - p) % s
                assert phx == (kw - p) % s

    def test_out_of_range_tap_raises(self, small_spec):
        with pytest.raises(ShapeError):
            mode_of_tap(small_spec.kernel_height, 0, small_spec)
        with pytest.raises(ShapeError):
            mode_of_tap(0, -1, small_spec)

    def test_consistent_with_decomposition(self, small_spec):
        modes = decompose_modes(small_spec)
        for mode in modes:
            for kh, kw in mode.taps:
                assert mode_of_tap(kh, kw, small_spec) == (mode.phase_y, mode.phase_x)


class TestMaxTaps:
    def test_bound_is_ceil_k_over_s_squared(self, small_spec):
        import math

        bound = math.ceil(small_spec.kernel_height / small_spec.stride) * math.ceil(
            small_spec.kernel_width / small_spec.stride
        )
        assert max_taps_per_mode(small_spec) <= bound

    def test_stride1_single_mode_holds_all_taps(self):
        spec = DeconvSpec(4, 4, 1, 3, 3, 1, stride=1, padding=1)
        assert max_taps_per_mode(spec) == 9
