"""Tests for the gold-standard reference implementations."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.deconv.reference import (
    conv2d,
    conv2d_valid,
    conv_transpose2d,
    rotate_kernel_180,
)
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from tests.conftest import deconv_specs, random_operands


def brute_force_deconv(x, w, spec):
    """O(everything) scatter loop — the definition, written naively."""
    out = np.zeros(spec.output_shape)
    s, p = spec.stride, spec.padding
    for ih in range(spec.input_height):
        for iw in range(spec.input_width):
            for kh in range(spec.kernel_height):
                for kw in range(spec.kernel_width):
                    oy, ox = s * ih + kh - p, s * iw + kw - p
                    if 0 <= oy < spec.output_height and 0 <= ox < spec.output_width:
                        for c in range(spec.in_channels):
                            out[oy, ox, :] += x[ih, iw, c] * w[kh, kw, c, :]
    return out


class TestConvTranspose2d:
    def test_matches_brute_force(self, small_spec):
        x, w = random_operands(small_spec)
        fast = conv_transpose2d(x, w, small_spec)
        slow = brute_force_deconv(x, w, small_spec)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    @given(deconv_specs(max_input=4, max_kernel=4, max_stride=3, max_channels=3))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_property(self, spec):
        x, w = random_operands(spec, seed=7)
        np.testing.assert_allclose(
            conv_transpose2d(x, w, spec), brute_force_deconv(x, w, spec), atol=1e-10
        )

    def test_linearity_in_input(self, small_spec):
        x1, w = random_operands(small_spec, seed=1)
        x2, _ = random_operands(small_spec, seed=2)
        lhs = conv_transpose2d(x1 + 2.0 * x2, w, small_spec)
        rhs = conv_transpose2d(x1, w, small_spec) + 2.0 * conv_transpose2d(
            x2, w, small_spec
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_zero_input_gives_zero_output(self, small_spec):
        _, w = random_operands(small_spec)
        x = np.zeros(small_spec.input_shape)
        assert not conv_transpose2d(x, w, small_spec).any()

    def test_single_pixel_stamps_kernel(self):
        spec = DeconvSpec(1, 1, 1, 3, 3, 1, stride=1, padding=0)
        x = np.ones((1, 1, 1))
        w = np.arange(9.0).reshape(3, 3, 1, 1)
        out = conv_transpose2d(x, w, spec)
        np.testing.assert_allclose(out[:, :, 0], np.arange(9.0).reshape(3, 3))

    def test_rejects_wrong_input_shape(self, small_spec):
        x, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            conv_transpose2d(x[..., None], w, small_spec)
        with pytest.raises(ShapeError):
            conv_transpose2d(x[:-1] if x.shape[0] > 1 else x.T, w, small_spec)

    def test_rejects_wrong_kernel_shape(self, small_spec):
        x, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            conv_transpose2d(x, w[..., None], small_spec)


class TestConv2d:
    def test_valid_identity_kernel(self, rng):
        x = rng.normal(size=(5, 5, 3))
        w = np.zeros((1, 1, 3, 3))
        for c in range(3):
            w[0, 0, c, c] = 1.0
        np.testing.assert_allclose(conv2d_valid(x, w), x)

    def test_valid_matches_naive(self, rng):
        x = rng.normal(size=(6, 5, 2))
        w = rng.normal(size=(3, 2, 2, 4))
        out = conv2d_valid(x, w)
        assert out.shape == (4, 4, 4)
        naive = np.zeros((4, 4, 4))
        for oy in range(4):
            for ox in range(4):
                naive[oy, ox] = np.einsum(
                    "ijc,ijcm->m", x[oy : oy + 3, ox : ox + 2], w
                )
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_strided_padded(self, rng):
        x = rng.normal(size=(5, 5, 2))
        w = rng.normal(size=(3, 3, 2, 1))
        out = conv2d(x, w, stride=2, padding=1)
        assert out.shape == ((5 + 2 - 3) // 2 + 1, (5 + 2 - 3) // 2 + 1, 1)

    def test_kernel_larger_than_input_raises(self, rng):
        x = rng.normal(size=(2, 2, 1))
        w = rng.normal(size=(3, 3, 1, 1))
        with pytest.raises(ShapeError):
            conv2d_valid(x, w)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d_valid(rng.normal(size=(4, 4, 2)), rng.normal(size=(3, 3, 3, 1)))


class TestRotate:
    def test_double_rotation_is_identity(self, rng):
        w = rng.normal(size=(3, 4, 2, 5))
        np.testing.assert_array_equal(rotate_kernel_180(rotate_kernel_180(w)), w)

    def test_rotation_flips_corners(self):
        w = np.zeros((2, 2, 1, 1))
        w[0, 0] = 1.0
        assert rotate_kernel_180(w)[1, 1] == 1.0

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ShapeError):
            rotate_kernel_180(rng.normal(size=(3, 3, 2)))
