"""Tests for Algorithm 2 (padding-free deconvolution)."""

import numpy as np
from hypothesis import given, settings

from repro.deconv.padding_free import (
    crop_to_output,
    full_overlap_shape,
    overlap_add,
    padding_free_deconv,
    pixel_kernel_products,
)
from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from tests.conftest import deconv_specs, random_operands


class TestAlgorithm2:
    def test_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        np.testing.assert_allclose(
            padding_free_deconv(x, w, small_spec),
            conv_transpose2d(x, w, small_spec),
            atol=1e-10,
        )

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_property(self, spec):
        x, w = random_operands(spec, seed=5)
        np.testing.assert_allclose(
            padding_free_deconv(x, w, spec), conv_transpose2d(x, w, spec), atol=1e-10
        )

    def test_rotation_flag_is_equivalent(self, small_spec):
        x, w = random_operands(small_spec)
        with_rot = padding_free_deconv(x, w, small_spec, paper_rotation=True)
        without = padding_free_deconv(x, w, small_spec, paper_rotation=False)
        np.testing.assert_array_equal(with_rot, without)


class TestIntermediates:
    def test_products_shape(self, small_spec):
        x, w = random_operands(small_spec)
        products = pixel_kernel_products(x, w, small_spec)
        assert products.shape == (
            small_spec.input_height,
            small_spec.input_width,
            small_spec.kernel_height,
            small_spec.kernel_width,
            small_spec.out_channels,
        )

    def test_products_are_per_pixel_macs(self, small_spec):
        x, w = random_operands(small_spec)
        products = pixel_kernel_products(x, w, small_spec)
        ih, iw = 0, small_spec.input_width - 1
        expected = np.einsum("c,ijcm->ijm", x[ih, iw], w)
        np.testing.assert_allclose(products[ih, iw], expected, atol=1e-12)

    def test_full_canvas_shape(self, small_spec):
        fh, fw = full_overlap_shape(small_spec)
        assert fh == (small_spec.input_height - 1) * small_spec.stride + small_spec.kernel_height
        assert fw == (small_spec.input_width - 1) * small_spec.stride + small_spec.kernel_width

    def test_overlap_add_conserves_sum(self, small_spec):
        """Overlap-add moves values, never creates or destroys them."""
        x, w = random_operands(small_spec)
        products = pixel_kernel_products(x, w, small_spec)
        full = overlap_add(products, small_spec)
        np.testing.assert_allclose(full.sum(), products.sum(), rtol=1e-9)

    def test_crop_removes_padding_border(self):
        spec = DeconvSpec(3, 3, 1, 4, 4, 1, stride=2, padding=1)
        full = np.arange(64.0).reshape(8, 8, 1)
        cropped = crop_to_output(full, spec)
        assert cropped.shape == spec.output_shape
        np.testing.assert_array_equal(cropped[0, 0], full[1, 1])

    def test_crop_zero_extends_for_output_padding(self):
        spec = DeconvSpec(2, 2, 1, 2, 2, 1, stride=2, padding=0, output_padding=1)
        fh, fw = full_overlap_shape(spec)
        assert (fh, fw) == (4, 4)
        full = np.ones((fh, fw, 1))
        cropped = crop_to_output(full, spec)
        assert cropped.shape == (5, 5, 1)
        assert cropped[4, 4, 0] == 0.0
