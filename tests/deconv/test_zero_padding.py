"""Tests for Algorithm 1 (zero-padding deconvolution)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from repro.deconv.zero_padding import (
    padded_input_vectors,
    zero_insert_input,
    zero_padding_deconv,
)
from repro.errors import ShapeError
from tests.conftest import deconv_specs, random_operands


class TestZeroInsert:
    def test_live_pixel_count_preserved(self, small_spec, rng):
        x = rng.normal(size=small_spec.input_shape)
        padded = zero_insert_input(x, small_spec)
        assert np.count_nonzero(padded) == np.count_nonzero(x)

    def test_values_land_on_stride_grid(self, small_spec, rng):
        x = rng.normal(size=small_spec.input_shape) + 10.0  # keep all non-zero
        padded = zero_insert_input(x, small_spec)
        geom = small_spec.padded_geometry()
        s = small_spec.stride
        sub = padded[
            geom.border_top : geom.border_top + geom.stretched_height : s,
            geom.border_left : geom.border_left + geom.stretched_width : s,
        ]
        np.testing.assert_array_equal(sub, x)

    def test_border_is_zero(self, rng):
        spec = DeconvSpec(3, 3, 2, 4, 4, 1, stride=2, padding=1)
        x = rng.normal(size=spec.input_shape) + 5.0
        padded = zero_insert_input(x, spec)
        assert not padded[:2].any()
        assert not padded[:, :2].any()

    def test_sngan_zero_fraction(self):
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        x = np.ones(spec.input_shape)
        padded = zero_insert_input(x, spec)
        assert padded.size == 121
        assert np.count_nonzero(padded) == 16

    def test_rejects_wrong_shape(self, small_spec, rng):
        x = rng.normal(size=small_spec.input_shape)
        with pytest.raises(ShapeError):
            zero_insert_input(x[..., None], small_spec)


class TestAlgorithm1:
    def test_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        np.testing.assert_allclose(
            zero_padding_deconv(x, w, small_spec),
            conv_transpose2d(x, w, small_spec),
            atol=1e-10,
        )

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_property(self, spec):
        x, w = random_operands(spec, seed=3)
        np.testing.assert_allclose(
            zero_padding_deconv(x, w, spec), conv_transpose2d(x, w, spec), atol=1e-10
        )


class TestPaddedVectors:
    def test_vector_count_is_output_pixels(self, small_spec, rng):
        x = rng.normal(size=small_spec.input_shape)
        vectors = padded_input_vectors(x, small_spec)
        assert vectors.shape == (
            small_spec.num_output_pixels,
            small_spec.num_kernel_taps * small_spec.in_channels,
        )

    def test_vectors_reproduce_deconv(self, small_spec, rng):
        from repro.deconv.reference import rotate_kernel_180

        x, w = random_operands(small_spec)
        vectors = padded_input_vectors(x, small_spec)
        rotated = rotate_kernel_180(w)
        kh, kw, c, m = rotated.shape
        matrix = rotated.reshape(kh * kw * c, m)
        out = (vectors @ matrix).reshape(small_spec.output_shape)
        np.testing.assert_allclose(
            out, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    def test_sparsity_matches_mac_redundancy(self, small_spec, rng):
        from repro.deconv.analysis import redundant_mac_fraction

        x = rng.normal(size=small_spec.input_shape) + 10.0  # no accidental zeros
        vectors = padded_input_vectors(x, small_spec)
        measured = 1.0 - np.count_nonzero(vectors) / vectors.size
        assert measured == pytest.approx(redundant_mac_fraction(small_spec), abs=1e-12)
