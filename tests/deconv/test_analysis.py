"""Tests for the zero-redundancy analytics behind Fig. 4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deconv.analysis import (
    dense_mac_count,
    input_vector_sparsity,
    padded_zero_fraction,
    redundancy_vs_stride,
    redundant_mac_fraction,
    useful_mac_count,
    useful_mac_count_batch,
)
from repro.deconv.shapes import DeconvSpec, SpecArrays
from repro.errors import ParameterError
from tests.conftest import deconv_specs


class TestPaddedZeroFraction:
    def test_sngan_stride2_is_86_8_percent(self):
        """The headline Fig. 4 value: 1 - 16/121 = 86.78%."""
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        assert padded_zero_fraction(spec) == pytest.approx(1 - 16 / 121, abs=1e-12)

    def test_no_insertion_no_border_is_zero(self):
        spec = DeconvSpec(4, 4, 1, 1, 1, 1, stride=1, padding=0)
        assert padded_zero_fraction(spec) == 0.0

    def test_increases_with_stride(self):
        fractions = [
            padded_zero_fraction(DeconvSpec(4, 4, 1, 4, 4, 1, stride=s, padding=1))
            for s in (1, 2, 4, 8)
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 0.97


class TestMacCounts:
    def test_dense_count_formula(self, small_spec):
        assert dense_mac_count(small_spec) == (
            small_spec.num_output_pixels
            * small_spec.num_kernel_taps
            * small_spec.in_channels
            * small_spec.out_channels
        )

    def test_useful_matches_brute_force(self, small_spec):
        brute = sum(
            len(small_spec.contributing_taps(oy, ox))
            for oy in range(small_spec.output_height)
            for ox in range(small_spec.output_width)
        ) * small_spec.in_channels * small_spec.out_channels
        assert useful_mac_count(small_spec) == brute

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_useful_never_exceeds_dense(self, spec):
        assert 0 <= useful_mac_count(spec) <= dense_mac_count(spec)

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_useful_bounded_by_scatter_volume(self, spec):
        """Each (input pixel, tap) pair scatters at most once."""
        ceiling = (
            spec.num_input_pixels
            * spec.num_kernel_taps
            * spec.in_channels
            * spec.out_channels
        )
        assert useful_mac_count(spec) <= ceiling

    def test_batch_count_matches_scalar_over_the_zoo(self):
        from tests.conftest import SMALL_SPECS

        arrays = SpecArrays.from_specs(SMALL_SPECS)
        batch = useful_mac_count_batch(arrays)
        assert batch.tolist() == [useful_mac_count(s) for s in SMALL_SPECS]

    @given(st.lists(deconv_specs(max_input=6, max_kernel=7, max_stride=5),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_batch_count_matches_scalar_property(self, specs):
        batch = useful_mac_count_batch(SpecArrays.from_specs(specs))
        assert batch.tolist() == [useful_mac_count(s) for s in specs]

    def test_batch_count_empty_input(self):
        assert useful_mac_count_batch(SpecArrays.from_specs([])).tolist() == []

    def test_batch_count_fcn_scale(self):
        """Closed-form interval arithmetic at FCN-32s scale (no loops)."""
        spec = DeconvSpec(16, 16, 21, 64, 64, 21, stride=32, padding=16)
        batch = useful_mac_count_batch(SpecArrays.from_specs([spec]))
        assert batch.tolist() == [useful_mac_count(spec)]

    def test_redundancy_between_zero_and_one(self, small_spec):
        assert 0.0 <= redundant_mac_fraction(small_spec) < 1.0

    def test_sparsity_alias(self, small_spec):
        assert input_vector_sparsity(small_spec) == redundant_mac_fraction(small_spec)


class TestRedundancyCurves:
    def test_sngan_curve_endpoint_values(self):
        curve = dict(redundancy_vs_stride(4, kernel_rule="fixed", kernel_size=4))
        assert curve[2] == pytest.approx(0.8678, abs=5e-4)
        assert curve[32] > 0.99

    def test_fcn_curve_reaches_99_8_percent(self):
        curve = dict(redundancy_vs_stride(16, kernel_rule="fcn"))
        assert curve[32] >= 0.998

    def test_curves_monotone_in_stride_beyond_one(self):
        for rule in ("fixed", "fcn"):
            curve = redundancy_vs_stride(8, kernel_rule=rule)
            values = [v for s, v in curve if s >= 2]
            assert values == sorted(values)

    def test_unknown_rule_raises(self):
        with pytest.raises(ParameterError):
            redundancy_vs_stride(4, kernel_rule="nope")

    def test_custom_strides(self):
        curve = redundancy_vs_stride(4, strides=(2, 3), kernel_rule="fixed")
        assert [s for s, _ in curve] == [2, 3]
