"""Consistent-hash ring: determinism, coverage, minimal disruption."""

import pytest

from repro.errors import ParameterError
from repro.serving.ring import HashRing

KEYS = [f"design/{design}/stride={stride}" for design in ("RED", "ZP") for stride in range(64)]


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        a = HashRing((0, 1, 2))
        b = HashRing((0, 1, 2))
        assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]

    def test_partition_covers_every_index_exactly_once(self):
        ring = HashRing((0, 1))
        parts = ring.partition(KEYS)
        flat = sorted(i for indices in parts.values() for i in indices)
        assert flat == list(range(len(KEYS)))

    def test_every_shard_gets_work_on_realistic_lists(self):
        ring = HashRing((0, 1, 2))
        parts = ring.partition(KEYS)
        assert set(parts) == {0, 1, 2}

    def test_removing_a_shard_only_moves_its_keys(self):
        big = HashRing((0, 1, 2))
        small = HashRing((0, 1))
        for key in KEYS:
            owner = big.shard_for(key)
            if owner != 2:
                # Keys not owned by the removed shard stay put.
                assert small.shard_for(key) == owner

    def test_partition_indices_follow_shard_for(self):
        ring = HashRing((0, 1))
        parts = ring.partition(KEYS)
        for shard_id, indices in parts.items():
            assert all(ring.shard_for(KEYS[i]) == shard_id for i in indices)

    def test_empty_ring_rejected(self):
        with pytest.raises(ParameterError, match="at least one"):
            HashRing(())

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            HashRing((0, 0))

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ParameterError, match="replicas"):
            HashRing((0,), replicas=0)
