"""CLI surface of the serving plane: ``repro ping`` and ``repro serve``.

The serve test exercises the real deployment path: a subprocess, the
announce line on stderr, a live ping, then SIGTERM -> graceful drain ->
exit 0 with no orphaned shard processes.
"""

import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.api.schema import SCHEMA_VERSION, payload_from_dict
from repro.cli import main
from repro.reliability import configured_failpoints
from repro.serving.testing import ServerThread

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


@pytest.fixture(scope="class")
def plane():
    with configured_failpoints(None):
        with ServerThread(num_shards=2) as running:
            yield running


class TestPing:
    def test_ping_healthy_plane_exits_zero(self, capsys, plane):
        assert main(["ping", "--port", str(plane.port)]) == 0
        out = capsys.readouterr().out
        assert "healthz=200" in out
        assert "readyz=200" in out

    def test_ping_json_payload_round_trips(self, capsys, plane):
        assert main(["ping", "--port", str(plane.port), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["command"] == "ping"
        assert payload["data"]["healthz_status"] == 200
        assert set(payload["data"]["healthz"]["shards"].values()) == {"running"}
        rebuilt = payload_from_dict(payload)
        assert json.loads(json.dumps(rebuilt.to_dict())) == payload

    def test_ping_unreachable_is_a_retryable_error_envelope(self, capsys):
        # Port 1 on localhost: nothing listens there.
        code = main(
            ["ping", "--port", "1", "--timeout", "0.5", "--json"]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "error_info"
        assert payload["error_type"] == "ShardUnavailableError"
        assert payload["retryable"] is True
        assert payload["source"] == "ping"


def _serve_pids():
    out = subprocess.run(["ps", "-ef"], capture_output=True, text=True).stdout
    return {
        int(line.split()[1])
        for line in out.splitlines()
        if "repro serve" in line
    }


class TestServeLifecycle:
    def test_sigterm_drains_to_exit_zero_without_orphans(self):
        before = _serve_pids()
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("RED_FAILPOINTS", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--shards", "2"],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            announce = {}

            def read_announce():
                announce["line"] = proc.stderr.readline()

            reader = threading.Thread(target=read_announce, daemon=True)
            reader.start()
            reader.join(timeout=60.0)
            line = announce.get("line", "")
            assert "listening on" in line, f"no announce line: {line!r}"
            port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])

            assert main(["ping", "--port", str(port)]) == 0

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
            proc.stderr.close()
        # Graceful exit reaps every forked shard: nothing new survives.
        assert _serve_pids() <= before
