"""The serving plane under the ambient ``make serve-chaos`` matrix.

Every other test in this suite pins its own failpoint context, so the
ambient environment never reaches them.  This one deliberately runs a
real server under whatever the environment armed — for ``make
serve-chaos`` that is crash faults at ``serving.shard_call`` (real
``os._exit(86)`` shard deaths) plus ``io_error`` at ``serving.accept``
and ``serving.merge`` — and holds the plane to its headline contract:
every request answered, every answer byte-identical to the fault-free
in-process run.  Disarmed, it is a plain end-to-end smoke test.
"""

import json

from repro.api.schema import SweepRequest
from repro.api.service import RedService
from repro.reliability import configured_failpoints, failpoints
from repro.reliability.policy import RetryPolicy, no_sleep
from repro.serving.testing import ServerThread

REQUESTS = 12
LENIENT = RetryPolicy(max_attempts=12, base_delay_s=0.0, sleeper=no_sleep)


def _digest(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_every_request_answered_byte_identical_under_ambient_matrix():
    requests = [
        SweepRequest(strides=(1, 2, 4), channels=16 + i)
        for i in range(REQUESTS)
    ]
    with configured_failpoints(None):
        service = RedService()
        try:
            reference = [_digest(service.sweep(r)) for r in requests]
        finally:
            service.close()

    armed = failpoints.active_failpoints()
    with ServerThread(num_shards=2, respawn_budget=8) as plane:
        with plane.client(timeout=120.0) as client:
            for request, expected in zip(requests, reference):
                result = client.call_with_retry(
                    request, retry_policy=LENIENT
                )
                assert _digest(result) == expected, (
                    f"recovery diverged under ambient matrix {armed!r}"
                )
    assert plane.exit_code == 0
