"""End-to-end serving plane: wire protocol, negotiation, overload, drain.

Every test here talks to a real :class:`~repro.serving.server.ServingServer`
— real sockets, real forked shard processes — through the
:class:`~repro.serving.testing.ServerThread` harness, whose exit path is
byte-for-byte the SIGTERM drain.
"""

import json
import threading

import pytest

from repro.api.schema import (
    SCHEMA_VERSION,
    EvaluationRequest,
    SweepRequest,
    SweepResult,
)
from repro.api.service import RedService
from repro.errors import ShardUnavailableError
from repro.reliability import configured_failpoints
from repro.reliability.policy import RetryPolicy, no_sleep
from repro.serving.client import ServingCallError
from repro.serving.testing import ServerThread

SWEEP = SweepRequest(strides=(1, 2, 4))
#: Generous attempts, no real sleeping — chaos rounds retry a lot.
LENIENT = RetryPolicy(max_attempts=10, base_delay_s=0.0, sleeper=no_sleep)


# Class scope, not module: only one serving plane may be alive at a
# time.  Shard processes are forked, and forking while another plane's
# threads hold locks can deadlock the child until the supervisor's call
# budget reclaims it — exactly the cross-tenant interference the
# one-plane-per-process deployment model avoids.
@pytest.fixture(scope="class")
def plane():
    with configured_failpoints(None):
        with ServerThread(num_shards=2, call_timeout_s=20.0) as running:
            yield running


def in_process_reference(request):
    service = RedService()
    try:
        with configured_failpoints(None):
            return service.sweep(request)
    finally:
        service.close()


class TestWireProtocol:
    def test_healthz_and_readyz(self, plane):
        with plane.client() as client:
            health_status, health = client.healthz()
            ready_status, ready = client.readyz()
        assert health_status == 200
        assert health["status"] == "ok"
        assert set(health["shards"].values()) == {"running"}
        assert ready_status == 200
        assert all(hb["alive"] for hb in ready["heartbeats"].values())

    def test_sweep_matches_in_process_byte_for_byte(self, plane):
        expected = in_process_reference(SWEEP)
        with plane.client() as client:
            got = client.call(SWEEP)
        assert isinstance(got, SweepResult)
        assert json.dumps(got.to_dict(), sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        )

    def test_v1_client_negotiation_round_trips(self, plane):
        with plane.client(schema_version=1) as client:
            got = client.call(SWEEP)
        assert got.schema_version == 1
        wire = got.to_dict()
        assert wire["schema_version"] == 1
        assert "retry_after_s" not in json.dumps(wire)
        # Numbers are identical to what a v2 client sees.
        expected = in_process_reference(SWEEP)
        assert [p.speedup for p in got.points] == [
            p.speedup for p in expected.points
        ]

    def test_unknown_route_is_a_404_envelope(self, plane):
        with plane.client() as client:
            status, body = client._exchange("GET", "/nope")
        assert status == 404
        assert body["kind"] == "error_info"
        assert not body["retryable"]

    def test_malformed_json_is_a_400_envelope(self, plane):
        with plane.client() as client:
            status, body = client._exchange(
                "POST", "/v1/payload", body="{not json",
                headers={"Content-Type": "application/json"},
            )
        assert status == 400
        assert body["error_type"] == "SchemaError"

    def test_bad_deadline_header_is_a_400_envelope(self, plane):
        with plane.client() as client:
            status, body = client._exchange(
                "POST", "/v1/payload", body=json.dumps(SWEEP.to_dict()),
                headers={"X-Red-Timeout-S": "banana"},
            )
        assert status == 400
        assert body["error_type"] == "SchemaError"

    def test_schema_error_from_payload_is_permanent(self, plane):
        with plane.client() as client:
            with pytest.raises(ServingCallError) as caught:
                client.call({"kind": "sweep_request", "schema_version": 99})
        assert caught.value.status == 400
        assert not caught.value.info.retryable


class TestOverloadAndDeadline:
    def test_full_gate_sheds_429_with_retry_hint(self, plane):
        gate = plane.server.gate
        for _ in range(gate.capacity):
            gate.admit()
        try:
            with plane.client() as client:
                with pytest.raises(ServingCallError) as caught:
                    client.call(SWEEP)
        finally:
            for _ in range(gate.capacity):
                gate.release()
        assert caught.value.status == 429
        assert caught.value.info.error_type == "OverloadedError"
        assert caught.value.info.retryable
        assert caught.value.retry_after_s > 0

    def test_shed_request_succeeds_on_retry_after_slots_free(self, plane):
        gate = plane.server.gate
        for _ in range(gate.capacity):
            gate.admit()
        blocked = threading.Timer(
            0.05, lambda: [gate.release() for _ in range(gate.capacity)]
        )
        blocked.start()
        try:
            with plane.client() as client:
                # Real sleeps here: the retry loop must actually wait out
                # the server's retry_after_s hint for slots to free up.
                got = client.call_with_retry(
                    SWEEP,
                    retry_policy=RetryPolicy(max_attempts=20, base_delay_s=0.02),
                )
        finally:
            blocked.join()
        assert isinstance(got, SweepResult)

    def test_wire_deadline_maps_to_504(self, plane):
        # A deadline no evaluation can meet: the supervisor kills the
        # unresponsive call and the final status is the deadline's.
        with plane.client() as client:
            with pytest.raises(ServingCallError) as caught:
                client.call(EvaluationRequest(layer="FCN_Deconv2"), timeout_s=1e-6)
        assert caught.value.status == 504
        assert caught.value.info.error_type == "EvaluationTimeoutError"
        assert not caught.value.info.retryable
        # The plane recovers: shards respawn and keep serving.
        with plane.client() as client:
            got = client.call_with_retry(SWEEP, retry_policy=LENIENT)
        assert isinstance(got, SweepResult)


class TestDrain:
    def test_drain_under_load_answers_every_request(self):
        outcomes = {}
        barrier = threading.Barrier(9)

        def one_request(plane, index):
            barrier.wait()
            try:
                with plane.client(timeout=60.0) as client:
                    outcomes[index] = client.call(SWEEP)
            except (ServingCallError, ShardUnavailableError) as exc:
                outcomes[index] = exc

        with configured_failpoints(None):
            with ServerThread(
                num_shards=2, max_inflight=2, max_queue=2, call_timeout_s=20.0
            ) as plane:
                threads = [
                    threading.Thread(target=one_request, args=(plane, i))
                    for i in range(8)
                ]
                for t in threads:
                    t.start()
                barrier.wait()  # all client threads are in flight
                plane.server.request_drain()
                for t in threads:
                    t.join(timeout=120.0)
                    assert not t.is_alive(), "request hung across drain"
        assert plane.exit_code == 0
        assert len(outcomes) == 8
        for outcome in outcomes.values():
            # Complete result or typed envelope — never a hang, never
            # an unexplained connection drop mid-response.
            assert isinstance(
                outcome, (SweepResult, ServingCallError, ShardUnavailableError)
            )

    def test_drained_server_refuses_new_work_then_exits_zero(self):
        with configured_failpoints(None):
            with ServerThread(num_shards=2) as plane:
                plane.server.request_drain()
                deadline_met = plane.server.gate.wait_idle(timeout=30.0)
                assert deadline_met
                with pytest.raises(
                    (ServingCallError, ShardUnavailableError)
                ) as caught:
                    with plane.client() as client:
                        client.call(SWEEP)
                if isinstance(caught.value, ServingCallError):
                    assert caught.value.status == 503
                    assert caught.value.info.error_type == "DrainingError"
        assert plane.exit_code == 0


class TestChaos:
    def test_injected_faults_recover_byte_identical(self):
        """The tentpole invariant: crash + io_error mid-run, every
        request answered, recovered results byte-identical to fault-free.
        """
        expected = json.dumps(
            in_process_reference(SWEEP).to_dict(), sort_keys=True
        )
        spec = (
            "serving.shard_call:crash@0.3;"
            "serving.accept:io_error@0.2;"
            "serving.merge:io_error@0.1"
        )
        with configured_failpoints(spec, seed=11):
            with ServerThread(num_shards=2, respawn_budget=4) as plane:
                with plane.client(timeout=60.0) as client:
                    for _ in range(3):
                        got = client.call_with_retry(SWEEP, retry_policy=LENIENT)
                        assert (
                            json.dumps(got.to_dict(), sort_keys=True) == expected
                        )
                    ready_status, _ = client.readyz()
                assert ready_status == 200
        assert plane.exit_code == 0
