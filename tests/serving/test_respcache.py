"""The warm response tier: LRU mechanics and front-door integration."""

import json

import pytest

from repro.api.schema import SweepRequest
from repro.errors import ParameterError
from repro.reliability import configured_failpoints
from repro.serving.respcache import ResponseCache
from repro.serving.testing import ServerThread


class TestResponseCache:
    def test_get_put_and_counters(self):
        cache = ResponseCache(max_entries=4)
        assert cache.get(b"a") is None
        cache.put(b"a", {"x": 1})
        assert cache.get(b"a") == {"x": 1}
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 1, "entries": 1, "max_entries": 4,
        }

    def test_eviction_is_least_recently_used(self):
        cache = ResponseCache(max_entries=2)
        cache.put(b"a", {"v": "a"})
        cache.put(b"b", {"v": "b"})
        assert cache.get(b"a") == {"v": "a"}  # refresh a; b is now coldest
        cache.put(b"c", {"v": "c"})
        assert cache.get(b"b") is None
        assert cache.get(b"a") == {"v": "a"}
        assert cache.get(b"c") == {"v": "c"}

    def test_put_overwrites_in_place(self):
        cache = ResponseCache(max_entries=2)
        cache.put(b"a", {"v": 1})
        cache.put(b"a", {"v": 2})
        assert len(cache) == 1
        assert cache.get(b"a") == {"v": 2}

    def test_zero_entries_is_rejected(self):
        with pytest.raises(ParameterError):
            ResponseCache(max_entries=0)


SWEEP = SweepRequest(strides=(1, 2, 4))


class TestWarmTierIntegration:
    def test_repeat_request_hits_and_answers_are_byte_identical(self):
        with configured_failpoints(None):
            with ServerThread(num_shards=2) as plane:
                with plane.client() as client:
                    cold = client.call(SWEEP)
                    warm = client.call(SWEEP)
                    _, health = client.healthz()
        assert json.dumps(cold.to_dict(), sort_keys=True) == json.dumps(
            warm.to_dict(), sort_keys=True
        )
        stats = health["response_cache"]
        assert stats["hits"] >= 1
        assert stats["entries"] >= 1

    def test_warm_hit_skips_the_admission_gate(self):
        with configured_failpoints(None):
            with ServerThread(num_shards=2) as plane:
                with plane.client() as client:
                    client.call(SWEEP)
                    _, before = client.healthz()
                    client.call(SWEEP)
                    _, after = client.healthz()
        assert (
            after["gate"]["admitted_total"]
            == before["gate"]["admitted_total"]
        )

    def test_error_envelopes_are_never_cached(self):
        # Arm a permanent ingress fault for the first call: the 400
        # must not poison the tier for the retry that follows.
        with configured_failpoints(None):
            with ServerThread(num_shards=2) as plane:
                with plane.client() as client:
                    status, _ = client._exchange(
                        "POST",
                        "/v1/payload",
                        body=b"not json",
                        headers={"Content-Type": "application/json"},
                    )
                    assert status == 400
                    result = client.call(SWEEP)
                    _, health = client.healthz()
        assert result.points
        assert health["response_cache"]["entries"] == 1

    def test_disabled_tier_reports_zero_stats(self):
        with configured_failpoints(None):
            with ServerThread(
                num_shards=2, response_cache_entries=0
            ) as plane:
                with plane.client() as client:
                    client.call(SWEEP)
                    client.call(SWEEP)
                    _, health = client.healthz()
        assert health["response_cache"] == {
            "hits": 0, "misses": 0, "entries": 0, "max_entries": 0,
        }
