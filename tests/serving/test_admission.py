"""Admission gate: two-tier capacity, deterministic shedding, drain latch."""

import threading

import pytest

from repro.errors import DrainingError, OverloadedError, ParameterError
from repro.serving.admission import AdmissionGate


class TestAdmission:
    def test_admits_up_to_capacity_then_sheds(self):
        gate = AdmissionGate(max_inflight=2, max_queue=1)
        for _ in range(3):
            gate.admit()
        with pytest.raises(OverloadedError):
            gate.admit()
        assert gate.inflight == 3
        assert gate.admitted_total == 3
        assert gate.shed_total == 1

    def test_retry_after_scales_with_backlog(self):
        gate = AdmissionGate(max_inflight=1, max_queue=2, retry_after_base_s=0.1)
        for _ in range(3):
            gate.admit()
        with pytest.raises(OverloadedError) as caught:
            gate.admit()
        # backlog = admitted - max_inflight + 1 = 3; hint = 0.1 * 3.
        assert caught.value.retry_after_s == pytest.approx(0.3)

    def test_shedding_is_deterministic(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0, retry_after_base_s=0.05)
        gate.admit()
        hints = []
        for _ in range(3):
            with pytest.raises(OverloadedError) as caught:
                gate.admit()
            hints.append(caught.value.retry_after_s)
        assert hints == [hints[0]] * 3

    def test_release_reopens_slots(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        gate.admit()
        with pytest.raises(OverloadedError):
            gate.admit()
        gate.release()
        gate.admit()  # slot came back

    def test_drain_latch_fails_fast_but_keeps_inflight(self):
        gate = AdmissionGate(max_inflight=2, max_queue=0)
        gate.admit()
        gate.begin_drain()
        with pytest.raises(DrainingError):
            gate.admit()
        assert gate.draining
        assert gate.inflight == 1  # the admitted request keeps its slot
        gate.release()

    def test_wait_idle_is_the_drain_barrier(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        gate.admit()
        assert not gate.wait_idle(timeout=0.01)
        released = threading.Thread(target=gate.release)
        released.start()
        assert gate.wait_idle(timeout=5.0)
        released.join()

    def test_unbalanced_release_rejected(self):
        gate = AdmissionGate()
        with pytest.raises(ParameterError, match="release"):
            gate.release()

    def test_context_manager_pairs_admit_release(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        with gate:
            assert gate.inflight == 1
        assert gate.inflight == 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ParameterError):
            AdmissionGate(max_queue=-1)
        with pytest.raises(ParameterError):
            AdmissionGate(retry_after_base_s=0.0)
