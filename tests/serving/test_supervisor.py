"""Shard supervision: correct results, crash respawn, budget, degrade."""

import pytest

from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import (
    EvaluationTimeoutError,
    ParameterError,
    ReproError,
    ShapeError,
    ShardUnavailableError,
)
from repro.eval.parallel import DesignJob, run_design_jobs
from repro.reliability import configured_failpoints
from repro.reliability.policy import no_sleep
from repro.serving.supervisor import (
    DEGRADED,
    RUNNING,
    ShardSupervisor,
    _rebuild_error,
)

TECH = default_tech()
SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)
JOBS = tuple(
    DesignJob(design, SPEC, TECH, layer_name=design)
    for design in ("RED", "zero-padding", "padding-free")
)


def make_supervisor(**kwargs):
    kwargs.setdefault("num_shards", 1)
    kwargs.setdefault("sleeper", no_sleep)
    return ShardSupervisor(**kwargs)


class TestSupervisorCalls:
    def test_call_matches_in_process_results(self):
        with configured_failpoints(None):
            expected = run_design_jobs(list(JOBS))
            with make_supervisor() as sup:
                got = sup.call(0, JOBS)
        assert got == expected

    def test_unknown_shard_rejected(self):
        with make_supervisor() as sup:
            with pytest.raises(ParameterError, match="unknown shard"):
                sup.call(7, JOBS)

    def test_heartbeat_reports_running_shard(self):
        with configured_failpoints(None):
            with make_supervisor() as sup:
                status = sup.heartbeat(0)
        assert status["alive"]
        assert status["state"] == RUNNING
        assert status["stats"]["shard"] == 0

    def test_timeout_kills_and_respawns_the_shard(self):
        with configured_failpoints(None):
            with make_supervisor() as sup:
                with pytest.raises(EvaluationTimeoutError):
                    sup.call(0, JOBS, timeout=1e-4)
                # The unresponsive process was reclaimed, not waited on.
                assert sup.states()[0] == RUNNING
                assert sup.call(0, JOBS) == run_design_jobs(list(JOBS))


class TestRespawnBudget:
    def test_crashes_consume_budget_then_degrade(self):
        with configured_failpoints("serving.shard_call:crash@1.0", seed=3):
            with make_supervisor(respawn_budget=1) as sup:
                with pytest.raises(ShardUnavailableError, match="died mid-call"):
                    sup.call(0, JOBS)
                assert sup.states()[0] == RUNNING  # one respawn spent
                with pytest.raises(ShardUnavailableError):
                    sup.call(0, JOBS)
                assert sup.states()[0] == DEGRADED
                # Degraded shards fail fast without touching a pipe.
                with pytest.raises(ShardUnavailableError, match="budget spent"):
                    sup.call(0, JOBS)
            # stop() keeps the degraded verdict for post-mortems.
            assert sup.states()[0] == DEGRADED

    def test_respawned_shard_serves_again_when_fault_clears(self):
        # Shard processes inherit the armed registry at fork time, so a
        # respawn that happens while the fault is still armed produces
        # another crashing child; the first respawn after the fault
        # clears forks a healthy one.
        with configured_failpoints(None):
            expected = run_design_jobs(list(JOBS))
        with configured_failpoints("serving.shard_call:crash@1.0", seed=3):
            sup = make_supervisor(respawn_budget=2).start()
        try:
            with configured_failpoints(None):
                with pytest.raises(ShardUnavailableError):
                    sup.call(0, JOBS)  # armed child dies -> respawn forks clean
                assert sup.states()[0] == RUNNING
                assert sup.call(0, JOBS) == expected
        finally:
            sup.stop()


class TestErrorRebuild:
    def test_taxonomy_type_survives_the_pipe(self):
        exc = _rebuild_error(
            {"error_type": "ShapeError", "message": "bad", "retryable": False}, 1
        )
        assert isinstance(exc, ShapeError)
        assert "shard-1" in str(exc)

    def test_unknown_retryable_degrades_to_shard_unavailable(self):
        exc = _rebuild_error(
            {"error_type": "Mystery", "message": "x", "retryable": True}, 0
        )
        assert isinstance(exc, ShardUnavailableError)

    def test_unknown_permanent_degrades_to_repro_error(self):
        exc = _rebuild_error(
            {"error_type": "Mystery", "message": "x", "retryable": False}, 0
        )
        assert type(exc) is ReproError

    def test_os_error_resolves_via_builtins(self):
        exc = _rebuild_error(
            {"error_type": "OSError", "message": "disk", "retryable": True}, 2
        )
        assert isinstance(exc, OSError)
