"""Circuit breaker: closed -> open -> half-open -> probe, no wall clock."""

import pytest

from repro.errors import ParameterError
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestCircuitBreaker:
    def test_opens_after_consecutive_transient_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two in a row

    def test_half_open_allows_exactly_one_probe(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone behind it waits

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_total == 2
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # next probe after the fresh cooldown

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ParameterError):
            CircuitBreaker(cooldown_s=0.0)
