"""Tests for weight bit-slicing and input bit-serial encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DeviceError, ParameterError
from repro.reram.bitslice import (
    WeightSlicing,
    bit_serial_inputs,
    reassemble_slices,
    slice_weights,
)


class TestSlicingConfig:
    def test_default_8bit_2bpc(self):
        slicing = WeightSlicing()
        assert slicing.num_slices == 4
        assert slicing.base == 4
        assert slicing.magnitude_max == 127

    def test_uneven_division_rounds_up(self):
        assert WeightSlicing(bits_weight=7, bits_per_cell=2).num_slices == 4
        assert WeightSlicing(bits_weight=8, bits_per_cell=3).num_slices == 3


class TestSliceWeights:
    def test_round_trip_exact(self, rng):
        slicing = WeightSlicing()
        w = rng.integers(-127, 128, size=(6, 7))
        pos, neg = slice_weights(w, slicing)
        np.testing.assert_array_equal(reassemble_slices(pos, neg, slicing), w)

    @given(
        arrays(np.int64, (4, 3), elements=st.integers(-128, 127)),
        st.sampled_from([(8, 2), (8, 1), (8, 4), (6, 2), (4, 2)]),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, w, config):
        bits, bpc = config
        limit = 1 << (bits - 1)
        w = np.clip(w, -limit, limit - 1)
        slicing = WeightSlicing(bits_weight=bits, bits_per_cell=bpc)
        pos, neg = slice_weights(w, slicing)
        np.testing.assert_array_equal(reassemble_slices(pos, neg, slicing), w)

    def test_differential_exclusivity(self, rng):
        """A weight is positive or negative, never both planes at once."""
        slicing = WeightSlicing()
        w = rng.integers(-127, 128, size=(5, 5))
        pos, neg = slice_weights(w, slicing)
        overlap = (pos.sum(axis=-1) > 0) & (neg.sum(axis=-1) > 0)
        assert not overlap.any()

    def test_digits_within_cell_range(self, rng):
        slicing = WeightSlicing()
        pos, neg = slice_weights(rng.integers(-127, 128, size=(8, 8)), slicing)
        for plane in (pos, neg):
            assert plane.min() >= 0
            assert plane.max() < slicing.base

    def test_rejects_float_weights(self):
        with pytest.raises(ParameterError):
            slice_weights(np.ones((2, 2)), WeightSlicing())

    def test_rejects_out_of_range(self):
        with pytest.raises(DeviceError):
            slice_weights(np.array([200]), WeightSlicing())


class TestBitSerial:
    def test_round_trip(self, rng):
        x = rng.integers(0, 256, size=(10,))
        planes = bit_serial_inputs(x, 8)
        recon = sum((1 << b) * planes[b] for b in range(8))
        np.testing.assert_array_equal(recon, x)

    @given(arrays(np.int64, (6,), elements=st.integers(0, 255)))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, x):
        planes = bit_serial_inputs(x, 8)
        recon = sum((1 << b) * planes[b] for b in range(8))
        np.testing.assert_array_equal(recon, x)

    def test_planes_are_binary(self, rng):
        planes = bit_serial_inputs(rng.integers(0, 256, size=(20,)), 8)
        assert set(np.unique(planes)) <= {0, 1}

    def test_rejects_negative(self):
        with pytest.raises(DeviceError):
            bit_serial_inputs(np.array([-1]), 8)

    def test_rejects_overflow(self):
        with pytest.raises(DeviceError):
            bit_serial_inputs(np.array([256]), 8)

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            bit_serial_inputs(np.array([1.5]), 8)
