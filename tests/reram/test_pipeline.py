"""Tests for the composed bit-accurate crossbar pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ShapeError
from repro.reram.bitslice import WeightSlicing
from repro.reram.noise import NoiseModel
from repro.reram.pipeline import CrossbarPipeline


class TestExactness:
    def test_digital_path_exact(self, rng):
        w = rng.integers(-127, 128, size=(32, 12))
        x = rng.integers(0, 256, size=(6, 32))
        result = CrossbarPipeline(w).matmul(x)
        np.testing.assert_array_equal(result.values, x @ w)

    def test_analog_path_exact(self, rng):
        w = rng.integers(-127, 128, size=(24, 8))
        x = rng.integers(0, 256, size=(4, 24))
        result = CrossbarPipeline(w, analog=True).matmul(x)
        np.testing.assert_array_equal(result.values, x @ w)

    @given(
        arrays(np.int64, (6, 3), elements=st.integers(-127, 127)),
        arrays(np.int64, (2, 6), elements=st.integers(0, 255)),
    )
    @settings(max_examples=25, deadline=None)
    def test_exactness_property(self, w, x):
        result = CrossbarPipeline(w).matmul(x)
        np.testing.assert_array_equal(result.values, x @ w)

    @pytest.mark.parametrize("bpc", [1, 2, 4])
    def test_exact_across_cell_precisions(self, rng, bpc):
        from repro.reram.device import ReRAMDeviceParams

        w = rng.integers(-127, 128, size=(16, 5))
        x = rng.integers(0, 256, size=(3, 16))
        pipe = CrossbarPipeline(
            w,
            slicing=WeightSlicing(8, bpc),
            device=ReRAMDeviceParams(bits_per_cell=bpc),
        )
        np.testing.assert_array_equal(pipe.matmul(x).values, x @ w)

    def test_low_input_precision(self, rng):
        w = rng.integers(-7, 8, size=(8, 4))
        x = rng.integers(0, 16, size=(2, 8))
        pipe = CrossbarPipeline(w, slicing=WeightSlicing(4, 2), bits_input=4)
        np.testing.assert_array_equal(pipe.matmul(x).values, x @ w)


class TestDegradation:
    def test_reduced_adc_introduces_error(self, rng):
        w = rng.integers(-127, 128, size=(64, 8))
        x = rng.integers(0, 256, size=(8, 64))
        lossy = CrossbarPipeline(w, adc_bits=3).matmul(x)
        assert not np.array_equal(lossy.values, x @ w)

    def test_adc_error_decreases_with_bits(self, rng):
        w = rng.integers(-127, 128, size=(64, 8))
        x = rng.integers(0, 256, size=(8, 64))
        exact = (x @ w).astype(np.float64)

        def rel_err(bits):
            out = CrossbarPipeline(w, adc_bits=bits).matmul(x).values
            return np.abs(out - exact).mean() / (np.abs(exact).mean() + 1e-12)

        errors = [rel_err(b) for b in (2, 4, 6, 9)]
        assert errors[0] > errors[-1]
        assert errors[-1] < 0.05

    def test_programming_noise_degrades(self, rng):
        w = rng.integers(-127, 128, size=(32, 8))
        x = rng.integers(0, 256, size=(4, 32))
        noisy = CrossbarPipeline(
            w, noise=NoiseModel(programming_sigma=0.2, seed=11)
        ).matmul(x)
        exact = x @ w
        err = np.abs(noisy.values - exact).mean() / (np.abs(exact).mean() + 1e-12)
        assert 0.0 < err < 1.0


class TestActivity:
    def test_conversion_count(self, rng):
        w = rng.integers(-127, 128, size=(16, 6))
        x = rng.integers(0, 256, size=(3, 16))
        result = CrossbarPipeline(w).matmul(x)
        # bits_input * num_slices * 2 (differential) * cols * rows_of_x
        assert result.activity.adc_conversions == 8 * 4 * 2 * 6 * 3

    def test_pulse_count_tracks_ones(self):
        w = np.ones((4, 2), dtype=np.int64)
        x = np.array([[0, 0, 0, 0], [255, 255, 255, 255]])
        result = CrossbarPipeline(w).matmul(x)
        assert result.activity.input_pulses == 4 * 8  # only the all-ones row

    def test_matvec_shape_check(self, rng):
        pipe = CrossbarPipeline(rng.integers(-10, 10, size=(8, 3)))
        with pytest.raises(ShapeError):
            pipe.matvec(np.zeros(7, dtype=np.int64))

    def test_mismatched_device_rejected(self, rng):
        from repro.reram.device import ReRAMDeviceParams

        with pytest.raises(ShapeError):
            CrossbarPipeline(
                rng.integers(-10, 10, size=(8, 3)),
                slicing=WeightSlicing(8, 2),
                device=ReRAMDeviceParams(bits_per_cell=4),
            )
