"""Tests for the retention-drift model."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reram.device import ReRAMDeviceParams
from repro.reram.drift import DriftModel, drift_error_sweep


class TestDriftModel:
    def test_no_drift_at_reference_time(self, rng):
        device = ReRAMDeviceParams()
        g0 = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        model = DriftModel(nu=0.05)
        np.testing.assert_array_equal(model.conductance_at(g0, 1.0, device), g0)

    def test_conductance_decays_toward_hrs(self, rng):
        device = ReRAMDeviceParams()
        g0 = np.full((4, 4), device.g_max)
        model = DriftModel(nu=0.05)
        g_later = model.conductance_at(g0, 1e6, device)
        assert (g_later < g0).all()
        assert (g_later >= device.g_min).all()

    def test_hrs_cells_do_not_drift(self):
        device = ReRAMDeviceParams()
        g0 = np.full((2, 2), device.g_min)
        drifted = DriftModel(nu=0.1).conductance_at(g0, 1e7, device)
        np.testing.assert_allclose(drifted, g0)

    def test_monotone_in_time(self, rng):
        device = ReRAMDeviceParams()
        g0 = np.full((4,), device.g_max)
        model = DriftModel(nu=0.03)
        values = [model.conductance_at(g0, t, device)[0] for t in (1.0, 1e3, 1e6)]
        assert values[0] >= values[1] >= values[2]

    def test_zero_nu_is_stable(self, rng):
        device = ReRAMDeviceParams()
        g0 = rng.uniform(device.g_min, device.g_max, size=(4,))
        np.testing.assert_allclose(
            DriftModel(nu=0.0).conductance_at(g0, 1e9, device), g0
        )

    def test_negative_nu_rejected(self):
        with pytest.raises(ParameterError):
            DriftModel(nu=-0.1)


class TestDriftSweep:
    def test_error_zero_at_t0_then_nonzero(self, rng):
        w = rng.integers(-63, 64, size=(16, 4))
        points = drift_error_sweep(w, times=(1.0, 1e4, 1e7), nu=0.03)
        errors = [e for _, e in points]
        assert errors[0] == 0.0
        assert all(e > 0.0 for e in errors[1:])

    def test_higher_nu_worse(self, rng):
        w = rng.integers(-63, 64, size=(16, 4))
        mild = drift_error_sweep(w, times=(1e6,), nu=0.01)[0][1]
        harsh = drift_error_sweep(w, times=(1e6,), nu=0.08)[0][1]
        assert harsh >= mild

    def test_rejects_non_2d(self):
        with pytest.raises(ParameterError):
            drift_error_sweep(np.zeros(4, dtype=int))
