"""Tests for the analog crossbar array."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import ReRAMDeviceParams
from repro.reram.noise import NoiseModel


@pytest.fixture
def digits(rng):
    return rng.integers(0, 4, size=(16, 8))


class TestConstruction:
    def test_shape_properties(self, digits):
        xbar = CrossbarArray(digits)
        assert xbar.rows == 16
        assert xbar.cols == 8

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ShapeError):
            CrossbarArray(rng.integers(0, 4, size=(4,)))

    def test_conductance_within_window(self, digits):
        xbar = CrossbarArray(digits)
        assert xbar.conductance.min() >= xbar.device.g_min - 1e-12
        assert xbar.conductance.max() <= xbar.device.g_max + 1e-12


class TestAnalogReadback:
    def test_digit_sums_match_digital(self, digits, rng):
        xbar = CrossbarArray(digits)
        for _ in range(5):
            pulses = rng.integers(0, 2, size=(16,))
            np.testing.assert_array_equal(
                xbar.digit_sums(pulses), xbar.ideal_digit_sums(pulses)
            )

    def test_currents_linear_in_pulses(self, digits):
        xbar = CrossbarArray(digits)
        p1 = np.zeros(16, dtype=int)
        p1[2] = 1
        p2 = np.zeros(16, dtype=int)
        p2[9] = 1
        both = p1 + p2
        np.testing.assert_allclose(
            xbar.column_currents(both),
            xbar.column_currents(p1) + xbar.column_currents(p2),
            rtol=1e-9,
        )

    def test_no_pulses_no_current(self, digits):
        xbar = CrossbarArray(digits)
        assert not xbar.column_currents(np.zeros(16, dtype=int)).any()

    def test_wrong_pulse_length_raises(self, digits):
        xbar = CrossbarArray(digits)
        with pytest.raises(ShapeError):
            xbar.column_currents(np.zeros(15, dtype=int))

    def test_max_column_sum(self, digits):
        xbar = CrossbarArray(digits)
        assert xbar.max_column_sum() == 16 * 3

    def test_binary_device(self, rng):
        device = ReRAMDeviceParams(bits_per_cell=1)
        digits = rng.integers(0, 2, size=(8, 4))
        xbar = CrossbarArray(digits, device=device)
        pulses = rng.integers(0, 2, size=(8,))
        np.testing.assert_array_equal(
            xbar.digit_sums(pulses), pulses @ digits
        )


class TestNonIdealities:
    def test_programming_noise_perturbs_conductance(self, digits):
        ideal = CrossbarArray(digits)
        noisy = CrossbarArray(digits, noise=NoiseModel(programming_sigma=0.1, seed=3))
        assert not np.allclose(ideal.conductance, noisy.conductance)

    def test_noise_clipped_to_window(self, digits):
        noisy = CrossbarArray(digits, noise=NoiseModel(programming_sigma=0.8, seed=3))
        device = noisy.device
        assert noisy.conductance.min() >= device.g_min - 1e-15
        assert noisy.conductance.max() <= device.g_max + 1e-15

    def test_ir_drop_reduces_current(self, digits):
        ideal = CrossbarArray(digits)
        droopy = CrossbarArray(
            digits, noise=NoiseModel(ir_drop=True, seed=0), wire_resistance=5.0
        )
        pulses = np.ones(16, dtype=int)
        assert droopy.column_currents(pulses).sum() < ideal.column_currents(pulses).sum()

    def test_ir_drop_worse_for_far_columns(self, rng):
        digits = np.full((8, 8), 3)
        droopy = CrossbarArray(
            digits, noise=NoiseModel(ir_drop=True), wire_resistance=10.0
        )
        currents = droopy.column_currents(np.ones(8, dtype=int))
        assert currents[0] > currents[-1]

    def test_stuck_at_faults_change_some_cells(self, digits):
        faulty = CrossbarArray(digits, noise=NoiseModel(stuck_at_rate=0.3, seed=9))
        ideal = CrossbarArray(digits)
        assert (faulty.conductance != ideal.conductance).any()
