"""Tests for the shift-adder."""

import numpy as np
import pytest

from repro.reram.shift_adder import ShiftAdder, combine_bit_planes


class TestShiftAdder:
    def test_single_accumulate(self):
        adder = ShiftAdder()
        adder.accumulate(np.array([1, 2, 3]), shift=2)
        np.testing.assert_array_equal(adder.value, [4, 8, 12])

    def test_weighted_sum(self):
        adder = ShiftAdder()
        adder.accumulate(np.array([1, 1]), shift=0)
        adder.accumulate(np.array([1, 0]), shift=3)
        np.testing.assert_array_equal(adder.value, [9, 1])

    def test_signed_accumulate(self):
        adder = ShiftAdder()
        adder.accumulate_signed(np.array([5]), np.array([2]), shift=1)
        np.testing.assert_array_equal(adder.value, [6])

    def test_counters(self):
        adder = ShiftAdder()
        adder.accumulate(np.zeros(4, dtype=int), 0)
        adder.accumulate(np.zeros(4, dtype=int), 1)
        assert adder.operations == 8
        assert adder.accumulations == 2

    def test_reset_keeps_counters(self):
        adder = ShiftAdder()
        adder.accumulate(np.array([1]), 0)
        adder.reset()
        assert adder.value.size == 0
        assert adder.operations == 1

    def test_negative_shift_rejected(self):
        with pytest.raises(Exception):
            ShiftAdder().accumulate(np.array([1]), shift=-1)


class TestCombineBitPlanes:
    def test_radix2(self, rng):
        x = rng.integers(0, 256, size=(12,))
        planes = np.stack([(x >> b) & 1 for b in range(8)])
        np.testing.assert_array_equal(combine_bit_planes(planes, radix_bits=1), x)

    def test_radix4(self, rng):
        x = rng.integers(0, 4**4, size=(9,))
        digits = np.stack([(x >> (2 * d)) & 3 for d in range(4)])
        np.testing.assert_array_equal(combine_bit_planes(digits, radix_bits=2), x)

    def test_empty_leading_axis(self):
        out = combine_bit_planes(np.zeros((0, 5), dtype=int))
        np.testing.assert_array_equal(out, np.zeros(5, dtype=int))
