"""Tests for write-verify programming."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.reram.device import conductance_to_digits
from repro.reram.noise import NoiseModel
from repro.reram.program import WriteVerifyProgrammer


class TestProgramming:
    def test_ideal_programming_converges_first_round(self, rng):
        target = rng.integers(0, 4, size=(16, 16))
        result = WriteVerifyProgrammer().program(target)
        assert result.iterations == 1
        assert result.converged_fraction == 1.0
        assert result.total_pulses == target.size

    def test_readback_matches_target(self, rng):
        prog = WriteVerifyProgrammer(noise=NoiseModel(programming_sigma=0.05, seed=1))
        target = rng.integers(0, 4, size=(32, 32))
        result = prog.program(target)
        readback = conductance_to_digits(result.conductance, prog.device)
        match = (readback == target).mean()
        assert match >= result.converged_fraction - 1e-12

    def test_noisy_programming_uses_more_pulses(self, rng):
        target = rng.integers(0, 4, size=(64, 64))
        clean = WriteVerifyProgrammer().program(target)
        noisy = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=0.4, seed=7)
        ).program(target)
        assert noisy.total_pulses >= clean.total_pulses

    def test_iteration_budget_respected(self, rng):
        prog = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=2.0, seed=3), max_iterations=3
        )
        result = prog.program(rng.integers(0, 4, size=(16, 16)))
        assert result.iterations <= 3

    def test_empty_target_rejected(self):
        with pytest.raises(DeviceError):
            WriteVerifyProgrammer().program(np.zeros((0, 4), dtype=int))
