"""Tests for write-verify programming."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.reram.device import conductance_to_digits
from repro.reram.noise import NoiseModel
from repro.reram.program import WriteVerifyProgrammer


class TestProgramming:
    def test_ideal_programming_converges_first_round(self, rng):
        target = rng.integers(0, 4, size=(16, 16))
        result = WriteVerifyProgrammer().program(target)
        assert result.iterations == 1
        assert result.converged_fraction == 1.0
        assert result.total_pulses == target.size

    def test_readback_matches_target(self, rng):
        prog = WriteVerifyProgrammer(noise=NoiseModel(programming_sigma=0.05, seed=1))
        target = rng.integers(0, 4, size=(32, 32))
        result = prog.program(target)
        readback = conductance_to_digits(result.conductance, prog.device)
        match = (readback == target).mean()
        assert match >= result.converged_fraction - 1e-12

    def test_noisy_programming_uses_more_pulses(self, rng):
        target = rng.integers(0, 4, size=(64, 64))
        clean = WriteVerifyProgrammer().program(target)
        noisy = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=0.4, seed=7)
        ).program(target)
        assert noisy.total_pulses >= clean.total_pulses

    def test_iteration_budget_respected(self, rng):
        prog = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=2.0, seed=3), max_iterations=3
        )
        result = prog.program(rng.integers(0, 4, size=(16, 16)))
        assert result.iterations <= 3

    def test_empty_target_rejected(self):
        with pytest.raises(DeviceError):
            WriteVerifyProgrammer().program(np.zeros((0, 4), dtype=int))


class TestStuckFaults:
    def test_stuck_pattern_fixed_across_verify_rounds(self, rng):
        """A stuck cell pinned to the wrong extreme never reports converged."""
        prog = WriteVerifyProgrammer(
            noise=NoiseModel(stuck_at_rate=0.05, seed=13), max_iterations=8
        )
        device = prog.device
        # Every target sits mid-window, so a cell stuck at either extreme
        # can never read back its target digit.
        target = np.full((32, 32), device.num_levels // 2)
        result = prog.program(target)
        assert result.stuck_cells > 0
        # The programmer kept retrying the stuck cells to the bitter end...
        assert result.iterations == prog.max_iterations
        # ...and reported exactly the healthy fraction as converged.
        expected = 1.0 - result.stuck_cells / target.size
        assert result.converged_fraction == pytest.approx(expected)
        # Readback is wrong at every stuck position.
        readback = conductance_to_digits(result.conductance, device)
        stuck_positions = readback != target
        assert stuck_positions.sum() == result.stuck_cells

    def test_program_is_deterministic(self, rng):
        prog = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=0.1, stuck_at_rate=0.02, seed=5)
        )
        target = rng.integers(0, 4, size=(16, 16))
        a = prog.program(target)
        b = prog.program(target)
        np.testing.assert_array_equal(a.conductance, b.conductance)
        assert a.iterations == b.iterations
        assert a.total_pulses == b.total_pulses
        assert a.converged_fraction == b.converged_fraction
        assert a.stuck_cells == b.stuck_cells

    def test_distinct_streams_give_distinct_sessions(self, rng):
        prog = WriteVerifyProgrammer(
            noise=NoiseModel(programming_sigma=0.2, seed=5)
        )
        target = rng.integers(0, 4, size=(16, 16))
        a = prog.program(target, stream=0)
        b = prog.program(target, stream=1)
        assert not np.array_equal(a.conductance, b.conductance)

    def test_no_noise_reports_zero_stuck_cells(self, rng):
        result = WriteVerifyProgrammer().program(rng.integers(0, 4, size=(8, 8)))
        assert result.stuck_cells == 0
