"""Tests for the ADC / read-circuit model."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reram.adc import ADCParams, adc_for_crossbar, exact_adc_bits, quantize_readout


class TestExactBits:
    def test_known_values(self):
        assert exact_adc_bits(1, 2) == 1           # max sum 1
        assert exact_adc_bits(128, 4) == 9         # max sum 384 -> 9 bits
        assert exact_adc_bits(512, 4) == 11        # max sum 1536

    def test_monotone_in_rows(self):
        bits = [exact_adc_bits(r, 4) for r in (1, 16, 64, 256, 1024)]
        assert bits == sorted(bits)

    def test_rejects_bad_args(self):
        with pytest.raises(ParameterError):
            exact_adc_bits(0, 4)


class TestQuantizeReadout:
    def test_none_is_lossless(self, rng):
        sums = rng.integers(0, 1000, size=(32,))
        np.testing.assert_array_equal(quantize_readout(sums, None), sums)

    def test_full_resolution_only_saturates(self, rng):
        params = ADCParams(bits=10, full_scale=384)
        sums = rng.integers(0, 385, size=(64,))
        np.testing.assert_array_equal(quantize_readout(sums, params), sums)

    def test_saturation_clips(self):
        params = ADCParams(bits=10, full_scale=100)
        np.testing.assert_array_equal(
            quantize_readout(np.array([150, -5]), params), np.array([100, 0])
        )

    def test_low_resolution_quantizes(self):
        params = ADCParams(bits=2, full_scale=300)
        out = quantize_readout(np.arange(0, 301, 50), params)
        assert len(np.unique(out)) <= 4

    def test_quantization_monotone(self):
        params = ADCParams(bits=3, full_scale=1000)
        inputs = np.arange(0, 1001, 7)
        out = quantize_readout(inputs, params)
        assert (np.diff(out) >= 0).all()

    def test_reconstruction_error_bounded_by_step(self, rng):
        params = ADCParams(bits=5, full_scale=992)
        sums = rng.integers(0, 993, size=(100,))
        out = quantize_readout(sums, params)
        assert np.abs(out - sums).max() <= params.step / 2 + 1


class TestAdcForCrossbar:
    def test_default_is_exact(self):
        params = adc_for_crossbar(128, 4)
        assert params.bits == exact_adc_bits(128, 4)
        assert params.full_scale == 128 * 3

    def test_explicit_bits_respected(self):
        assert adc_for_crossbar(128, 4, bits=6).bits == 6

    def test_num_codes(self):
        assert ADCParams(bits=8, full_scale=100).num_codes == 256
