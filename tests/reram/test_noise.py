"""Tests for the non-ideality models."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reram.device import ReRAMDeviceParams
from repro.reram.noise import NoiseModel


class TestNoiseModel:
    def test_zero_noise_is_identity_on_programming(self, rng):
        device = ReRAMDeviceParams()
        model = NoiseModel()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        np.testing.assert_array_equal(model.apply_programming(g, device), g)

    def test_zero_noise_is_identity_on_read(self, rng):
        model = NoiseModel()
        currents = rng.uniform(0, 1e-5, size=(16,))
        np.testing.assert_array_equal(model.apply_read(currents), currents)

    def test_programming_noise_deterministic_per_seed(self, rng):
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        a = NoiseModel(programming_sigma=0.1, seed=5).apply_programming(g, device)
        b = NoiseModel(programming_sigma=0.1, seed=5).apply_programming(g, device)
        np.testing.assert_array_equal(a, b)

    def test_read_noise_scales_with_sigma(self, rng):
        currents = rng.uniform(1e-6, 1e-5, size=(512,))
        small = NoiseModel(read_noise_sigma=0.01, seed=1).apply_read(currents)
        large = NoiseModel(read_noise_sigma=0.2, seed=1).apply_read(currents)
        assert np.abs(large - currents).std() > np.abs(small - currents).std()

    def test_stuck_at_rate_fraction(self, rng):
        device = ReRAMDeviceParams()
        g = np.full((100, 100), (device.g_min + device.g_max) / 2)
        out = NoiseModel(stuck_at_rate=0.25, seed=2).apply_programming(g, device)
        frac = (out != g[0, 0]).mean()
        assert 0.15 < frac < 0.35

    def test_invalid_rate_rejected(self):
        with pytest.raises(ParameterError):
            NoiseModel(stuck_at_rate=1.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ParameterError):
            NoiseModel(programming_sigma=-0.1)


class TestSeedingContract:
    """The SeedSequence-spawn seeding contract (see repro/reram/__init__.py)."""

    def test_explicit_stream_is_a_pure_function_of_seed(self, rng):
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        model = NoiseModel(programming_sigma=0.1, seed=5)
        a = model.apply_programming(g, device, stream=3)
        b = model.apply_programming(g, device, stream=3)
        np.testing.assert_array_equal(a, b)

    def test_counter_sequence_reproducible_across_instances(self, rng):
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        first = NoiseModel(programming_sigma=0.1, seed=9)
        second = NoiseModel(programming_sigma=0.1, seed=9)
        for _ in range(3):
            np.testing.assert_array_equal(
                first.apply_programming(g, device),
                second.apply_programming(g, device),
            )

    def test_counter_calls_draw_fresh_variates(self, rng):
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        model = NoiseModel(programming_sigma=0.1, seed=9)
        assert not np.array_equal(
            model.apply_programming(g, device), model.apply_programming(g, device)
        )

    def test_domains_do_not_interfere(self, rng):
        """Interleaved reads must not shift the programming draws."""
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        currents = rng.uniform(1e-6, 1e-5, size=(16,))
        plain = NoiseModel(programming_sigma=0.1, read_noise_sigma=0.05, seed=4)
        interleaved = NoiseModel(programming_sigma=0.1, read_noise_sigma=0.05, seed=4)
        a = plain.apply_programming(g, device)
        interleaved.apply_read(currents)
        b = interleaved.apply_programming(g, device)
        np.testing.assert_array_equal(a, b)

    def test_stuck_pattern_independent_of_programming_sigma(self, rng):
        device = ReRAMDeviceParams()
        noisy = NoiseModel(programming_sigma=0.3, stuck_at_rate=0.1, seed=11)
        clean = NoiseModel(stuck_at_rate=0.1, seed=11)
        mask_noisy, ext_noisy = noisy.stuck_faults((32, 32), device, stream=0)
        mask_clean, ext_clean = clean.stuck_faults((32, 32), device, stream=0)
        np.testing.assert_array_equal(mask_noisy, mask_clean)
        np.testing.assert_array_equal(ext_noisy, ext_clean)

    def test_negative_stream_rejected(self):
        model = NoiseModel(programming_sigma=0.1, seed=0)
        with pytest.raises(ParameterError):
            model.programming_factors((2, 2), stream=-1)

    def test_bool_stream_rejected(self):
        model = NoiseModel(programming_sigma=0.1, seed=0)
        with pytest.raises(ParameterError):
            model.programming_factors((2, 2), stream=True)


class TestEmptyReadGuard:
    def test_empty_input_returned_unchanged(self):
        model = NoiseModel(read_noise_sigma=0.1, seed=0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # np.mean([]) would warn then NaN
            out = model.apply_read(np.zeros((0,)))
        assert out.shape == (0,)
        assert not np.isnan(out).any()

    def test_empty_2d_input(self):
        model = NoiseModel(read_noise_sigma=0.1, seed=0)
        out = model.apply_read(np.zeros((4, 0)))
        assert out.shape == (4, 0)
