"""Tests for the non-ideality models."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reram.device import ReRAMDeviceParams
from repro.reram.noise import NoiseModel


class TestNoiseModel:
    def test_zero_noise_is_identity_on_programming(self, rng):
        device = ReRAMDeviceParams()
        model = NoiseModel()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        np.testing.assert_array_equal(model.apply_programming(g, device), g)

    def test_zero_noise_is_identity_on_read(self, rng):
        model = NoiseModel()
        currents = rng.uniform(0, 1e-5, size=(16,))
        np.testing.assert_array_equal(model.apply_read(currents), currents)

    def test_programming_noise_deterministic_per_seed(self, rng):
        device = ReRAMDeviceParams()
        g = rng.uniform(device.g_min, device.g_max, size=(8, 8))
        a = NoiseModel(programming_sigma=0.1, seed=5).apply_programming(g, device)
        b = NoiseModel(programming_sigma=0.1, seed=5).apply_programming(g, device)
        np.testing.assert_array_equal(a, b)

    def test_read_noise_scales_with_sigma(self, rng):
        currents = rng.uniform(1e-6, 1e-5, size=(512,))
        small = NoiseModel(read_noise_sigma=0.01, seed=1).apply_read(currents)
        large = NoiseModel(read_noise_sigma=0.2, seed=1).apply_read(currents)
        assert np.abs(large - currents).std() > np.abs(small - currents).std()

    def test_stuck_at_rate_fraction(self, rng):
        device = ReRAMDeviceParams()
        g = np.full((100, 100), (device.g_min + device.g_max) / 2)
        out = NoiseModel(stuck_at_rate=0.25, seed=2).apply_programming(g, device)
        frac = (out != g[0, 0]).mean()
        assert 0.15 < frac < 0.35

    def test_invalid_rate_rejected(self):
        with pytest.raises(ParameterError):
            NoiseModel(stuck_at_rate=1.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ParameterError):
            NoiseModel(programming_sigma=-0.1)
