"""Tests for the 1T1R cell model."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.reram.device import (
    ReRAMDeviceParams,
    conductance_grid,
    conductance_to_digits,
    digits_to_conductance,
)


class TestParams:
    def test_defaults_are_consistent(self):
        params = ReRAMDeviceParams()
        assert params.g_max > params.g_min > 0
        assert params.num_levels == 4
        assert params.on_off_ratio == pytest.approx(10.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(DeviceError):
            ReRAMDeviceParams(r_on=1e6, r_off=100e3)

    def test_rejects_non_positive_resistance(self):
        with pytest.raises(Exception):
            ReRAMDeviceParams(r_on=0.0)

    def test_num_levels_scales_with_bits(self):
        assert ReRAMDeviceParams(bits_per_cell=1).num_levels == 2
        assert ReRAMDeviceParams(bits_per_cell=3).num_levels == 8

    def test_cell_current_monotone_in_level(self):
        params = ReRAMDeviceParams()
        currents = [params.cell_current(l) for l in range(params.num_levels)]
        assert currents == sorted(currents)

    def test_cell_current_rejects_bad_level(self):
        params = ReRAMDeviceParams()
        with pytest.raises(DeviceError):
            params.cell_current(params.num_levels)


class TestConductanceGrid:
    def test_grid_spans_window(self):
        params = ReRAMDeviceParams()
        grid = conductance_grid(params)
        assert grid[0] == pytest.approx(params.g_min)
        assert grid[-1] == pytest.approx(params.g_max)
        assert len(grid) == params.num_levels

    def test_grid_uniform_spacing(self):
        grid = conductance_grid(ReRAMDeviceParams(bits_per_cell=3))
        steps = np.diff(grid)
        np.testing.assert_allclose(steps, steps[0])

    def test_digit_round_trip(self):
        params = ReRAMDeviceParams()
        digits = np.arange(params.num_levels).reshape(2, 2)
        g = digits_to_conductance(digits, params)
        np.testing.assert_array_equal(conductance_to_digits(g, params), digits)

    def test_out_of_range_digit_raises(self):
        params = ReRAMDeviceParams()
        with pytest.raises(DeviceError):
            digits_to_conductance(np.array([4]), params)
        with pytest.raises(DeviceError):
            digits_to_conductance(np.array([-1]), params)

    def test_nearest_level_snapping(self):
        params = ReRAMDeviceParams()
        grid = conductance_grid(params)
        perturbed = grid + 0.2 * (grid[1] - grid[0])
        np.testing.assert_array_equal(
            conductance_to_digits(perturbed, params), np.arange(params.num_levels)
        )


class TestGridModes:
    def test_resistance_grid_endpoints(self):
        params = ReRAMDeviceParams(grid_mode="resistance")
        grid = conductance_grid(params)
        assert grid[0] == pytest.approx(params.g_min)
        assert grid[-1] == pytest.approx(params.g_max)

    def test_resistance_grid_is_nonuniform_in_conductance(self):
        grid = conductance_grid(ReRAMDeviceParams(grid_mode="resistance"))
        steps = np.diff(grid)
        assert steps.max() / steps.min() > 1.5

    def test_unknown_mode_rejected(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            ReRAMDeviceParams(grid_mode="logarithmic")

    def test_resistance_grid_breaks_analog_exactness(self, rng):
        """Why PIM cells use conductance spacing: on a uniform-resistance
        grid the affine integer readback no longer holds."""
        from repro.reram.crossbar import CrossbarArray

        digits = rng.integers(0, 4, size=(32, 8))
        pulses = rng.integers(0, 2, size=(32,))
        good = CrossbarArray(digits, device=ReRAMDeviceParams())
        assert np.array_equal(good.digit_sums(pulses), good.ideal_digit_sums(pulses))
        bad = CrossbarArray(digits, device=ReRAMDeviceParams(grid_mode="resistance"))
        assert not np.array_equal(bad.digit_sums(pulses), bad.ideal_digit_sums(pulses))
