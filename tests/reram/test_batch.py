"""The vectorized Monte-Carlo fidelity plane vs its scalar oracle.

Covers the ISSUE-6 contracts:

- ``sample_fidelity_grid`` is **bit-identical** to the scalar
  ``fidelity_point`` composition of the fixed noise/drift/adc modules,
  across probe shapes, seeds, times, noise scenarios and ADC configs
  (hypothesis property).
- Results are **invariant to batch order and sharding** — a point's
  stats depend only on its ``(seed, time)`` values.
- The numpy reduction identities the bit-contract rests on hold:
  stacked outer-axis sums equal per-slice sums, stacked last-axis
  means equal per-row means.
- ``run_fidelity_jobs`` respects the batched cache discipline: results
  in job order, relabelled per job, cold/warm byte-identical.
"""

import pickle

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.eval.parallel import (
    FIDELITY_KIND,
    FidelityJob,
    fidelity_job_key,
    fidelity_job_keys,
    run_fidelity_jobs,
)
from repro.eval.store import PackedSweepStore
from repro.reram.adc import adc_for_crossbar
from repro.reram.batch import (
    FidelityProfile,
    fidelity_point,
    profile_digits,
    profile_for_design,
    read_noise_stream,
    sample_fidelity_grid,
)
from repro.reram.device import ReRAMDeviceParams, digits_to_conductance
from repro.reram.noise import NoiseModel

SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
seeds_lists = st.lists(st.integers(0, 2**31), min_size=1, max_size=4, unique=True)
times_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=4,
    unique=True,
)
sigmas = st.one_of(st.just(0.0), st.floats(0.01, 0.5, allow_nan=False))
rates = st.one_of(st.just(0.0), st.floats(0.001, 0.3, allow_nan=False))


@st.composite
def profiles(draw):
    rows = draw(st.integers(1, 12))
    cols = draw(st.integers(1, 8))
    device = ReRAMDeviceParams(bits_per_cell=draw(st.integers(1, 3)))
    if draw(st.booleans()):
        adc = adc_for_crossbar(
            rows, device.num_levels, draw(st.one_of(st.none(), st.integers(2, 10)))
        )
    else:
        adc = None
    return FidelityProfile(
        design=draw(st.sampled_from(("probe", "x"))),
        rows=rows,
        cols=cols,
        device=device,
        adc=adc,
    )


def grid_points(seeds, times):
    return [(seed, time_s) for seed in seeds for time_s in times]


# ----------------------------------------------------------------------
# Bit-identity against the scalar oracle
# ----------------------------------------------------------------------
class TestBitIdentity:
    @given(
        profile=profiles(),
        seeds=seeds_lists,
        times=times_lists,
        nu=st.floats(0.0, 0.1, allow_nan=False),
        programming_sigma=sigmas,
        read_noise_sigma=sigmas,
        stuck_at_rate=rates,
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_batched_equals_scalar_oracle(
        self, profile, seeds, times, nu,
        programming_sigma, read_noise_sigma, stuck_at_rate,
    ):
        scenario = dict(
            nu=nu,
            programming_sigma=programming_sigma,
            read_noise_sigma=read_noise_sigma,
            stuck_at_rate=stuck_at_rate,
            layer="L",
        )
        points = grid_points(seeds, times)
        batched = sample_fidelity_grid(profile, points, **scenario)
        scalar = [
            fidelity_point(profile, seed, time_s, **scenario)
            for seed, time_s in points
        ]
        assert batched == scalar  # FidelityStats is all-float: == is bitwise

    def test_registered_designs_bit_identical(self):
        scenario = dict(
            programming_sigma=0.08, read_noise_sigma=0.02, stuck_at_rate=0.01
        )
        points = grid_points((0, 1, 7), (1.0, 3600.0, 3.2e7))
        for design in ("zero-padding", "padding-free", "RED"):
            profile = profile_for_design(design, SPEC)
            assert sample_fidelity_grid(profile, points, **scenario) == [
                fidelity_point(profile, s, t, **scenario) for s, t in points
            ]

    def test_zero_noise_lossless_adc_is_exact(self):
        profile = profile_for_design("RED", SPEC)
        [stats] = sample_fidelity_grid(
            profile, [(0, 1.0)], programming_sigma=0.0, nu=0.0
        )
        assert stats.rms_error == 0.0
        assert stats.max_abs_error == 0.0
        assert stats.stuck_fraction == 0.0

    def test_empty_points(self):
        assert sample_fidelity_grid(profile_for_design("RED", SPEC), []) == []

    def test_duplicate_points_return_identical_stats(self):
        profile = profile_for_design("RED", SPEC)
        a, b = sample_fidelity_grid(
            profile, [(3, 60.0), (3, 60.0)], programming_sigma=0.1
        )
        assert a == b


# ----------------------------------------------------------------------
# Order and shard invariance
# ----------------------------------------------------------------------
class TestBatchInvariance:
    SCENARIO = dict(
        programming_sigma=0.1, read_noise_sigma=0.03, stuck_at_rate=0.02
    )

    @given(
        profile=profiles(),
        seeds=seeds_lists,
        times=times_lists,
        shuffler=st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_order_invariance(self, profile, seeds, times, shuffler):
        points = grid_points(seeds, times)
        shuffled = list(points)
        shuffler.shuffle(shuffled)
        by_point = dict(
            zip(points, sample_fidelity_grid(profile, points, **self.SCENARIO))
        )
        for point, stats in zip(
            shuffled, sample_fidelity_grid(profile, shuffled, **self.SCENARIO)
        ):
            assert stats == by_point[point]

    @given(
        profile=profiles(),
        seeds=seeds_lists,
        times=times_lists,
        split=st.integers(0, 15),
    )
    @settings(max_examples=25, deadline=None)
    def test_shard_invariance(self, profile, seeds, times, split):
        points = grid_points(seeds, times)
        cut = split % (len(points) + 1)
        full = sample_fidelity_grid(profile, points, **self.SCENARIO)
        sharded = sample_fidelity_grid(
            profile, points[:cut], **self.SCENARIO
        ) + sample_fidelity_grid(profile, points[cut:], **self.SCENARIO)
        assert sharded == full

    def test_read_noise_stream_is_a_value_key(self):
        assert read_noise_stream(3600.0) == read_noise_stream(3600)
        assert read_noise_stream(1.0) != read_noise_stream(2.0)
        assert read_noise_stream(1e12) >= 0


# ----------------------------------------------------------------------
# The numpy identities the bit-contract rests on
# ----------------------------------------------------------------------
class TestReductionIdentities:
    @given(
        stack=st.integers(1, 5),
        rows=st.integers(1, 16),
        cols=st.integers(1, 16),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_stacked_outer_sum_equals_per_slice_sum(self, stack, rows, cols, seed):
        data = np.random.default_rng(seed).uniform(0, 1, size=(stack, rows, cols))
        stacked = data.sum(axis=1)
        for index in range(stack):
            np.testing.assert_array_equal(stacked[index], data[index].sum(axis=0))

    @given(
        stack=st.integers(1, 5),
        cols=st.integers(1, 16),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_stacked_last_axis_mean_equals_per_row_mean(self, stack, cols, seed):
        data = np.random.default_rng(seed).uniform(0, 1, size=(stack, cols))
        stacked = np.mean(data, axis=-1)
        for index in range(stack):
            assert stacked[index] == np.mean(data[index])

    def test_apply_programming_promotes_float32_to_float64(self):
        device = ReRAMDeviceParams()
        digits = profile_digits(
            FidelityProfile(design="p", rows=4, cols=4, device=device)
        )
        ideal64 = digits_to_conductance(digits, device)
        out32 = NoiseModel(programming_sigma=0.1, seed=3).apply_programming(
            ideal64.astype(np.float32), device, stream=0
        )
        out64 = NoiseModel(programming_sigma=0.1, seed=3).apply_programming(
            ideal64, device, stream=0
        )
        assert out32.dtype == np.float64
        np.testing.assert_allclose(out32, out64, rtol=1e-6)


# ----------------------------------------------------------------------
# The cache-backed runner
# ----------------------------------------------------------------------
def make_fidelity_jobs():
    tech = default_tech()
    return [
        FidelityJob(
            design=design, spec=SPEC, tech=tech, seed=seed, time_s=time_s,
            programming_sigma=0.08, stuck_at_rate=0.01,
            layer_name=f"{design}:{seed}",
        )
        for design in ("RED", "zero-padding")
        for seed in (0, 1)
        for time_s in (1.0, 3600.0)
    ]


class TestRunFidelityJobs:
    def test_results_in_job_order_and_relabelled(self):
        jobs = make_fidelity_jobs()
        results = run_fidelity_jobs(jobs)
        assert len(results) == len(jobs)
        for job, stats in zip(jobs, results):
            assert stats.layer == job.layer_name
            assert stats.seed == job.seed
            assert stats.time_s == job.time_s

    def test_matches_direct_sampling(self):
        jobs = make_fidelity_jobs()
        results = run_fidelity_jobs(jobs)
        for job, stats in zip(jobs, results):
            profile = profile_for_design(job.design, job.spec, job.tech)
            direct = fidelity_point(
                profile, job.seed, job.time_s,
                nu=job.nu,
                programming_sigma=job.programming_sigma,
                read_noise_sigma=job.read_noise_sigma,
                stuck_at_rate=job.stuck_at_rate,
                layer=job.layer_name,
            )
            assert stats == direct

    def test_cold_warm_byte_identical(self, tmp_path):
        jobs = make_fidelity_jobs()
        store = PackedSweepStore(tmp_path / "fid")
        cold = run_fidelity_jobs(jobs, cache=store)
        assert store.misses == len(jobs)
        warm = run_fidelity_jobs(jobs, cache=store)
        assert store.misses == len(jobs)  # no new misses: all hits
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_job_order_does_not_change_results(self, tmp_path):
        jobs = make_fidelity_jobs()
        store = PackedSweepStore(tmp_path / "fid")
        forward = run_fidelity_jobs(jobs, cache=store)
        backward = run_fidelity_jobs(list(reversed(jobs)), cache=store)
        assert backward == list(reversed(forward))

    def test_batched_keys_match_scalar(self):
        jobs = make_fidelity_jobs()
        assert fidelity_job_keys(jobs) == [fidelity_job_key(job) for job in jobs]

    def test_keys_separate_kinds_and_scenarios(self):
        job = make_fidelity_jobs()[0]
        assert fidelity_job_key(job) != fidelity_job_key(job, kind="other")
        bumped = FidelityJob(
            design=job.design, spec=job.spec, tech=job.tech,
            seed=job.seed + 1, time_s=job.time_s,
            programming_sigma=job.programming_sigma,
            stuck_at_rate=job.stuck_at_rate, layer_name=job.layer_name,
        )
        assert fidelity_job_key(job) != fidelity_job_key(bumped)

    def test_store_round_trips_fidelity_stats(self, tmp_path):
        jobs = make_fidelity_jobs()
        results = run_fidelity_jobs(jobs)
        keys = fidelity_job_keys(jobs)
        store = PackedSweepStore(tmp_path / "raw")
        store.put_many(zip(keys, results), kind=FIDELITY_KIND)
        reopened = PackedSweepStore(tmp_path / "raw")
        assert reopened.get_many(keys, kind=FIDELITY_KIND) == results
