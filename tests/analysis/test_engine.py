"""Engine mechanics: suppressions, baselines, walking, loop contexts, CLI."""

import ast
import json

import pytest

from repro.analysis.engine import (
    PARSE_ERROR,
    Finding,
    is_suppressed,
    load_baseline,
    module_parts_for,
    run_analysis,
    save_baseline,
    suppressed_rules,
    walk_loop_contexts,
    walk_python_files,
)


class TestSuppressions:
    def test_no_marker(self):
        assert suppressed_rules("x = cache.get(key)") is None

    def test_bare_marker_suppresses_everything(self):
        assert suppressed_rules("x = 1  # red: ignore") == frozenset()

    def test_explicit_rules(self):
        got = suppressed_rules("x = 1  # red: ignore[RED001, red004]")
        assert got == frozenset({"RED001", "RED004"})

    def test_is_suppressed_matches_rule(self):
        lines = ["a = 1", "b = cache.get(k)  # red: ignore[RED004]"]
        hit = Finding(rule="RED004", path="f.py", line=2, message="m")
        miss = Finding(rule="RED001", path="f.py", line=2, message="m")
        assert is_suppressed(hit, lines)
        assert not is_suppressed(miss, lines)

    def test_bare_marker_suppresses_any_rule(self):
        lines = ["b = cache.get(k)  # red: ignore"]
        assert is_suppressed(Finding("RED004", "f.py", 1, "m"), lines)

    def test_out_of_range_line_is_not_suppressed(self):
        assert not is_suppressed(Finding("RED004", "f.py", 99, "m"), ["x"])


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding("RED004", "src/a.py", 12, "single-entry store call"),
            Finding("RED001", "src/b.py", 3, "unseeded default_rng"),
        ]
        path = tmp_path / "baseline.json"
        save_baseline(path, findings)
        keys = load_baseline(path)
        assert keys == {f.baseline_key() for f in findings}

    def test_matching_ignores_line_numbers(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [Finding("RED004", "src/a.py", 12, "msg")])
        moved = Finding("RED004", "src/a.py", 99, "msg")
        assert moved.baseline_key() in load_baseline(path)

    def test_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_run_analysis_filters_baselined(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "eval" / "runner.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(cache, key):\n    return cache.get(key)\n")
        report = run_analysis([tmp_path / "src"])
        assert len(report.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, report.findings)
        again = run_analysis([tmp_path / "src"], baseline=load_baseline(baseline_file))
        assert again.findings == []
        assert again.baselined == 1


class TestWalking:
    def test_skips_pycache_and_hidden_dirs(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "stale.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".hidden" / "secret.py").write_text("x = 1\n")
        files = walk_python_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_overlapping_roots_deduplicate(self, tmp_path):
        f = tmp_path / "pkg" / "mod.py"
        f.parent.mkdir()
        f.write_text("x = 1\n")
        assert walk_python_files([tmp_path, f.parent, f]) == [f]

    def test_module_parts_strips_src_anchor(self, tmp_path):
        path = tmp_path / "src" / "repro" / "eval" / "parallel.py"
        assert module_parts_for(path) == ("repro", "eval", "parallel")

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_analysis([tmp_path])
        assert [f.rule for f in report.findings] == [PARSE_ERROR]


class TestWalkLoopContexts:
    def _contexts(self, src):
        tree = ast.parse(src)
        return {
            ast.unparse(node): in_loop
            for node, in_loop in walk_loop_contexts(tree)
            if isinstance(node, ast.Call)
        }

    def test_for_iterable_runs_once_body_per_iteration(self):
        ctx = self._contexts("for x in make():\n    use(x)\n")
        assert ctx["make()"] is False
        assert ctx["use(x)"] is True

    def test_while_test_is_per_iteration(self):
        ctx = self._contexts("while check():\n    step()\n")
        assert ctx["check()"] is True
        assert ctx["step()"] is True

    def test_first_generator_iterable_runs_once(self):
        ctx = self._contexts("r = [f(x) for x in make() if ok(x)]\n")
        assert ctx["make()"] is False
        assert ctx["f(x)"] is True
        assert ctx["ok(x)"] is True

    def test_nested_generator_iterable_is_per_iteration(self):
        ctx = self._contexts("r = [g(y) for x in make() for y in expand(x)]\n")
        assert ctx["make()"] is False
        assert ctx["expand(x)"] is True

    def test_comprehension_inside_loop_inherits_context(self):
        ctx = self._contexts("for k in keys():\n    r = [f(x) for x in probe(k)]\n")
        assert ctx["keys()"] is False
        assert ctx["probe(k)"] is True
