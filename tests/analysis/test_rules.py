"""Per-rule fixtures: a violating tree, a clean tree, a suppressed tree."""

import textwrap

from repro.analysis.engine import run_analysis


def run_on(tmp_path, files):
    """Write ``{relative path: source}`` under tmp_path and analyze it."""
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return run_analysis([tmp_path / "src", tmp_path / "benchmarks"])


def rules_hit(report):
    return {f.rule for f in report.findings}


class TestSeedingRule:
    def test_legacy_sampler_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {"src/repro/demo.py": "import numpy as np\nx = np.random.rand(4)\n"},
        )
        assert rules_hit(report) == {"RED001"}

    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {"src/repro/demo.py": "import numpy as np\nr = np.random.default_rng()\n"},
        )
        assert rules_hit(report) == {"RED001"}

    def test_service_tier_generator_flagged_even_with_seed(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/api/svc.py": """\
                import numpy as np

                def handle(request):
                    return np.random.default_rng(request.seed)
                """
            },
        )
        assert rules_hit(report) == {"RED001"}
        assert "service tier" in report.findings[0].message

    def test_rng_default_idiom_and_injected_seed_are_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/lib.py": """\
                import numpy as np

                def sample(n, rng=None, seed=None):
                    rng = rng or np.random.default_rng(0)
                    other = np.random.default_rng(seed)
                    spawned = np.random.default_rng(np.random.SeedSequence(seed))
                    return rng, other, spawned
                """
            },
        )
        assert report.findings == []

    def test_hard_wired_library_seed_flagged_but_benchmark_seed_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/lib.py": (
                    "import numpy as np\nr = np.random.default_rng(1234)\n"
                ),
                "benchmarks/bench_demo.py": (
                    "import numpy as np\nr = np.random.default_rng(1234)\n"
                ),
            },
        )
        assert [f.path for f in report.findings] == [
            (tmp_path / "src/repro/lib.py").as_posix()
        ]

    def test_docstring_demo_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/pkg.py": '''\
                """Quickstart::

                    x = np.random.rand(3, 3)
                """
                '''
            },
        )
        assert rules_hit(report) == {"RED001"}
        assert "docstring" in report.findings[0].message

    def test_suppression_marker(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/demo.py": (
                    "import numpy as np\n"
                    "x = np.random.rand(4)  # red: ignore[RED001]\n"
                )
            },
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestSchemaRule:
    CLEAN = """\
    from dataclasses import dataclass

    SCHEMA_VERSION = 1

    @dataclass(frozen=True)
    class Request:
        schema_version: int = SCHEMA_VERSION

        def to_dict(self):
            return {"kind": "request", "schema_version": self.schema_version}

    @dataclass(frozen=True)
    class Row:
        value: float = 0.0

    PAYLOAD_KINDS = {"request": Request}
    """

    def test_clean_schema_module(self, tmp_path):
        report = run_on(tmp_path, {"src/repro/api/schema.py": self.CLEAN})
        assert report.findings == []

    def test_unfrozen_dataclass_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {"src/repro/api/schema.py": self.CLEAN.replace("frozen=True", "frozen=False", 1)},
        )
        assert rules_hit(report) == {"RED002"}
        assert "not frozen" in report.findings[0].message

    def test_kind_without_schema_version_flagged(self, tmp_path):
        source = self.CLEAN.replace("schema_version: int = SCHEMA_VERSION", "other: int = 0")
        source = source.replace('"schema_version": self.schema_version', '"other": self.other')
        report = run_on(tmp_path, {"src/repro/api/schema.py": source})
        assert rules_hit(report) == {"RED002"}
        assert "schema_version" in report.findings[0].message

    def test_kind_missing_from_dispatch_table_flagged(self, tmp_path):
        source = self.CLEAN.replace('PAYLOAD_KINDS = {"request": Request}', "PAYLOAD_KINDS = {}")
        report = run_on(tmp_path, {"src/repro/api/schema.py": source})
        assert rules_hit(report) == {"RED002"}
        assert "PAYLOAD_KINDS" in report.findings[0].message

    def test_rule_only_covers_schema_module(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/other.py": (
                    "from dataclasses import dataclass\n\n"
                    "@dataclass\nclass Mutable:\n    x: int = 0\n"
                )
            },
        )
        assert report.findings == []


class TestRegistryRule:
    DESIGN = """\
    from repro.designs.base import DeconvDesign

    class NewDesign(DeconvDesign):
        def perf_input(self, layer_name=""):
            return None
    """

    def test_unregistered_design_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/designs/new_design.py": self.DESIGN,
                "src/repro/api/registrations.py": (
                    "from repro.api.registry import register_design\n\n"
                    "register_design('other', factory=lambda spec: spec)\n"
                ),
            },
        )
        assert rules_hit(report) == {"RED003"}
        assert "NewDesign" in report.findings[0].message

    def test_registered_design_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/designs/new_design.py": self.DESIGN,
                "src/repro/api/registrations.py": """\
                from repro.api.registry import register_design

                def _build(spec):
                    from repro.designs.new_design import NewDesign

                    return NewDesign(spec)

                register_design("new", factory=_build)
                """,
            },
        )
        assert report.findings == []

    def test_silent_when_no_registering_module_in_scope(self, tmp_path):
        report = run_on(tmp_path, {"src/repro/designs/new_design.py": self.DESIGN})
        assert report.findings == []

    def test_abstract_perf_input_not_a_design(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/designs/base2.py": """\
                import abc

                from repro.designs.base import DeconvDesign

                class Intermediate(DeconvDesign):
                    @abc.abstractmethod
                    def perf_input(self, layer_name=""):
                        ...
                """,
                "src/repro/api/registrations.py": (
                    "from repro.api.registry import register_design\n"
                    "register_design('x', factory=int)\n"
                ),
            },
        )
        assert report.findings == []

    def test_hook_surface_out_of_sync_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/api/registry.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class DesignEntry:
                    name: str
                    factory: object
                    aliases: tuple = ()
                    baseline: bool = False

                def register_design(name, *, aliases=()):
                    return DesignEntry(name=name, factory=None, aliases=aliases)
                """
            },
        )
        assert rules_hit(report) == {"RED003"}
        assert any("baseline" in f.message for f in report.findings)


class TestStoreDisciplineRule:
    def test_single_entry_calls_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": """\
                def probe(cache, store, key, value):
                    hit = cache.get(key)
                    store.put(key, value)
                    return hit
                """
            },
        )
        assert [f.rule for f in report.findings] == ["RED004", "RED004"]

    def test_batch_call_in_loop_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": """\
                def drain(cache, batches):
                    for batch in batches:
                        cache.put_many(batch, kind="metrics")
                """
            },
        )
        assert rules_hit(report) == {"RED004"}

    def test_batch_call_in_comprehension_body_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": (
                    "def probe(cache, keys):\n"
                    "    return [cache.get_many([k], kind='m') for k in keys]\n"
                )
            },
        )
        assert rules_hit(report) == {"RED004"}

    def test_iterator_position_and_memo_dict_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": """\
                def run(cache, keys, jobs):
                    head_memo = {}
                    for index, value in enumerate(cache.get_many(keys, kind="m")):
                        head_memo[index] = value
                    hits = [v for v in cache.get_many(keys, kind="m") if v]
                    cache.put_many(zip(keys, hits), kind="m")
                    return head_memo.get(0), hits
                """
            },
        )
        assert report.findings == []

    def test_outside_eval_out_of_scope(self, tmp_path):
        report = run_on(
            tmp_path,
            {"src/repro/sim/mod.py": "def f(cache, k):\n    return cache.get(k)\n"},
        )
        assert report.findings == []

    def test_suppression_marker(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": (
                    "def probe(cache, key):\n"
                    "    return cache.get(key)  # red: ignore[RED004]\n"
                )
            },
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestOraclePurityRule:
    def test_walk_events_outside_contract_modules_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/shortcut.py": (
                    "from repro.sim.compiler import walk_events\n\n"
                    "def cycles(schedule):\n    return walk_events(schedule)\n"
                )
            },
        )
        assert rules_hit(report) == {"RED005"}

    def test_walk_events_in_contract_module_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/sim/engine.py": (
                    "from repro.sim.compiler import walk_events\n\n"
                    "def replay(schedule):\n    return walk_events(schedule)\n"
                )
            },
        )
        assert report.findings == []

    def test_scalar_oracle_loop_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/system/mapper.py": """\
                from repro.arch.metrics import evaluate_design

                def evaluate_all(inputs, tech):
                    return [evaluate_design(i, tech) for i in inputs]
                """
            },
        )
        assert rules_hit(report) == {"RED005"}
        assert "loop" in report.findings[0].message

    def test_single_scalar_call_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/designs/one.py": """\
                from repro.arch.metrics import evaluate_design

                def evaluate(perf, tech):
                    return evaluate_design(perf, tech)
                """
            },
        )
        assert report.findings == []

    def test_batch_substrate_may_loop(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/parallel.py": (
                    "def run(jobs):\n"
                    "    return [evaluate_design_job(j) for j in jobs]\n"
                )
            },
        )
        assert report.findings == []


class TestNondeterminismRule:
    def test_clock_read_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/runner.py": (
                    "import time\n\ndef stamp():\n    return time.time()\n"
                )
            },
        )
        assert rules_hit(report) == {"RED006"}

    def test_entropy_read_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/api/tokens.py": (
                    "import os\n\ndef token():\n    return os.urandom(8)\n"
                )
            },
        )
        assert rules_hit(report) == {"RED006"}

    def test_bare_imported_clock_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/sim/mod.py": (
                    "from time import perf_counter\n\n"
                    "def stamp():\n    return perf_counter()\n"
                )
            },
        )
        assert rules_hit(report) == {"RED006"}

    def test_benchmarks_and_cli_out_of_scope(self, tmp_path):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        report = run_on(
            tmp_path,
            {
                "benchmarks/bench_mod.py": source,
                "src/repro/cli.py": source,
            },
        )
        assert report.findings == []


class TestSwallowRule:
    def test_bare_except_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/mod.py": """\
                def load(path):
                    try:
                        return open(path).read()
                    except:
                        return None
                """
            },
        )
        assert rules_hit(report) == {"RED007"}
        assert "bare" in report.findings[0].message

    def test_broad_handler_without_raise_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/utils/mod.py": """\
                def best_effort(fn):
                    try:
                        fn()
                    except Exception:
                        pass
                """
            },
        )
        assert rules_hit(report) == {"RED007"}

    def test_broad_handler_in_tuple_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/core/mod.py": """\
                def run(fn):
                    try:
                        return fn()
                    except (ValueError, BaseException):
                        return None
                """
            },
        )
        assert rules_hit(report) == {"RED007"}

    def test_routing_handler_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/mod.py": """\
                def call(fn, retryable):
                    try:
                        return fn()
                    except Exception as exc:
                        if not retryable(exc):
                            raise
                        return None
                """
            },
        )
        assert report.findings == []

    def test_narrowed_handler_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/eval/mod.py": """\
                import os

                def cleanup(path):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                """
            },
        )
        assert report.findings == []

    def test_benchmarks_out_of_scope(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "benchmarks/bench_mod.py": """\
                def best_effort(fn):
                    try:
                        fn()
                    except Exception:
                        pass
                """
            },
        )
        assert report.findings == []


class TestBlockingAsyncRule:
    def test_time_sleep_in_coroutine_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/serving/mod.py": """\
                import time

                async def handle(request):
                    time.sleep(0.1)
                    return request
                """
            },
        )
        assert rules_hit(report) == {"RED008"}
        assert "time.sleep" in report.findings[0].message

    def test_sync_io_builtins_flagged(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/serving/mod.py": """\
                import subprocess

                async def handle(path):
                    with open(path) as fh:
                        data = fh.read()
                    subprocess.run(["true"])
                    return data
                """
            },
        )
        assert rules_hit(report) == {"RED008"}
        assert len(report.findings) == 2

    def test_executor_dispatch_and_sync_def_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/serving/mod.py": """\
                import asyncio
                import time

                def blocking_probe():
                    time.sleep(0.1)  # runs on the pool, not the loop

                async def handle(loop):
                    await asyncio.sleep(0)
                    return await loop.run_in_executor(None, blocking_probe)
                """
            },
        )
        assert report.findings == []

    def test_nested_def_inside_coroutine_clean(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "src/repro/serving/mod.py": """\
                async def handle(loop):
                    def probe():
                        import time

                        time.sleep(0.1)

                    return await loop.run_in_executor(None, probe)
                """
            },
        )
        assert report.findings == []

    def test_benchmarks_out_of_scope(self, tmp_path):
        report = run_on(
            tmp_path,
            {
                "benchmarks/bench_async.py": """\
                import time

                async def drive():
                    time.sleep(0.1)
                """
            },
        )
        assert report.findings == []
