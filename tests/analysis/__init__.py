"""Tests for the substrate contract linter (repro.analysis)."""
