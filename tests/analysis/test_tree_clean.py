"""The repository's own tree honours every substrate contract.

This is the test that keeps the linter's baseline empty: a change that
re-introduces a global-state sampler, an unfrozen payload, a per-entry
store loop, or a stray oracle call fails here (and in ``make lint``)
with the rule's message, not in review.
"""

import json
import sys
from pathlib import Path

from repro.analysis import default_rules, run_analysis
from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]
LINTED_TREES = [REPO / "src", REPO / "benchmarks", REPO / "examples"]


class TestTreeIsClean:
    def test_zero_findings_over_the_real_tree(self):
        report = run_analysis(LINTED_TREES)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"contract violations:\n{rendered}"

    def test_walk_actually_covers_the_tree(self):
        report = run_analysis(LINTED_TREES)
        assert report.files_checked > 100

    def test_registry_coverage_is_exercised(self):
        # The cross-file RED003 pass only judges coverage when it sees a
        # register_design-calling module; the real tree must contain one,
        # otherwise the rule silently passes on everything.
        rules = default_rules()
        registry_rule = next(r for r in rules if r.rule_id == "RED003")
        run_analysis([REPO / "src"], rules=rules)
        assert registry_rule._saw_registering_module
        assert len(registry_rule._design_classes) >= 3


class TestCommandLine:
    def test_cli_clean_tree_exits_zero(self, capsys):
        code = main([str(p) for p in LINTED_TREES])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_cli_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "eval" / "runner.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(cache, key):\n    return cache.get(key)\n")
        code = main([str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RED004" in out

    def test_cli_json_report(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        code = main([str(bad), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == ["RED001"]

    def test_cli_baseline_round_trip(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "eval" / "runner.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(cache, key):\n    return cache.get(key)\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path / "src"), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(tmp_path / "src"), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_bad_baseline_exits_two(self, tmp_path, capsys):
        bad_baseline = tmp_path / "nope.json"
        bad_baseline.write_text("not json")
        assert main([str(tmp_path), "--baseline", str(bad_baseline)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RED001", "RED002", "RED003", "RED004", "RED005", "RED006", "RED007",
        ):
            assert rule_id in out

    def test_module_entry_point_runs(self, tmp_path):
        import subprocess

        clean = tmp_path / "mod.py"
        clean.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(clean)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stderr
