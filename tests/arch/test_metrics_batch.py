"""Bit-identity and packing tests for the vectorized analytic plane."""

import math
import pickle

import numpy as np
import pytest

from repro.api.registry import build_design
from repro.arch.metrics import evaluate_design
from repro.arch.metrics_batch import (
    PerfInputBatch,
    _exact_log2,
    area_breakdown_batch,
    energy_breakdown_batch,
    evaluate_perf_batch,
    latency_breakdown_batch,
)
from repro.arch.perf_input import DecoderBank, DesignPerfInput
from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from tests.conftest import SMALL_SPECS

DESIGNS = ("zero-padding", "padding-free", "RED")


def perf_zoo(tech):
    """Scalar perf inputs across every design and the corner-spec zoo."""
    perfs = []
    for spec in SMALL_SPECS:
        for design in DESIGNS:
            perfs.append(
                build_design(design, spec, tech).perf_input(f"{design}-{spec.stride}")
            )
    return perfs


class TestExactLog2:
    def test_matches_math_log2_bitwise(self):
        values = np.array([1, 2, 3, 5, 7, 64, 127, 1024, 4096], dtype=np.int64)
        out = _exact_log2(values)
        for value, result in zip(values.tolist(), out.tolist()):
            assert result == math.log2(value)

    def test_repeated_values_share_entries(self):
        out = _exact_log2(np.array([8, 8, 2, 8], dtype=np.int64))
        assert out.tolist() == [3.0, 3.0, 1.0, 3.0]


class TestPacking:
    def test_from_perf_inputs_round_trip_fields(self):
        tech = default_tech()
        perfs = perf_zoo(tech)
        batch = PerfInputBatch.from_perf_inputs(perfs)
        assert len(batch) == len(perfs)
        assert batch.designs == tuple(p.design for p in perfs)
        assert batch.layers == tuple(p.layer for p in perfs)
        for index, perf in enumerate(perfs):
            assert batch.cycles[index] == perf.cycles
            assert batch.conv_values_per_cycle[index] == perf.conv_values_per_cycle
            assert batch.decoder_rows[index, 0] == perf.decoder_banks[0].rows
            assert batch.decoder_counts[index, 0] == perf.decoder_banks[0].count

    def test_ragged_decoder_banks_pad_with_empty_slots(self):
        spec = SMALL_SPECS[0]
        base = dict(
            design="x", layer="L", spec=spec, cycles=4, wordline_cols=2,
            bitline_rows=6, rows_selected_per_cycle=6,
            conv_values_per_cycle=2.0, live_row_cycles_total=3.0,
            useful_macs=10, total_cells_logical=24,
        )
        one = DesignPerfInput(decoder_banks=(DecoderBank(rows=6, count=1),), **base)
        two = DesignPerfInput(
            decoder_banks=(DecoderBank(rows=4, count=2), DecoderBank(rows=2, count=1)),
            **base,
        )
        batch = PerfInputBatch.from_perf_inputs([one, two])
        assert batch.decoder_rows.shape == (2, 2)
        assert batch.decoder_rows[0].tolist() == [6, 0]
        assert batch.decoder_counts[0].tolist() == [1, 0]
        assert batch.decoder_rows[1].tolist() == [4, 2]

    def test_mismatched_lengths_rejected(self):
        tech = default_tech()
        batch = PerfInputBatch.from_perf_inputs(perf_zoo(tech)[:2])
        with pytest.raises(ParameterError):
            PerfInputBatch(
                **{
                    **{f: getattr(batch, f) for f in (
                        "designs", "layers", "cycles", "wordline_cols",
                        "bitline_rows", "rows_selected_per_cycle", "decoder_rows",
                        "decoder_counts", "conv_values_per_cycle",
                        "live_row_cycles_total", "useful_macs",
                        "total_cells_logical", "broadcast_instances",
                        "sa_extra_ops_per_value", "crop_values_total",
                        "col_periphery_sets", "col_set_width",
                        "row_bank_instances", "has_crop_unit",
                        "overlap_adder_cols",
                    )},
                    "cycles": batch.cycles[:1],
                }
            )


class TestBitIdentity:
    """The batch evaluator against the scalar oracle, component for component."""

    @pytest.mark.parametrize(
        "tech",
        [
            default_tech(),
            default_tech().with_overrides(mux_share=4, bits_input=4),
            default_tech().with_overrides(differential=False, bits_per_cell=4),
        ],
        ids=("default", "narrow", "single-ended"),
    )
    def test_evaluate_perf_batch_matches_scalar(self, tech):
        perfs = perf_zoo(tech)
        batch = PerfInputBatch.from_perf_inputs(perfs)
        vectorized = evaluate_perf_batch(batch, tech)
        for perf, got in zip(perfs, vectorized):
            expected = evaluate_design(perf, tech)
            assert pickle.dumps(got, 5) == pickle.dumps(expected, 5)
            assert got == expected

    def test_breakdown_components_match_scalar(self):
        from repro.arch.metrics import (
            area_breakdown,
            energy_breakdown,
            latency_breakdown,
        )

        tech = default_tech()
        perfs = perf_zoo(tech)
        batch = PerfInputBatch.from_perf_inputs(perfs)
        latency = latency_breakdown_batch(batch, tech)
        energy = energy_breakdown_batch(batch, tech)
        area = area_breakdown_batch(batch, tech)
        for index, perf in enumerate(perfs):
            for name, value in latency_breakdown(perf, tech).as_dict().items():
                if name in latency:
                    assert latency[name][index] == value
            for name, value in energy_breakdown(perf, tech).as_dict().items():
                if name in energy:
                    assert energy[name][index] == value
            for name, value in area_breakdown(perf, tech).as_dict().items():
                if name in area:
                    assert area[name][index] == value

    def test_result_types_are_the_public_dataclasses(self):
        """Fast assembly must still yield real, frozen DesignMetrics."""
        from dataclasses import FrozenInstanceError

        from repro.arch.breakdown import DesignMetrics

        tech = default_tech()
        batch = PerfInputBatch.from_perf_inputs(perf_zoo(tech)[:3])
        result = evaluate_perf_batch(batch, tech)[0]
        assert type(result) is DesignMetrics
        assert isinstance(result.latency.total, float)
        assert isinstance(result.cycles, int)
        with pytest.raises(FrozenInstanceError):
            result.design = "other"

    def test_fcn_scale_layer_matches(self):
        """A large FCN-style layer exercises the big-count regime."""
        tech = default_tech()
        spec = DeconvSpec(18, 18, 64, 16, 16, 21, stride=8, padding=4)
        perfs = [
            build_design(design, spec, tech).perf_input("fcn") for design in DESIGNS
        ]
        batch = PerfInputBatch.from_perf_inputs(perfs)
        for perf, got in zip(perfs, evaluate_perf_batch(batch, tech)):
            assert got == evaluate_design(perf, tech)
