"""Tests for the analytical evaluator."""

import pytest

from repro.arch.metrics import area_breakdown, energy_breakdown, latency_breakdown
from repro.arch.perf_input import DecoderBank, DesignPerfInput
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError


def make_perf(**overrides) -> DesignPerfInput:
    spec = DeconvSpec(4, 4, 8, 4, 4, 5, stride=2, padding=1)
    defaults = dict(
        design="test",
        layer="unit",
        spec=spec,
        cycles=64,
        wordline_cols=5,
        bitline_rows=128,
        rows_selected_per_cycle=128,
        decoder_banks=(DecoderBank(rows=128, count=1),),
        conv_values_per_cycle=5,
        live_row_cycles_total=1000.0,
        useful_macs=40000,
        total_cells_logical=640,
    )
    defaults.update(overrides)
    return DesignPerfInput(**defaults)


class TestLatency:
    def test_all_components_scale_with_cycles(self):
        one = latency_breakdown(make_perf(cycles=1))
        many = latency_breakdown(make_perf(cycles=10))
        for name, value in one.as_dict().items():
            assert many.as_dict()[name] == pytest.approx(10 * value)

    def test_broadcast_adds_wordline_latency(self):
        base = latency_breakdown(make_perf())
        bcast = latency_breakdown(make_perf(broadcast_instances=16))
        assert bcast.wordline > base.wordline
        assert bcast.read_circuit == base.read_circuit

    def test_extra_sa_ops_add_latency(self):
        base = latency_breakdown(make_perf())
        extra = latency_breakdown(make_perf(sa_extra_ops_per_value=2.0))
        assert extra.shift_adder > base.shift_adder

    def test_wider_wordline_slower(self):
        narrow = latency_breakdown(make_perf(wordline_cols=5))
        wide = latency_breakdown(make_perf(wordline_cols=5000))
        assert wide.wordline > narrow.wordline

    def test_taller_bitline_slower(self):
        short = latency_breakdown(make_perf(bitline_rows=64))
        tall = latency_breakdown(make_perf(bitline_rows=6400))
        assert tall.bitline > short.bitline


class TestEnergy:
    def test_compute_energy_proportional_to_useful_macs(self):
        a = energy_breakdown(make_perf(useful_macs=1000))
        b = energy_breakdown(make_perf(useful_macs=3000))
        assert b.computation == pytest.approx(3 * a.computation)

    def test_wordline_energy_uses_live_rows_not_cycles(self):
        """Gating: doubling cycles at fixed live rows leaves WL energy flat."""
        a = energy_breakdown(make_perf(cycles=64))
        b = energy_breakdown(make_perf(cycles=128))
        assert b.wordline == pytest.approx(a.wordline)
        assert b.decoder > a.decoder  # decoder is per-cycle

    def test_decoder_energy_scales_with_rows(self):
        small = energy_breakdown(make_perf(decoder_banks=(DecoderBank(64, 1),)))
        large = energy_breakdown(make_perf(decoder_banks=(DecoderBank(6400, 1),)))
        assert large.decoder > small.decoder

    def test_conversions_drive_rc_and_mux(self):
        a = energy_breakdown(make_perf(conv_values_per_cycle=5))
        b = energy_breakdown(make_perf(conv_values_per_cycle=50))
        assert b.read_circuit == pytest.approx(10 * a.read_circuit)
        assert b.mux == pytest.approx(10 * a.mux)

    def test_overlap_and_crop_buckets(self):
        pf = energy_breakdown(
            make_perf(overlap_adder_cols=80, crop_values_total=1000, has_crop_unit=True)
        )
        base = energy_breakdown(make_perf())
        assert pf.extra_adder > 0.0
        assert pf.crop > 0.0
        assert base.extra_adder == base.crop == 0.0

    def test_fractional_conversions_supported(self):
        half = energy_breakdown(make_perf(conv_values_per_cycle=2.5))
        full = energy_breakdown(make_perf(conv_values_per_cycle=5))
        assert half.read_circuit == pytest.approx(full.read_circuit / 2)


class TestArea:
    def test_array_area_depends_only_on_cells(self):
        a = area_breakdown(make_perf(cycles=1))
        b = area_breakdown(make_perf(cycles=100000, wordline_cols=500))
        assert a.computation == b.computation

    def test_row_banks_add_area(self):
        one = area_breakdown(make_perf(row_bank_instances=1))
        many = area_breakdown(make_perf(row_bank_instances=25))
        assert many.decoder > one.decoder

    def test_col_sets_multiply_read_circuit_area(self):
        one = area_breakdown(make_perf(col_periphery_sets=1, col_set_width=5))
        four = area_breakdown(make_perf(col_periphery_sets=4, col_set_width=5))
        assert four.read_circuit == pytest.approx(4 * one.read_circuit)

    def test_crop_unit_area(self):
        assert area_breakdown(make_perf(has_crop_unit=True)).crop > 0.0

    def test_router_area_only_with_broadcast(self):
        base = area_breakdown(make_perf())
        routed = area_breakdown(make_perf(broadcast_instances=9, row_bank_instances=9))
        assert routed.decoder > base.decoder


class TestValidation:
    def test_rejects_zero_cycles(self):
        with pytest.raises(ParameterError):
            make_perf(cycles=0)

    def test_rejects_empty_decoder_banks(self):
        with pytest.raises(ParameterError):
            make_perf(decoder_banks=())

    def test_rejects_non_positive_live_rows(self):
        with pytest.raises(ParameterError):
            make_perf(live_row_cycles_total=0.0)

    def test_rejects_negative_crop(self):
        with pytest.raises(ParameterError):
            make_perf(crop_values_total=-1)

    def test_decoder_bank_validation(self):
        with pytest.raises(ParameterError):
            DecoderBank(rows=0, count=1)
