"""Tests for the Table II breakdown containers."""

import pytest

from repro.arch.breakdown import (
    ARRAY_COMPONENTS,
    PERIPHERY_COMPONENTS,
    TABLE_II_COMPONENTS,
    AreaBreakdown,
    DesignMetrics,
    EnergyBreakdown,
    LatencyBreakdown,
)


class TestRollups:
    def test_array_sum(self):
        b = LatencyBreakdown(wordline=1.0, bitline=2.0, computation=3.0)
        assert b.array == 6.0
        assert b.periphery == 0.0

    def test_periphery_sum_includes_extras(self):
        b = EnergyBreakdown(decoder=1.0, mux=2.0, read_circuit=3.0, shift_adder=4.0,
                            extra_adder=5.0, crop=6.0)
        assert b.periphery == 21.0

    def test_total(self):
        b = EnergyBreakdown(wordline=1.0, decoder=2.0)
        assert b.total == 3.0

    def test_scaled(self):
        b = EnergyBreakdown(wordline=2.0, decoder=4.0)
        s = b.scaled(0.5)
        assert s.wordline == 1.0
        assert s.total == 3.0

    def test_normalized_to(self):
        base = EnergyBreakdown(wordline=4.0)
        other = EnergyBreakdown(wordline=1.0, decoder=1.0)
        norm = other.normalized_to(base)
        assert norm["wordline"] == 0.25
        assert norm["decoder"] == 0.25

    def test_normalized_to_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            EnergyBreakdown().normalized_to(EnergyBreakdown())

    def test_as_dict_round_trip(self):
        b = EnergyBreakdown(wordline=1.5, crop=0.5)
        d = b.as_dict()
        assert d["wordline"] == 1.5
        assert EnergyBreakdown(**d) == b


class TestTableII:
    def test_component_lists_cover_equations(self):
        assert set(ARRAY_COMPONENTS) == {"computation", "wordline", "bitline"}
        assert set(PERIPHERY_COMPONENTS) == {"mux", "decoder", "read_circuit", "shift_adder"}

    def test_table_ii_rows(self):
        abbrs = [abbr for _, abbr, _ in TABLE_II_COMPONENTS]
        assert abbrs == ["c", "wd", "bd", "mux", "dec", "rc", "sa"]
        groups = {group for _, _, group in TABLE_II_COMPONENTS}
        assert groups == {"Array (a)", "Periphery (pp)"}


class TestDesignMetrics:
    def _metrics(self, lat, en, ar):
        return DesignMetrics(
            design="x", layer="y",
            latency=LatencyBreakdown(wordline=lat),
            energy=EnergyBreakdown(wordline=en),
            area=AreaBreakdown(computation=ar),
            cycles=1,
        )

    def test_speedup(self):
        fast = self._metrics(1.0, 1.0, 1.0)
        slow = self._metrics(4.0, 1.0, 1.0)
        assert fast.speedup_over(slow) == 4.0

    def test_energy_saving(self):
        lean = self._metrics(1.0, 1.0, 1.0)
        base = self._metrics(1.0, 4.0, 1.0)
        assert lean.energy_saving_over(base) == 0.75

    def test_area_overhead(self):
        big = self._metrics(1.0, 1.0, 2.0)
        base = self._metrics(1.0, 1.0, 1.0)
        assert big.area_overhead_over(base) == pytest.approx(1.0)
