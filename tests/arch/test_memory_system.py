"""Tests for the buffer-traffic overlay."""

import pytest

from repro.arch.memory_system import (
    padding_free_traffic,
    red_traffic,
    traffic_for,
    zero_padding_traffic,
)
from repro.errors import ParameterError
from repro.workloads.specs import get_layer


@pytest.fixture(scope="module")
def spec():
    return get_layer("GAN_Deconv3").spec


class TestTrafficVolumes:
    def test_zero_padding_reads_full_windows(self, spec):
        t = zero_padding_traffic(spec)
        assert t.input_bytes == spec.num_output_pixels * spec.num_kernel_taps * spec.in_channels
        assert t.output_bytes == spec.num_output_pixels * spec.out_channels

    def test_padding_free_writes_inflated_stream(self, spec):
        t = padding_free_traffic(spec)
        assert t.input_bytes == spec.num_input_pixels * spec.in_channels
        assert t.output_bytes == (
            spec.num_input_pixels * spec.num_kernel_taps * spec.out_channels
        )
        assert t.wasted_output_bytes > 0

    def test_red_reads_less_than_zero_padding(self, spec):
        """Zero-skipping removes the redundant window traffic."""
        red = red_traffic(spec)
        zp = zero_padding_traffic(spec)
        assert red.input_bytes < zp.input_bytes / 4

    def test_red_writes_exactly_the_output(self, spec):
        t = red_traffic(spec)
        assert t.output_bytes == spec.num_output_pixels * spec.out_channels
        assert t.wasted_output_bytes == 0

    def test_red_input_reuse_bound(self, spec):
        """Distinct reads cannot exceed one pixel per SC per block."""
        t = red_traffic(spec)
        blocks = (spec.output_height // spec.stride) * (spec.output_width // spec.stride)
        assert t.input_bytes <= blocks * spec.num_kernel_taps * spec.in_channels

    def test_bytes_per_value_scales(self, spec):
        one = traffic_for("RED", spec, bytes_per_value=1)
        two = traffic_for("RED", spec, bytes_per_value=2)
        assert two.total_bytes == 2 * one.total_bytes

    def test_energy_proportional_to_bytes(self, spec):
        t = traffic_for("zero-padding", spec)
        assert t.energy == pytest.approx(t.total_bytes * 1.0e-12)

    def test_unknown_design_rejected(self, spec):
        with pytest.raises(ParameterError):
            traffic_for("gpu", spec)
