"""Tests for the technology parameter set."""

import pytest

from repro.arch.tech import TechnologyParams, default_tech
from repro.errors import CalibrationError


class TestDerived:
    def test_default_slices(self):
        tech = default_tech()
        assert tech.num_slices == 4
        assert tech.phys_cols_per_weight == 8

    def test_non_differential_halves_columns(self):
        tech = TechnologyParams(differential=False)
        assert tech.phys_cols_per_weight == 4

    def test_cell_area(self):
        tech = default_tech()
        assert tech.cell_area_m2 == pytest.approx(12 * (65e-9) ** 2)

    def test_paper_operating_point(self):
        tech = default_tech()
        assert tech.clock_hz == 2e9
        assert tech.feature_size_m == 65e-9

    def test_with_overrides(self):
        tech = default_tech().with_overrides(bits_input=4)
        assert tech.bits_input == 4
        assert default_tech().bits_input == 8  # original untouched

    def test_indivisible_slicing_rejected(self):
        with pytest.raises(CalibrationError):
            TechnologyParams(bits_weight=8, bits_per_cell=3)

    def test_default_is_singleton(self):
        assert default_tech() is default_tech()
