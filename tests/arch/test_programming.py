"""Tests for the kernel programming cost model."""

import pytest

from repro.arch.programming import amortization_runs, programming_cost
from repro.reram.noise import NoiseModel
from repro.workloads.specs import get_layer


class TestProgrammingCost:
    def test_cell_count(self):
        layer = get_layer("GAN_Deconv3")
        cost = programming_cost(layer.spec)
        # 8-bit weights, 2 bits/cell, differential -> 8 cells per weight.
        assert cost.cells == layer.spec.num_weights * 8

    def test_ideal_programming_one_pulse_per_cell(self):
        cost = programming_cost(get_layer("FCN_Deconv1").spec)
        assert cost.pulses == cost.cells
        assert cost.converged_fraction == 1.0

    def test_noise_increases_pulses(self):
        spec = get_layer("FCN_Deconv1").spec
        clean = programming_cost(spec)
        noisy = programming_cost(spec, noise=NoiseModel(programming_sigma=0.3, seed=1))
        assert noisy.pulses >= clean.pulses

    def test_energy_latency_positive_and_proportional(self):
        spec = get_layer("FCN_Deconv1").spec
        cost = programming_cost(spec)
        assert cost.energy > 0.0
        assert cost.latency > 0.0
        double = programming_cost(get_layer("GAN_Deconv3").spec)
        assert double.energy > cost.energy  # bigger kernel, more cells

    def test_design_independence(self):
        """Programming cost depends on the kernel only, not the mapping —
        all three designs store identical cell populations."""
        spec = get_layer("GAN_Deconv3").spec
        a = programming_cost(spec, seed=0)
        b = programming_cost(spec, seed=0)
        assert a.pulses == b.pulses

    def test_amortization(self):
        spec = get_layer("FCN_Deconv1").spec
        runs = amortization_runs(spec, per_run_energy=1e-6)
        assert runs > 0.0

    def test_amortization_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            amortization_runs(get_layer("FCN_Deconv1").spec, per_run_energy=0.0)
