"""Band tests: the calibrated model must reproduce the paper's shape.

These tests assert the relative results of Sec. IV against the bands in
:mod:`repro.eval.paper_targets`.  They are the contract that any change to
the technology constants must preserve.
"""

import pytest

from repro.eval.figures import fig4_redundancy_curves, fig7_latency, fig8_energy, fig9_area
from repro.eval.harness import run_grid
from repro.eval.paper_targets import PAPER_TARGETS

GAN_LAYERS = ("GAN_Deconv1", "GAN_Deconv2", "GAN_Deconv3", "GAN_Deconv4")


@pytest.fixture(scope="module")
def grid():
    return run_grid()


@pytest.fixture(scope="module")
def latency(grid):
    return fig7_latency(grid)


@pytest.fixture(scope="module")
def energy(grid):
    return fig8_energy(grid)


class TestFig4Bands:
    def test_sngan_stride2(self):
        curves = fig4_redundancy_curves()
        value = dict(curves["SNGAN input:4x4"])[2]
        assert PAPER_TARGETS["fig4_sngan_stride2"].contains(value)

    def test_fcn_stride32(self):
        curves = fig4_redundancy_curves()
        value = dict(curves["FCN input:16x16"])[32]
        assert PAPER_TARGETS["fig4_fcn_stride32"].contains(value)


class TestSpeedupBands:
    def test_red_wins_every_layer(self, latency):
        for layer, row in latency.speedup.items():
            assert row["RED"] > 1.0, layer

    def test_stride2_speedups_near_4x(self, latency):
        band = PAPER_TARGETS["speedup_min"]
        for layer in GAN_LAYERS + ("FCN_Deconv1",):
            assert band.contains(latency.speedup[layer]["RED"]), layer

    def test_fcn2_speedup_near_31x(self, latency):
        band = PAPER_TARGETS["speedup_max"]
        assert band.contains(latency.speedup["FCN_Deconv2"]["RED"])

    def test_zero_padding_slower_than_padding_free_on_gans(self, latency):
        band = PAPER_TARGETS["zp_over_pf_latency_gan"]
        for layer in GAN_LAYERS:
            assert band.contains(latency.speedup[layer]["padding-free"]), layer

    def test_red_latency_reduction_range(self, grid):
        band = PAPER_TARGETS["red_latency_reduction"]
        for layer in grid.metrics:
            red = grid.get(layer, "RED").latency.total
            zp = grid.baseline(layer).latency.total
            assert band.contains(1.0 - red / zp), layer

    def test_red_breakdown_periphery_shrinks_with_cycles(self, latency):
        """RED's periphery latency share of ZP total is ~1/stride^2."""
        b = latency.breakdown["GAN_Deconv1"]
        assert b["RED"]["periphery"] < 0.5 * b["zero-padding"]["periphery"]


class TestEnergyBands:
    def test_red_saves_on_every_layer(self, energy):
        for layer, row in energy.saving.items():
            assert row["RED"] > 0.0, layer

    def test_min_saving_band(self, energy):
        band = PAPER_TARGETS["energy_saving_min"]
        assert band.contains(min(row["RED"] for row in energy.saving.values()))

    def test_max_saving_band_on_fcn2(self, energy):
        band = PAPER_TARGETS["energy_saving_max"]
        saving = energy.saving["FCN_Deconv2"]["RED"]
        assert saving == max(row["RED"] for row in energy.saving.values())
        assert band.contains(saving)

    def test_pf_array_energy_band_on_gans(self, energy):
        band = PAPER_TARGETS["pf_array_energy_gan"]
        for layer in GAN_LAYERS:
            assert band.contains(energy.array_ratio[layer]["padding-free"]), layer

    def test_pf_total_energy_worst_on_gans(self, energy):
        band = PAPER_TARGETS["pf_total_energy_gan_max"]
        worst = max(energy.ratio[layer]["padding-free"] for layer in GAN_LAYERS)
        assert band.contains(worst)

    def test_red_array_similar_to_zero_padding(self, energy):
        band = PAPER_TARGETS["red_array_similar"]
        for layer in GAN_LAYERS + ("FCN_Deconv1",):
            assert band.contains(energy.array_ratio[layer]["RED"]), layer

    def test_gan_savings_below_fcn8x_saving(self, energy):
        """The crossover the paper shows: stride-8 FCN benefits most."""
        fcn2 = energy.saving["FCN_Deconv2"]["RED"]
        for layer in GAN_LAYERS:
            assert energy.saving[layer]["RED"] < fcn2


class TestAreaBands:
    def test_array_area_identical_across_designs(self, grid):
        for layer in grid.metrics:
            areas = {
                design: grid.get(layer, design).area.computation
                for design in grid.metrics[layer]
            }
            assert len({round(a, 18) for a in areas.values()}) == 1, layer

    def test_red_area_overhead_on_gans(self, grid):
        band = PAPER_TARGETS["red_area_overhead_gan"]
        for layer in GAN_LAYERS:
            overhead = grid.area_ratio(layer, "RED") - 1.0
            assert band.contains(overhead), (layer, overhead)

    def test_pf_area_overhead_gan1(self, grid):
        band = PAPER_TARGETS["pf_area_overhead_gan1"]
        assert band.contains(grid.area_ratio("GAN_Deconv1", "padding-free") - 1.0)

    def test_pf_area_overhead_fcn2(self, grid):
        band = PAPER_TARGETS["pf_area_overhead_fcn2"]
        assert band.contains(grid.area_ratio("FCN_Deconv2", "padding-free") - 1.0)

    def test_pf_fcn_overhead_exceeds_gan_overhead(self, grid):
        """Fig. 9's contrast: PF periphery dominates in FCN, not GAN."""
        gan = grid.area_ratio("GAN_Deconv1", "padding-free")
        fcn = grid.area_ratio("FCN_Deconv2", "padding-free")
        assert fcn > gan

    def test_fig9_normalization(self, grid):
        fig = fig9_area(grid)
        for layer, designs in fig.normalized.items():
            zp = designs["zero-padding"]
            assert zp["total"] == pytest.approx(1.0)
            assert zp["array"] + zp["periphery"] == pytest.approx(1.0)
