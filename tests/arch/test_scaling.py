"""Tests for technology-node scaling."""

import pytest

from repro.arch.scaling import NODE_VDD, node_sweep, scale_tech
from repro.arch.tech import default_tech
from repro.errors import ParameterError
from repro.eval.harness import run_grid


class TestScaling:
    def test_identity_at_base_node(self):
        scaled = scale_tech(node_m=65e-9)
        base = default_tech()
        assert scaled.e_adc == pytest.approx(base.e_adc)
        assert scaled.t_adc == pytest.approx(base.t_adc)

    def test_energy_shrinks_at_smaller_node(self):
        t45 = scale_tech(node_m=45e-9)
        base = default_tech()
        assert t45.e_adc < base.e_adc
        assert t45.e_dec_per_row < base.e_dec_per_row

    def test_delay_shrinks_and_clock_rises(self):
        t32 = scale_tech(node_m=32e-9)
        base = default_tech()
        assert t32.t_adc < base.t_adc
        assert t32.clock_hz > base.clock_hz

    def test_area_scales_quadratically(self):
        t32 = scale_tech(node_m=32e-9)
        base = default_tech()
        ratio = (32 / 65) ** 2
        assert t32.a_adc == pytest.approx(base.a_adc * ratio)
        assert t32.cell_area_m2 == pytest.approx(base.cell_area_m2 * ratio)

    def test_format_parameters_untouched(self):
        t45 = scale_tech(node_m=45e-9)
        base = default_tech()
        assert t45.bits_input == base.bits_input
        assert t45.mux_share == base.mux_share

    def test_known_node_vdd(self):
        assert scale_tech(node_m=45e-9).vdd == NODE_VDD[45e-9]

    def test_rejects_bad_node(self):
        with pytest.raises(ParameterError):
            scale_tech(node_m=0.0)

    def test_node_sweep_keys(self):
        sweep = node_sweep((65e-9, 45e-9))
        assert set(sweep) == {65e-9, 45e-9}


class TestScalingInvariance:
    def test_relative_results_invariant_under_scaling(self):
        """Uniform scaling must not re-rank the designs."""
        g65 = run_grid()
        g45 = run_grid(tech=scale_tech(node_m=45e-9))
        for layer in ("GAN_Deconv1", "FCN_Deconv2"):
            assert g45.speedup(layer, "RED") == pytest.approx(
                g65.speedup(layer, "RED"), rel=1e-6
            )
            assert g45.energy_saving(layer, "RED") == pytest.approx(
                g65.energy_saving(layer, "RED"), rel=1e-6
            )

    def test_absolute_latency_improves(self):
        g65 = run_grid()
        g45 = run_grid(tech=scale_tech(node_m=45e-9))
        assert (
            g45.get("GAN_Deconv1", "RED").latency.total
            < g65.get("GAN_Deconv1", "RED").latency.total
        )
