"""Tests for physical subarray tiling."""

import pytest

from repro.arch.subarray import tile_logical_array


class TestTiling:
    def test_exact_fit(self):
        tiling = tile_logical_array(256, 256)
        assert tiling.row_tiles == 2
        assert tiling.col_tiles == 2
        assert tiling.num_subarrays == 4
        assert tiling.utilization == 1.0

    def test_partial_fit_rounds_up(self):
        tiling = tile_logical_array(129, 1)
        assert tiling.row_tiles == 2
        assert tiling.col_tiles == 1

    def test_utilization_below_one_when_padded(self):
        tiling = tile_logical_array(100, 100)
        assert tiling.utilization == pytest.approx(10000 / (128 * 128))

    def test_occupied_cells(self):
        tiling = tile_logical_array(300, 50)
        assert tiling.occupied_cells == 15000
        assert tiling.provisioned_cells == 3 * 1 * 128 * 128

    def test_custom_macro_size(self):
        tiling = tile_logical_array(100, 100, subarray_rows=64, subarray_cols=64)
        assert tiling.num_subarrays == 4

    def test_table1_designs_share_cell_count(self):
        """All three designs of one layer occupy identical cell counts."""
        from repro.workloads.specs import get_layer

        spec = get_layer("GAN_Deconv1").spec
        rows_zp = spec.num_kernel_taps * spec.in_channels
        zp = tile_logical_array(rows_zp, spec.out_channels)
        pf = tile_logical_array(spec.in_channels, spec.num_kernel_taps * spec.out_channels)
        assert zp.occupied_cells == pf.occupied_cells

    def test_rejects_bad_dims(self):
        with pytest.raises(Exception):
            tile_logical_array(0, 5)
