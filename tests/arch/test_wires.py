"""Tests for the wire delay/energy model."""

import pytest

from repro.arch.tech import default_tech
from repro.arch.wires import WireModel


@pytest.fixture
def wires():
    return WireModel(default_tech())


class TestLatency:
    def test_wordline_delay_monotone(self, wires):
        delays = [wires.wordline_delay(n) for n in (16, 256, 2048, 51200)]
        assert delays == sorted(delays)

    def test_wordline_delay_superlinear_at_scale(self, wires):
        """Doubling a very wide array more than doubles the marginal delay
        growth (the quadratic term dominating)."""
        d1 = wires.wordline_delay(25600) - wires.wordline_delay(12800)
        d2 = wires.wordline_delay(51200) - wires.wordline_delay(25600)
        assert d2 > d1

    def test_bitline_delay_linear(self, wires):
        base = wires.bitline_delay(1)
        assert wires.bitline_delay(1001) - wires.bitline_delay(501) == pytest.approx(
            wires.bitline_delay(501) - base, rel=1e-9
        )

    def test_rejects_non_positive(self, wires):
        with pytest.raises(Exception):
            wires.wordline_delay(0)


class TestEnergy:
    def test_row_energy_quadratic_dominates_wide(self, wires):
        """For padding-free-scale widths, energy per row grows superlinearly:
        the paper's 'quadratic relation with the column number'."""
        e_zp = wires.wordline_energy_per_row(2048)
        e_pf = wires.wordline_energy_per_row(51200)
        assert e_pf / e_zp > 25 * 2  # much worse than linear scaling

    def test_row_energy_has_fixed_floor(self, wires):
        tech = default_tech()
        assert wires.wordline_energy_per_row(1) >= tech.e_wl_fixed

    def test_bitline_energy_linear_in_cells(self, wires):
        assert wires.bitline_energy(2000) == pytest.approx(2 * wires.bitline_energy(1000))

    def test_bitline_energy_rejects_negative(self, wires):
        with pytest.raises(ValueError):
            wires.bitline_energy(-1)
