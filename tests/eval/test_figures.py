"""Tests for the figure data generators."""

import pytest

from repro.eval.figures import (
    FIG9_LAYERS,
    fig4_redundancy_curves,
    fig7_latency,
    fig8_energy,
    fig9_area,
)
from repro.eval.harness import DESIGN_ORDER, run_grid


@pytest.fixture(scope="module")
def grid():
    return run_grid()


class TestFig4:
    def test_two_curves_six_points(self):
        curves = fig4_redundancy_curves()
        assert set(curves) == {"SNGAN input:4x4", "FCN input:16x16"}
        for series in curves.values():
            assert [s for s, _ in series] == [1, 2, 4, 8, 16, 32]

    def test_values_are_fractions(self):
        for series in fig4_redundancy_curves().values():
            assert all(0.0 <= v <= 1.0 for _, v in series)


class TestFig7:
    def test_structure(self, grid):
        fig = fig7_latency(grid)
        for layer in grid.metrics:
            assert set(fig.speedup[layer]) == set(DESIGN_ORDER)
            for design in DESIGN_ORDER:
                b = fig.breakdown[layer][design]
                assert set(b) == {"array", "periphery"}

    def test_baseline_breakdown_sums_to_one(self, grid):
        fig = fig7_latency(grid)
        for layer in grid.metrics:
            b = fig.breakdown[layer]["zero-padding"]
            assert b["array"] + b["periphery"] == pytest.approx(1.0)

    def test_speedup_consistent_with_breakdown(self, grid):
        fig = fig7_latency(grid)
        for layer in grid.metrics:
            for design in DESIGN_ORDER:
                total = sum(fig.breakdown[layer][design].values())
                assert fig.speedup[layer][design] == pytest.approx(1.0 / total)


class TestFig8:
    def test_saving_plus_ratio_is_one(self, grid):
        fig = fig8_energy(grid)
        for layer in grid.metrics:
            for design in DESIGN_ORDER:
                assert fig.saving[layer][design] + fig.ratio[layer][design] == pytest.approx(1.0)

    def test_breakdown_sums_to_ratio(self, grid):
        fig = fig8_energy(grid)
        for layer in grid.metrics:
            for design in DESIGN_ORDER:
                b = fig.breakdown[layer][design]
                assert b["array"] + b["periphery"] == pytest.approx(
                    fig.ratio[layer][design]
                )

    def test_array_ratio_self_is_one(self, grid):
        fig = fig8_energy(grid)
        for layer in grid.metrics:
            assert fig.array_ratio[layer]["zero-padding"] == pytest.approx(1.0)


class TestFig9:
    def test_covers_shown_layers(self, grid):
        fig = fig9_area(grid)
        assert set(fig.normalized) == set(FIG9_LAYERS)

    def test_total_is_array_plus_periphery(self, grid):
        fig = fig9_area(grid)
        for layer, designs in fig.normalized.items():
            for design, n in designs.items():
                assert n["array"] + n["periphery"] == pytest.approx(n["total"])

    def test_array_fraction_identical_across_designs(self, grid):
        fig = fig9_area(grid)
        for layer, designs in fig.normalized.items():
            arrays = {round(n["array"], 12) for n in designs.values()}
            assert len(arrays) == 1
