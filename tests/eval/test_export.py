"""Tests for the CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.api.schema import SCHEMA_VERSION
from repro.eval.export import (
    grid_payload,
    grid_records,
    to_csv,
    to_json,
    write_csv,
    write_json,
)
from repro.eval.harness import run_grid


@pytest.fixture(scope="module")
def grid():
    return run_grid()


class TestRecords:
    def test_one_record_per_cell(self, grid):
        records = grid_records(grid)
        assert len(records) == 6 * 3  # layers x designs

    def test_record_fields(self, grid):
        record = grid_records(grid)[0]
        for field in ("layer", "design", "cycles", "latency_s", "energy_j",
                      "area_m2", "speedup_vs_zero_padding"):
            assert field in record

    def test_baseline_speedup_is_one(self, grid):
        for record in grid_records(grid):
            if record["design"] == "zero-padding":
                assert record["speedup_vs_zero_padding"] == pytest.approx(1.0)

    def test_component_columns_sum_to_total(self, grid):
        for record in grid_records(grid):
            parts = sum(
                v for k, v in record.items()
                if k.startswith("energy_") and k.endswith("_j")
                and k not in ("energy_j", "energy_array_j", "energy_periphery_j")
            )
            assert parts == pytest.approx(record["energy_j"])


class TestFormats:
    def test_csv_round_trip(self, grid):
        text = to_csv(grid)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 18
        assert rows[0]["layer"] == "GAN_Deconv1"

    def test_json_round_trip(self, grid):
        data = json.loads(to_json(grid))
        assert data["kind"] == "grid_records"
        assert data["schema_version"] == SCHEMA_VERSION
        records = data["records"]
        assert len(records) == 18
        assert {d["design"] for d in records} == {"zero-padding", "padding-free", "RED"}

    def test_json_matches_payload(self, grid):
        assert json.loads(to_json(grid)) == json.loads(json.dumps(grid_payload(grid)))

    def test_csv_has_no_schema_column(self, grid):
        # The CSV columns are the pre-API contract: byte-identical for
        # downstream diffs, so the version tag lives only in the JSON.
        header = to_csv(grid).splitlines()[0]
        assert "schema_version" not in header
        assert header.startswith("layer,design,cycles,")

    def test_write_files(self, grid, tmp_path):
        csv_path = tmp_path / "grid.csv"
        json_path = tmp_path / "grid.json"
        write_csv(str(csv_path), grid)
        write_json(str(json_path), grid)
        assert csv_path.read_text().startswith("layer,")
        assert json.loads(json_path.read_text())["schema_version"] == SCHEMA_VERSION
