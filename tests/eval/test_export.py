"""Tests for the CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.eval.export import grid_records, to_csv, to_json, write_csv, write_json
from repro.eval.harness import run_grid


@pytest.fixture(scope="module")
def grid():
    return run_grid()


class TestRecords:
    def test_one_record_per_cell(self, grid):
        records = grid_records(grid)
        assert len(records) == 6 * 3  # layers x designs

    def test_record_fields(self, grid):
        record = grid_records(grid)[0]
        for field in ("layer", "design", "cycles", "latency_s", "energy_j",
                      "area_m2", "speedup_vs_zero_padding"):
            assert field in record

    def test_baseline_speedup_is_one(self, grid):
        for record in grid_records(grid):
            if record["design"] == "zero-padding":
                assert record["speedup_vs_zero_padding"] == pytest.approx(1.0)

    def test_component_columns_sum_to_total(self, grid):
        for record in grid_records(grid):
            parts = sum(
                v for k, v in record.items()
                if k.startswith("energy_") and k.endswith("_j")
                and k not in ("energy_j", "energy_array_j", "energy_periphery_j")
            )
            assert parts == pytest.approx(record["energy_j"])


class TestFormats:
    def test_csv_round_trip(self, grid):
        text = to_csv(grid)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 18
        assert rows[0]["layer"] == "GAN_Deconv1"

    def test_json_round_trip(self, grid):
        data = json.loads(to_json(grid))
        assert len(data) == 18
        assert {d["design"] for d in data} == {"zero-padding", "padding-free", "RED"}

    def test_write_files(self, grid, tmp_path):
        csv_path = tmp_path / "grid.csv"
        json_path = tmp_path / "grid.json"
        write_csv(str(csv_path), grid)
        write_json(str(json_path), grid)
        assert csv_path.read_text().startswith("layer,")
        assert json.loads(json_path.read_text())
