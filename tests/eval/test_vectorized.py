"""The vectorized analytic plane against the scalar per-job oracle.

The ISSUE-4 acceptance property: for every registered design (including
RED with ``fold='auto'``) and random (spec, fold, tech) draws, the
struct-of-arrays evaluator returns ``DesignMetrics`` that are float64
**bit-identical** (pickle-byte equal) to the scalar path — and
:func:`repro.eval.parallel.run_design_jobs` routes through the plane by
default with no observable behavior change.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import (
    available_designs,
    get_design,
    register_design,
    unregister_design,
)
from repro.arch.tech import default_tech
from repro.errors import ParameterError
from repro.eval.parallel import DesignJob, evaluate_design_job, run_design_jobs
from repro.eval.vectorized import design_supports_batch, evaluate_design_jobs_batch
from tests.conftest import SMALL_SPECS, deconv_specs

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Fold draws covering the design default, explicit auto, and concrete
#: Eq. 2 folds (ignored by the designs without the parameter).
folds = st.sampled_from((None, "auto", 1, 2, 3, 8))

#: Tech draws perturbing both format knobs and analog constants.
techs = st.sampled_from(
    (
        default_tech(),
        default_tech().with_overrides(mux_share=4),
        default_tech().with_overrides(bits_input=4, t_adc=0.75e-9),
        default_tech().with_overrides(differential=False, e_dec_per_row=4.5e-12),
    )
)


def _bytes(metrics_list):
    return [pickle.dumps(m, 5) for m in metrics_list]


class TestBitIdentityProperty:
    @given(spec=deconv_specs(max_input=6, max_kernel=6, max_stride=4),
           fold=folds, tech=techs)
    @settings(**_SETTINGS)
    def test_plane_matches_oracle_across_all_designs(self, spec, fold, tech):
        jobs = [
            DesignJob(design, spec, tech, fold=fold, layer_name=f"L-{design}")
            for design in available_designs()
        ]
        vectorized = evaluate_design_jobs_batch(jobs)
        scalar = [evaluate_design_job(job) for job in jobs]
        assert _bytes(vectorized) == _bytes(scalar)

    @given(spec=deconv_specs(max_input=5, max_kernel=8, max_stride=4))
    @settings(**_SETTINGS)
    def test_red_auto_fold_matches_oracle(self, spec):
        """RED's 'auto' fold resolution must vectorize identically."""
        tech = default_tech()
        job = DesignJob("RED", spec, tech, fold="auto", layer_name="auto")
        assert _bytes(evaluate_design_jobs_batch([job])) == _bytes(
            [evaluate_design_job(job)]
        )

    def test_run_design_jobs_routes_match_over_the_spec_zoo(self):
        tech = default_tech()
        jobs = [
            DesignJob(design, spec, tech, layer_name=f"{design}-{index}")
            for index, spec in enumerate(SMALL_SPECS)
            for design in available_designs()
        ]
        assert _bytes(run_design_jobs(jobs)) == _bytes(
            run_design_jobs(jobs, vectorized=False)
        )


class TestPlaneSemantics:
    def test_result_order_and_labels_preserved(self):
        tech = default_tech()
        jobs = [
            DesignJob("RED", SMALL_SPECS[2], tech, layer_name="b"),
            DesignJob("zero-padding", SMALL_SPECS[0], tech, layer_name="a"),
            DesignJob("RED", SMALL_SPECS[0], tech, layer_name="c"),
        ]
        results = evaluate_design_jobs_batch(jobs)
        assert [m.layer for m in results] == ["b", "a", "c"]
        assert [m.design for m in results] == ["RED", "zero-padding", "RED"]

    def test_aliases_resolve_to_canonical_names(self):
        tech = default_tech()
        canonical, aliased = evaluate_design_jobs_batch(
            [
                DesignJob("zero-padding", SMALL_SPECS[0], tech, layer_name="x"),
                DesignJob("zp", SMALL_SPECS[0], tech, layer_name="x"),
            ]
        )
        assert pickle.dumps(canonical, 5) == pickle.dumps(aliased, 5)

    def test_value_equal_tech_objects_share_a_group(self):
        tech_a = default_tech().with_overrides(mux_share=4)
        tech_b = default_tech().with_overrides(mux_share=4)
        assert tech_a is not tech_b
        jobs = [
            DesignJob("RED", SMALL_SPECS[0], tech_a, layer_name="a"),
            DesignJob("RED", SMALL_SPECS[0], tech_b, layer_name="b"),
        ]
        results = evaluate_design_jobs_batch(jobs)
        assert _bytes([m for m in results]) == _bytes(
            [evaluate_design_job(job) for job in jobs]
        )

    def test_mixed_techs_evaluated_per_group(self):
        tech_a = default_tech()
        tech_b = default_tech().with_overrides(t_adc=1.0e-9)
        jobs = [
            DesignJob("padding-free", SMALL_SPECS[1], tech_a, layer_name="a"),
            DesignJob("padding-free", SMALL_SPECS[1], tech_b, layer_name="b"),
        ]
        results = evaluate_design_jobs_batch(jobs)
        assert results[0].latency.total != results[1].latency.total
        assert _bytes(results) == _bytes([evaluate_design_job(job) for job in jobs])

    def test_invalid_fold_raises_parameter_error(self):
        job = DesignJob("RED", SMALL_SPECS[0], default_tech(), fold=0)
        with pytest.raises(ParameterError):
            evaluate_design_jobs_batch([job])
        with pytest.raises(ParameterError):
            evaluate_design_job(job)

    @pytest.mark.parametrize("use_cache", (False, True))
    def test_float_fold_never_borrows_an_int_twin_result(self, use_cache, tmp_path):
        """fold=2.0 is invalid; being value-equal to a valid fold=2 job
        in the same work list must not smuggle it past validation on
        either dedup route (in-memory tuple keys or on-disk job_key)."""
        tech = default_tech()
        jobs = [
            DesignJob("RED", SMALL_SPECS[0], tech, fold=2, layer_name="ok"),
            DesignJob("RED", SMALL_SPECS[0], tech, fold=2.0, layer_name="bad"),
        ]
        cache = str(tmp_path) if use_cache else None
        with pytest.raises(ParameterError):
            run_design_jobs(jobs, cache=cache)
        with pytest.raises(ParameterError):
            run_design_jobs(jobs, cache=cache, vectorized=False)


class TestScalarFallback:
    def test_design_without_hook_falls_back_to_scalar_path(self):
        """A plugin design with no perf_batch hook still evaluates."""
        from repro.designs.zero_padding_design import ZeroPaddingDesign

        @register_design("no-batch-design")
        class NoBatchDesign(ZeroPaddingDesign):
            name = "no-batch-design"

        try:
            assert not design_supports_batch("no-batch-design")
            tech = default_tech()
            jobs = [
                DesignJob("no-batch-design", SMALL_SPECS[0], tech, layer_name="p"),
                DesignJob("RED", SMALL_SPECS[0], tech, layer_name="q"),
            ]
            results = run_design_jobs(jobs)  # vectorized default
            assert [m.design for m in results] == ["no-batch-design", "RED"]
            assert _bytes(results) == _bytes(
                run_design_jobs(jobs, vectorized=False)
            )
            with pytest.raises(ParameterError):
                evaluate_design_jobs_batch([jobs[0]])
        finally:
            unregister_design("no-batch-design")

    def test_builtins_all_support_batch(self):
        for design in available_designs():
            assert design_supports_batch(design)
            assert get_design(design).perf_batch is not None
