"""Tests for the automated paper-vs-measured comparison."""

import pytest

from repro.eval.comparison import (
    all_strict_claims_pass,
    measure_claims,
    render_comparison,
)
from repro.eval.harness import run_grid
from repro.eval.paper_targets import PAPER_TARGETS


@pytest.fixture(scope="module")
def grid():
    return run_grid()


class TestComparison:
    def test_every_target_measured(self, grid):
        rows = measure_claims(grid)
        assert {r.key for r in rows} == set(PAPER_TARGETS)

    def test_all_strict_claims_pass(self, grid):
        assert all_strict_claims_pass(grid)

    def test_all_claims_currently_in_band(self, grid):
        """The calibrated defaults satisfy even the loose bands."""
        for row in measure_claims(grid):
            assert row.in_band, row.key

    def test_status_strings(self, grid):
        rows = measure_claims(grid)
        assert all(row.status == "ok" for row in rows if row.in_band)

    def test_render_contains_headline_values(self, grid):
        text = render_comparison(grid)
        assert "86.8%" in text
        assert "31.15x" in text
        assert "status" in text

    def test_deviation_labelling(self):
        from repro.eval.comparison import ComparisonRow

        strict = ComparisonRow("k", "c", "p", 0.0, in_band=False, strict=True)
        loose = ComparisonRow("k", "c", "p", 0.0, in_band=False, strict=False)
        assert strict.status == "DEVIATION"
        assert "documented" in loose.status
