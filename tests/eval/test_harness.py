"""Tests for the evaluation grid."""

import pytest

from repro.eval.harness import DESIGN_ORDER, build_design, run_grid
from repro.workloads.specs import TABLE_I_LAYERS, get_layer


@pytest.fixture(scope="module")
def grid():
    return run_grid()


class TestGrid:
    def test_covers_full_matrix(self, grid):
        assert len(grid.metrics) == len(TABLE_I_LAYERS)
        for layer, row in grid.metrics.items():
            assert set(row) == set(DESIGN_ORDER)

    def test_baseline_is_zero_padding(self, grid):
        base = grid.baseline("GAN_Deconv1")
        assert base.design == "zero-padding"

    def test_self_speedup_is_one(self, grid):
        assert grid.speedup("GAN_Deconv1", "zero-padding") == pytest.approx(1.0)

    def test_self_saving_is_zero(self, grid):
        assert grid.energy_saving("GAN_Deconv3", "zero-padding") == pytest.approx(0.0)

    def test_subset_of_layers(self):
        sub = run_grid(layers=(get_layer("GAN_Deconv3"),))
        assert list(sub.metrics) == ["GAN_Deconv3"]

    def test_build_design_dispatch(self):
        layer = get_layer("GAN_Deconv3")
        assert build_design("RED", layer).name == "RED"
        assert build_design("zero-padding", layer).name == "zero-padding"
        assert build_design("padding-free", layer).name == "padding-free"

    def test_build_design_unknown(self):
        with pytest.raises(KeyError):
            build_design("systolic", get_layer("GAN_Deconv3"))

    def test_cycles_recorded(self, grid):
        m = grid.get("FCN_Deconv2", "RED")
        assert m.cycles == 2 * 71 * 71
