"""Hit/miss/invalidation coverage for the on-disk sweep cache."""

import dataclasses
import pickle

import pytest

from repro.arch.tech import TechnologyParams, default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from repro.eval.parallel import (
    DesignJob,
    SweepCache,
    evaluate_design_job,
    job_key,
    run_design_jobs,
)

SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)


def make_job(**overrides) -> DesignJob:
    base = dict(
        design="RED", spec=SPEC, tech=default_tech(), fold=1, layer_name="L"
    )
    base.update(overrides)
    return DesignJob(**base)


#: A constraint-respecting perturbation for every TechnologyParams field.
def _perturb(field: dataclasses.Field):
    value = getattr(default_tech(), field.name)
    if isinstance(value, bool):
        return not value
    if field.name == "bits_weight":
        return value * 2  # stays a multiple of bits_per_cell
    if field.name == "bits_per_cell":
        return value * 2  # 8 % 4 == 0 still holds
    if isinstance(value, int):
        return value + 1
    return value * 1.5


class TestJobKey:
    def test_equal_jobs_share_a_key(self):
        assert job_key(make_job()) == job_key(make_job())

    def test_key_ignores_layer_label(self):
        assert job_key(make_job(layer_name="A")) == job_key(make_job(layer_name="B"))

    @pytest.mark.parametrize("design", ("zero-padding", "padding-free"))
    def test_design_in_key(self, design):
        assert job_key(make_job()) != job_key(make_job(design=design))

    @pytest.mark.parametrize("fold", (2, "auto", None))
    def test_fold_in_key(self, fold):
        assert job_key(make_job()) != job_key(make_job(fold=fold))

    def test_semantically_equal_folds_share_a_key(self):
        # RED: None is an alias of 'auto'.
        assert job_key(make_job(fold=None)) == job_key(make_job(fold="auto"))
        # Baseline designs ignore the field entirely.
        assert job_key(make_job(design="zero-padding", fold=4)) == job_key(
            make_job(design="zero-padding", fold=None)
        )

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(DeconvSpec)]
    )
    def test_every_spec_field_busts_the_key(self, field):
        changed = dataclasses.replace(SPEC, **{field: getattr(SPEC, field) + 1})
        assert job_key(make_job()) != job_key(make_job(spec=changed))

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(TechnologyParams)]
    )
    def test_every_tech_field_busts_the_key(self, field):
        tech_field = {f.name: f for f in dataclasses.fields(TechnologyParams)}[field]
        changed = default_tech().with_overrides(**{field: _perturb(tech_field)})
        assert job_key(make_job()) != job_key(make_job(tech=changed))


class TestCacheLifecycle:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = SweepCache(tmp_path)
        job = make_job()
        assert cache.get(job) is None
        assert (cache.hits, cache.misses) == (0, 1)
        metrics = evaluate_design_job(job)
        cache.put(job, metrics)
        assert cache.stores == 1
        assert cache.path_for(job).exists()
        cached = cache.get(job)
        assert cache.hits == 1
        assert cached == metrics

    def test_hit_relabelled_to_requesting_job(self, tmp_path):
        cache = SweepCache(tmp_path)
        job_a = make_job(layer_name="GAN_Deconv1")
        cache.put(job_a, evaluate_design_job(job_a))
        cached = cache.get(make_job(layer_name="SNGAN_Deconv4"))
        assert cached is not None
        assert cached.layer == "SNGAN_Deconv4"

    def test_corrupt_entry_is_a_miss_and_gets_rewritten(self, tmp_path):
        cache = SweepCache(tmp_path)
        job = make_job()
        cache.path_for(job).write_bytes(b"not a pickle")
        assert cache.get(job) is None
        # The bad entry is counted and unlinked so the slot is rewritten.
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert not cache.path_for(job).exists()
        results = run_design_jobs([job], cache=cache)
        assert pickle.dumps(results[0]) == pickle.dumps(evaluate_design_job(job))
        assert cache.get(job) is not None
        assert cache.corrupt == 1  # the rewrite is clean

    def test_shape_skewed_entry_counts_as_corrupt(self, tmp_path):
        cache = SweepCache(tmp_path)
        job = make_job()
        # A valid pickle of the wrong payload class (e.g. written before
        # a payload schema change) is shape skew, not a programming error.
        cache.path_for(job).write_bytes(pickle.dumps({"not": "metrics"}))
        assert cache.get(job) is None
        assert cache.corrupt == 1
        assert not cache.path_for(job).exists()

    def test_tech_change_invalidates_previous_results(self, tmp_path):
        cache = SweepCache(tmp_path)
        job = make_job()
        run_design_jobs([job], cache=cache)
        retuned = make_job(tech=default_tech().with_overrides(t_adc=1.0e-9))
        assert cache.get(retuned) is None
        fresh, = run_design_jobs([retuned], cache=cache)
        stale, = run_design_jobs([job], cache=cache)
        assert fresh.latency.total != stale.latency.total

    def test_directory_path_coercion_builds_packed_store(self, tmp_path):
        job = make_job()
        first = run_design_jobs([job], cache=str(tmp_path))
        second = run_design_jobs([job], cache=tmp_path)
        assert pickle.dumps(first) == pickle.dumps(second)
        # A path constructs the packed store, not the per-pickle layout.
        assert (tmp_path / "index.bin").exists()
        assert len(list(tmp_path.glob("*.seg"))) >= 1
        assert len(list(tmp_path.glob("*.pkl"))) == 0

    def test_duplicate_jobs_computed_once_with_labels_preserved(self, tmp_path):
        cache = SweepCache(tmp_path)
        jobs = [make_job(layer_name="A"), make_job(layer_name="B")]
        results = run_design_jobs(jobs, cache=cache)
        assert cache.stores == 1  # one evaluation served both jobs
        assert [m.layer for m in results] == ["A", "B"]
        assert results[0].latency == results[1].latency

    def test_mixed_hit_miss_preserves_job_order(self, tmp_path):
        cache = SweepCache(tmp_path)
        jobs = [make_job(design=d, layer_name=d) for d in ("RED", "zero-padding")]
        run_design_jobs([jobs[0]], cache=cache)
        results = run_design_jobs(jobs, cache=cache)
        assert [m.design for m in results] == ["RED", "zero-padding"]
        assert [m.layer for m in results] == ["RED", "zero-padding"]


class TestCacheWithVectorizedRoute:
    """ISSUE-4: SweepCache semantics are route-independent.

    Hits relabel per requesting job, misses are computed once per unique
    key, and cold/warm results are byte-identical whether the vectorized
    plane or the scalar path produced them.
    """

    def _job_grid(self):
        specs = (SPEC, DeconvSpec(3, 5, 2, 4, 4, 3, stride=2, padding=1))
        return [
            make_job(design=design, spec=spec, fold=None, layer_name=f"{design}-{i}")
            for i, spec in enumerate(specs)
            for design in ("zero-padding", "padding-free", "RED")
        ]

    def test_cold_entries_byte_identical_across_routes(self, tmp_path):
        jobs = self._job_grid()
        vec_cache = SweepCache(tmp_path / "vec")
        scalar_cache = SweepCache(tmp_path / "scalar")
        run_design_jobs(jobs, cache=vec_cache, vectorized=True)
        run_design_jobs(jobs, cache=scalar_cache, vectorized=False)
        for job in jobs:
            vec_bytes = vec_cache.path_for(job).read_bytes()
            scalar_bytes = scalar_cache.path_for(job).read_bytes()
            assert vec_bytes == scalar_bytes

    def test_warm_reads_match_cold_results_regardless_of_writer(self, tmp_path):
        jobs = self._job_grid()
        cache = SweepCache(tmp_path)
        cold = run_design_jobs(jobs, cache=cache, vectorized=True)
        warm_scalar = run_design_jobs(jobs, cache=cache, vectorized=False)
        warm_vec = run_design_jobs(jobs, cache=cache, vectorized=True)
        # Per-element digests: list-level pickles differ by shared-object
        # memoization even when every element is byte-identical.
        digest = lambda results: [pickle.dumps(m) for m in results]  # noqa: E731
        assert digest(cold) == digest(warm_scalar) == digest(warm_vec)
        # Every warm read was a pure hit: nothing was recomputed/stored.
        assert cache.stores == len(jobs)
        assert cache.hits == 2 * len(jobs)

    def test_vectorized_misses_computed_once_per_unique_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        jobs = [make_job(layer_name=label) for label in ("A", "B", "C")]
        jobs += [make_job(design="zp", layer_name="D")]  # zero-padding alias
        results = run_design_jobs(jobs, cache=cache, vectorized=True)
        # Three RED jobs share one key; the aliased zero-padding job has
        # its own.  Misses are stored exactly once per unique key.
        assert cache.stores == 2
        assert [m.layer for m in results] == ["A", "B", "C", "D"]
        assert results[0].latency == results[1].latency == results[2].latency

    def test_hits_relabel_per_requesting_job_on_batched_path(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_design_jobs([make_job(layer_name="seed")], cache=cache, vectorized=True)
        relabelled = run_design_jobs(
            [make_job(layer_name="hit-1"), make_job(layer_name="hit-2")],
            cache=cache,
            vectorized=True,
        )
        assert [m.layer for m in relabelled] == ["hit-1", "hit-2"]
        assert cache.hits == 2 and cache.stores == 1

    def test_dedup_identical_without_cache_on_both_routes(self):
        jobs = [make_job(layer_name="X"), make_job(layer_name="Y")]
        for vectorized in (True, False):
            results = run_design_jobs(jobs, vectorized=vectorized)
            assert [m.layer for m in results] == ["X", "Y"]
            assert results[0].latency == results[1].latency


class TestRunnerValidation:
    def test_bad_worker_count_rejected(self):
        with pytest.raises(ParameterError):
            run_design_jobs([make_job()], num_workers=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ParameterError):
            run_design_jobs([make_job()], chunk_size=0)

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError):
            evaluate_design_job(make_job(design="systolic"))
