"""Tests for the paper-target band records."""

from repro.eval.paper_targets import PAPER_TARGETS, PaperBand


class TestBands:
    def test_contains_inclusive(self):
        band = PaperBand(claim="x", published="y", low=1.0, high=2.0)
        assert band.contains(1.0)
        assert band.contains(2.0)
        assert not band.contains(0.999)
        assert not band.contains(2.001)

    def test_all_targets_have_valid_ranges(self):
        for key, band in PAPER_TARGETS.items():
            assert band.low <= band.high, key
            assert band.claim and band.published, key

    def test_headline_targets_present(self):
        for key in (
            "speedup_min", "speedup_max",
            "energy_saving_min", "energy_saving_max",
            "red_area_overhead_gan",
            "fig4_sngan_stride2",
        ):
            assert key in PAPER_TARGETS

    def test_known_deviations_flagged(self):
        """Claims we reproduce directionally carry strict=False."""
        assert not PAPER_TARGETS["pf_area_overhead_gan1"].strict
        assert not PAPER_TARGETS["pf_total_energy_gan_max"].strict
        assert PAPER_TARGETS["speedup_max"].strict
