"""Tests for the table renderers and report formatting."""

from repro.eval.report import (
    format_fig4,
    format_fig7,
    format_fig8,
    format_fig9,
    full_report,
)
from repro.eval.tables import render_table1, render_table2


class TestTable1:
    def test_contains_all_layers(self):
        text = render_table1()
        for name in (
            "GAN_Deconv1", "GAN_Deconv2", "GAN_Deconv3",
            "GAN_Deconv4", "FCN_Deconv1", "FCN_Deconv2",
        ):
            assert name in text

    def test_contains_shapes(self):
        text = render_table1()
        assert "(8, 8, 512)" in text
        assert "(568, 568, 21)" in text
        assert "(16, 16, 21, 21)" in text


class TestTable2:
    def test_contains_all_abbreviations(self):
        text = render_table2()
        for abbr in (" c ", " wd ", " bd ", " mux ", " dec ", " rc ", " sa "):
            assert abbr in text

    def test_groups(self):
        text = render_table2()
        assert "Array (a)" in text
        assert "Periphery (pp)" in text


class TestReport:
    def test_fig4_mentions_strides(self):
        text = format_fig4()
        for stride in ("1", "2", "4", "8", "16", "32"):
            assert stride in text

    def test_fig7_has_speedups(self):
        text = format_fig7()
        assert "speedup" in text
        assert "RED" in text

    def test_fig8_has_savings(self):
        assert "saving" in format_fig8()

    def test_fig9_lists_shown_layers(self):
        text = format_fig9()
        assert "GAN_Deconv1" in text and "FCN_Deconv2" in text

    def test_full_report_joins_everything(self):
        text = full_report()
        assert "Table I" in text
        assert "Table II" in text
        assert "Fig. 4" in text
        assert "Fig. 9" in text
        assert "component breakdown" in text


class TestComponentBreakdown:
    def test_energy_components_listed(self):
        from repro.eval.report import format_component_breakdown

        text = format_component_breakdown(metric="energy")
        for col in ("c %", "wd %", "dec %", "rc %", "ov %"):
            assert col in text

    def test_latency_variant(self):
        from repro.eval.report import format_component_breakdown

        text = format_component_breakdown(metric="latency")
        assert "latency" in text

    def test_rejects_unknown_metric(self):
        from repro.eval.report import format_component_breakdown

        import pytest

        with pytest.raises(ValueError):
            format_component_breakdown(metric="power")

    def test_baseline_rows_sum_to_100(self):
        from repro.eval.harness import run_grid
        from repro.eval.report import format_component_breakdown

        grid = run_grid()
        base = grid.baseline("GAN_Deconv1").energy
        norm = base.normalized_to(base)
        assert sum(norm.values()) == 1.0
