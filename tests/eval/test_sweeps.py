"""Tests for the stride-speedup sweep (Sec. III-C quadratic claim)."""

import pytest

from repro.errors import ParameterError
from repro.eval.sweeps import quadratic_fit_exponent, stride_speedup_sweep


@pytest.fixture(scope="module")
def points():
    return stride_speedup_sweep(strides=(1, 2, 4, 8))


class TestStrideSweep:
    def test_modes_are_stride_squared(self, points):
        for p in points:
            assert p.modes == p.stride**2

    def test_speedup_grows_with_stride(self, points):
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_cycle_ratio_is_exactly_quadratic(self, points):
        """The round-count ratio is stride^2 by construction (fold=1)."""
        for p in points:
            if p.stride > 1:
                assert p.cycles_zp / p.cycles_red == pytest.approx(p.stride**2)

    def test_quadratic_exponent_near_two(self, points):
        """Sec. III-C: 'the speed-up ... quadratically increases with the
        stride' — per-cycle overheads pull the exponent slightly under 2."""
        exponent = quadratic_fit_exponent(points)
        assert 1.7 <= exponent <= 2.05

    def test_stride1_near_parity(self, points):
        assert points[0].stride == 1
        assert 0.8 <= points[0].speedup <= 1.2

    def test_folded_sweep_caps_parallelism(self):
        unfolded = stride_speedup_sweep(strides=(8,), fold=1)[0]
        folded = stride_speedup_sweep(strides=(8,), fold=2)[0]
        assert folded.speedup < unfolded.speedup

    def test_empty_strides_rejected(self):
        with pytest.raises(ParameterError):
            stride_speedup_sweep(strides=())

    def test_fit_needs_two_points(self):
        single = stride_speedup_sweep(strides=(2,))
        with pytest.raises(ParameterError):
            quadratic_fit_exponent(single)

    def test_sweep_closes_its_service(self, monkeypatch):
        """The sweep must release the RedService it creates (ISSUE-4):
        a leaked service keeps its thread pool and the process-wide
        compiled-schedule cache alive."""
        from repro.api.service import RedService

        closes = []
        original = RedService.close
        monkeypatch.setattr(
            RedService, "close", lambda self: (closes.append(self), original(self))
        )
        stride_speedup_sweep(strides=(2,))
        assert len(closes) == 1
