"""Tests for the hardware-accuracy study."""

import pytest

from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from repro.eval.accuracy import layer_accuracy_study


@pytest.fixture(scope="module")
def points():
    spec = DeconvSpec(3, 3, 8, 4, 4, 4, stride=2, padding=1)
    return layer_accuracy_study(spec, adc_bits_sweep=(8, 4), sigma_sweep=(0.05,))


class TestAccuracyStudy:
    def test_baseline_first(self, points):
        assert points[0].label.startswith("lossless")

    def test_quantization_error_small(self, points):
        assert points[0].relative_error < 0.05
        assert points[0].snr_db > 20.0

    def test_adc_degradation_monotone(self, points):
        adc = [p for p in points if p.label.startswith("ADC")]
        errors = [p.relative_error for p in adc]
        assert errors == sorted(errors)  # 8 bits better than 4

    def test_noise_worse_than_baseline(self, points):
        noisy = [p for p in points if "variation" in p.label]
        assert all(p.relative_error >= points[0].relative_error for p in noisy)

    def test_snr_consistent_with_error(self, points):
        ordered = sorted(points, key=lambda p: p.relative_error)
        snrs = [p.snr_db for p in ordered]
        assert snrs == sorted(snrs, reverse=True)

    def test_rejects_silly_bits(self):
        spec = DeconvSpec(2, 2, 2, 2, 2, 2, stride=2)
        with pytest.raises(ParameterError):
            layer_accuracy_study(spec, bits=1)

    def test_deterministic(self):
        spec = DeconvSpec(2, 2, 4, 2, 2, 2, stride=2)
        a = layer_accuracy_study(spec, seed=3, adc_bits_sweep=(), sigma_sweep=())
        b = layer_accuracy_study(spec, seed=3, adc_bits_sweep=(), sigma_sweep=())
        assert a[0].relative_error == b[0].relative_error
