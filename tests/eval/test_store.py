"""The batched cache plane: packed store, batched keying, hit tier.

Covers the ISSUE-5 contracts:

- ``job_keys(jobs)`` is bit-for-bit equal to the scalar
  ``[job_key(j) for j in jobs]`` across designs, folds, techs and kinds
  (hypothesis property).
- ``PackedSweepStore`` round-trips payloads, survives concurrent
  ``put_many`` writers sharing one directory, migrates the legacy
  directory-of-pickles layout byte-identically, and bounds its
  in-memory LRU hit tier.
- ``run_design_jobs`` / ``run_cycle_jobs`` issue *zero* per-job cache
  calls — one batched probe plus one batched publish per run
  (call-count instrumentation).
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import CacheError, ParameterError
from repro.eval.parallel import (
    CYCLES_KIND,
    FIDELITY_KIND,
    METRICS_KIND,
    CycleStats,
    DesignJob,
    FidelityJob,
    FidelityStats,
    SweepCache,
    evaluate_design_job,
    fidelity_job_keys,
    job_key,
    job_keys,
    run_cycle_jobs,
    run_design_jobs,
)
from repro.eval.store import PackedSweepStore

SPEC = DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1)
TECH = default_tech()
TECH_B = TECH.with_overrides(mux_share=4)


def make_job(**overrides) -> DesignJob:
    base = dict(design="RED", spec=SPEC, tech=TECH, fold=1, layer_name="L")
    base.update(overrides)
    return DesignJob(**base)


def stats_payload(token: int, layer: str = "L") -> CycleStats:
    """A cheap-to-build payload for store-level tests."""
    return CycleStats(
        design="RED", layer=layer, fold=1, cycles=token,
        counters=(("output_pixels", token),),
    )


def synthetic_key(token: int) -> str:
    """A deterministic, well-formed 64-hex store key."""
    import hashlib

    return hashlib.sha256(f"synthetic-{token}".encode()).hexdigest()


# ----------------------------------------------------------------------
# Batched keying
# ----------------------------------------------------------------------
@st.composite
def job_lists(draw):
    """Diverse job lists: designs x folds x specs x techs x labels."""
    specs = [
        SPEC,
        DeconvSpec(3, 5, 2, 4, 4, 3, stride=2, padding=1),
        DeconvSpec(4, 4, 2, 8, 8, 2, stride=4, padding=2),
    ]
    count = draw(st.integers(min_value=0, max_value=12))
    jobs = []
    for index in range(count):
        design = draw(
            st.sampled_from(("RED", "zero-padding", "padding-free", "zp", "pf"))
        )
        fold = draw(st.sampled_from((None, "auto", 1, 2, 2.0)))
        spec = draw(st.sampled_from(specs))
        tech = draw(st.sampled_from((TECH, TECH_B)))
        jobs.append(
            DesignJob(design, spec, tech, fold=fold, layer_name=f"job{index}")
        )
    return jobs


class TestJobKeysBatched:
    @given(job_lists(), st.sampled_from((METRICS_KIND, CYCLES_KIND)))
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_scalar_job_key(self, jobs, kind):
        assert job_keys(jobs, kind) == [job_key(job, kind) for job in jobs]

    def test_empty_list(self):
        assert job_keys([]) == []

    def test_value_equal_tech_instances_share_segments(self):
        # Distinct-but-equal tech objects must produce the same keys the
        # identity-memoized fast path does.
        import dataclasses

        clone = dataclasses.replace(TECH)
        assert clone is not TECH
        jobs = [make_job(tech=TECH), make_job(tech=clone)]
        keys = job_keys(jobs)
        assert keys[0] == keys[1] == job_key(jobs[0])

    def test_fold_type_distinguished_like_scalar(self):
        # 2 vs 2.0 repr differently; the batched memo must not merge them.
        a, b = make_job(fold=2), make_job(fold=2.0)
        assert job_keys([a, b]) == [job_key(a), job_key(b)]
        assert job_key(a) != job_key(b)


class TestFidelityKind:
    def fidelity_payload(self, token: int, layer: str = "L") -> FidelityStats:
        return FidelityStats(
            design="RED", layer=layer, seed=token, time_s=1.0,
            rms_error=0.1 * token, mean_abs_error=0.0, max_abs_error=0.0,
            stuck_fraction=0.0,
        )

    def test_put_many_get_many_round_trip(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        entries = [(synthetic_key(i), self.fidelity_payload(i)) for i in range(5)]
        assert store.put_many(entries, kind=FIDELITY_KIND) == 5
        values = store.get_many([k for k, _ in entries], kind=FIDELITY_KIND)
        assert values == [payload for _, payload in entries]
        fresh = PackedSweepStore(tmp_path)
        assert fresh.get_many(
            [k for k, _ in entries], kind=FIDELITY_KIND
        ) == values

    def test_wrong_payload_type_rejected(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        with pytest.raises(TypeError):
            store.put_many(
                [(synthetic_key(0), stats_payload(0))], kind=FIDELITY_KIND
            )
        with pytest.raises(TypeError):
            store.put_many(
                [(synthetic_key(0), self.fidelity_payload(0))], kind=CYCLES_KIND
            )

    @given(job_lists())
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fidelity_keys_never_collide_with_other_kinds(self, jobs):
        fidelity = [
            FidelityJob(
                design=job.design, spec=job.spec, tech=job.tech,
                layer_name=job.layer_name,
            )
            for job in jobs
        ]
        other = set(job_keys(jobs, METRICS_KIND)) | set(job_keys(jobs, CYCLES_KIND))
        assert not other & set(fidelity_job_keys(fidelity))


# ----------------------------------------------------------------------
# Packed store fundamentals
# ----------------------------------------------------------------------
class TestPackedStoreRoundTrip:
    def test_put_many_get_many(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        entries = [(synthetic_key(i), stats_payload(i)) for i in range(5)]
        assert store.put_many(entries, kind=CYCLES_KIND) == 5
        values = store.get_many([k for k, _ in entries], kind=CYCLES_KIND)
        assert [v.cycles for v in values] == list(range(5))
        assert store.stores == 5 and store.hits == 5

    def test_fresh_open_reads_from_disk(self, tmp_path):
        first = PackedSweepStore(tmp_path)
        first.put_many([(synthetic_key(1), stats_payload(7))], kind=CYCLES_KIND)
        second = PackedSweepStore(tmp_path)
        value = second.get_many([synthetic_key(1)], kind=CYCLES_KIND)[0]
        assert value.cycles == 7
        assert second.disk_hits == 1 and second.memory_hits == 0

    def test_miss_counts(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        assert store.get_many([synthetic_key(9)], kind=CYCLES_KIND) == [None]
        assert store.misses == 1 and store.hits == 0

    def test_overwrite_wins(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        key = synthetic_key(3)
        store.put_many([(key, stats_payload(1))], kind=CYCLES_KIND)
        store.put_many([(key, stats_payload(2))], kind=CYCLES_KIND)
        assert store.get_many([key], kind=CYCLES_KIND)[0].cycles == 2
        fresh = PackedSweepStore(tmp_path)
        assert fresh.get_many([key], kind=CYCLES_KIND)[0].cycles == 2

    def test_wrong_payload_type_rejected(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        with pytest.raises(TypeError):
            store.put_many([(synthetic_key(0), stats_payload(0))])  # metrics kind

    def test_malformed_key_rejected(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        with pytest.raises(CacheError):
            store.put_many([("short", stats_payload(0))], kind=CYCLES_KIND)
        with pytest.raises(CacheError):
            store.get_many(["z" * 64], kind=CYCLES_KIND)

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            PackedSweepStore(tmp_path, num_shards=0)
        with pytest.raises(ParameterError):
            PackedSweepStore(tmp_path, memory_entries=-1)

    def test_job_level_compat_api(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        job = make_job(layer_name="first")
        store.put(job, evaluate_design_job(job))
        relabelled = store.get(make_job(layer_name="second"))
        assert relabelled is not None and relabelled.layer == "second"
        same_label = store.get(make_job(layer_name="first"))
        assert same_label.layer == "first"

    def test_cross_process_publish_visible_after_miss(self, tmp_path):
        # A reader refreshes its index (one stat) when a lookup misses,
        # so another store object's publish becomes visible without
        # reopening.
        reader = PackedSweepStore(tmp_path)
        writer = PackedSweepStore(tmp_path)
        key = synthetic_key(11)
        writer.put_many([(key, stats_payload(11))], kind=CYCLES_KIND)
        assert reader.get_many([key], kind=CYCLES_KIND)[0].cycles == 11


class TestCorruptHandling:
    def test_corrupt_segment_record_counts_and_recovers(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        key = synthetic_key(5)
        store.put_many([(key, stats_payload(5))], kind=CYCLES_KIND)
        store.close()
        for segment in tmp_path.glob("*.seg"):
            segment.write_bytes(b"\x00" * segment.stat().st_size)
        fresh = PackedSweepStore(tmp_path)
        assert fresh.get_many([key], kind=CYCLES_KIND) == [None]
        assert fresh.corrupt == 1
        # The slot is rewritable: a new publish supersedes the dead record.
        fresh.put_many([(key, stats_payload(6))], kind=CYCLES_KIND)
        assert fresh.get_many([key], kind=CYCLES_KIND)[0].cycles == 6

    def test_discarded_corrupt_entry_scrubbed_at_next_publish(self, tmp_path):
        # A publish of *other* keys must not resurrect an entry the
        # store already observed as corrupt (the read-merge-publish
        # cycle re-reads the on-disk index, which still lists it).
        store = PackedSweepStore(tmp_path)
        bad, other = synthetic_key(1), synthetic_key(2)
        store.put_many([(bad, stats_payload(1))], kind=CYCLES_KIND)
        store.close()
        for segment in tmp_path.glob("*.seg"):
            segment.write_bytes(b"\x00" * segment.stat().st_size)
        fresh = PackedSweepStore(tmp_path)
        assert fresh.get_many([bad], kind=CYCLES_KIND) == [None]
        fresh.put_many([(other, stats_payload(2))], kind=CYCLES_KIND)
        reopened = PackedSweepStore(tmp_path)
        assert bad not in reopened
        assert reopened.get_many([bad], kind=CYCLES_KIND) == [None]
        assert reopened.corrupt == 0  # a clean miss now, not a re-decode

    def test_duplicate_keys_in_one_batch_decode_once(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        key = synthetic_key(4)
        store.put_many([(key, stats_payload(4))], kind=CYCLES_KIND)
        fresh = PackedSweepStore(tmp_path)  # cold tier: all disk
        values = fresh.get_many([key, key, key], kind=CYCLES_KIND)
        assert [v.cycles for v in values] == [4, 4, 4]
        assert values[0] is values[1] is values[2]  # one decode, fanned out
        assert fresh.disk_hits == 3 and fresh.memory_size() == 1

    def test_shape_skewed_payload_counts_as_corrupt(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        key = synthetic_key(6)
        store.put_many([(key, stats_payload(6))], kind=CYCLES_KIND)
        fresh = PackedSweepStore(tmp_path)  # LRU cold: forces the disk path
        assert fresh.get_many([key]) == [None]  # metrics kind: wrong class
        assert fresh.corrupt == 1


# ----------------------------------------------------------------------
# In-memory LRU hit tier
# ----------------------------------------------------------------------
class TestMemoryTier:
    def test_eviction_bound_holds(self, tmp_path):
        store = PackedSweepStore(tmp_path, memory_entries=4)
        entries = [
            (synthetic_key(i), stats_payload(i)) for i in range(10)
        ]
        store.put_many(entries, kind=CYCLES_KIND)
        assert store.memory_size() <= 4
        # Evicted entries are still served (from disk) and re-admitted.
        values = store.get_many([k for k, _ in entries], kind=CYCLES_KIND)
        assert [v.cycles for v in values] == list(range(10))
        assert store.memory_size() <= 4
        assert store.disk_hits >= 6

    def test_repeated_sweep_never_touches_disk_twice(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        keys = [synthetic_key(i) for i in range(8)]
        store.put_many(
            [(k, stats_payload(i)) for i, k in enumerate(keys)],
            kind=CYCLES_KIND,
        )
        store.get_many(keys, kind=CYCLES_KIND)
        store.get_many(keys, kind=CYCLES_KIND)
        assert store.disk_hits == 0  # put_many pre-populated the tier
        assert store.memory_hits == 16

    def test_lru_recency_order(self, tmp_path):
        store = PackedSweepStore(tmp_path, memory_entries=2)
        a, b, c = (synthetic_key(i) for i in range(3))
        store.put_many(
            [(a, stats_payload(0)), (b, stats_payload(1))], kind=CYCLES_KIND
        )
        store.get_many([a], kind=CYCLES_KIND)  # refresh a
        store.put_many([(c, stats_payload(2))], kind=CYCLES_KIND)  # evicts b
        store.get_many([a, b, c], kind=CYCLES_KIND)
        assert store.disk_hits == 1  # only b went to disk

    def test_disabled_tier(self, tmp_path):
        store = PackedSweepStore(tmp_path, memory_entries=0)
        key = synthetic_key(0)
        store.put_many([(key, stats_payload(0))], kind=CYCLES_KIND)
        store.get_many([key], kind=CYCLES_KIND)
        store.get_many([key], kind=CYCLES_KIND)
        assert store.memory_size() == 0
        assert store.disk_hits == 2


# ----------------------------------------------------------------------
# Concurrent writers
# ----------------------------------------------------------------------
def _concurrent_writer(args) -> int:
    """One worker process appending its own batches to a shared store."""
    directory, worker, batches, per_batch = args
    store = PackedSweepStore(directory)
    for batch in range(batches):
        entries = [
            (
                synthetic_key(worker * 10_000 + batch * 100 + item),
                stats_payload(worker * 10_000 + batch * 100 + item),
            )
            for item in range(per_batch)
        ]
        store.put_many(entries, kind=CYCLES_KIND)
    return batches * per_batch


class TestConcurrentWriters:
    def test_put_many_from_multiple_processes_loses_nothing(self, tmp_path):
        workers, batches, per_batch = 4, 3, 5
        with ProcessPoolExecutor(max_workers=workers) as pool:
            written = list(
                pool.map(
                    _concurrent_writer,
                    [
                        (str(tmp_path), worker, batches, per_batch)
                        for worker in range(workers)
                    ],
                )
            )
        assert sum(written) == workers * batches * per_batch
        store = PackedSweepStore(tmp_path)
        expected = [
            worker * 10_000 + batch * 100 + item
            for worker in range(workers)
            for batch in range(batches)
            for item in range(per_batch)
        ]
        values = store.get_many(
            [synthetic_key(token) for token in expected], kind=CYCLES_KIND
        )
        assert [v.cycles for v in values] == expected
        assert store.misses == 0


# ----------------------------------------------------------------------
# Legacy directory-of-pickles migration
# ----------------------------------------------------------------------
class TestLegacyMigration:
    def test_legacy_entries_read_back_byte_identical(self, tmp_path):
        legacy = SweepCache(tmp_path)
        jobs = [
            make_job(design=design, layer_name=design)
            for design in ("RED", "zero-padding", "padding-free")
        ]
        legacy_results = run_design_jobs(jobs, cache=legacy)
        migrated = PackedSweepStore(tmp_path)
        assert migrated.migrated == len(jobs)
        packed_results = run_design_jobs(jobs, cache=migrated)
        assert migrated.misses == 0
        assert [pickle.dumps(m) for m in packed_results] == [
            pickle.dumps(m) for m in legacy_results
        ]
        # The legacy files stay in place for older readers.
        assert len(list(tmp_path.glob("*.pkl"))) == len(jobs)

    def test_migration_is_idempotent(self, tmp_path):
        legacy = SweepCache(tmp_path)
        run_design_jobs([make_job()], cache=legacy)
        first = PackedSweepStore(tmp_path)
        assert first.migrated == 1
        second = PackedSweepStore(tmp_path)
        assert second.migrated == 0  # already indexed, nothing re-imported
        assert len(second) == 1

    def test_non_key_pickles_ignored(self, tmp_path):
        (tmp_path / "notes.pkl").write_bytes(pickle.dumps({"x": 1}))
        (tmp_path / ("z" * 64 + ".pkl")).write_bytes(b"junk")  # non-hex stem
        store = PackedSweepStore(tmp_path)
        assert store.migrated == 0 and len(store) == 0


# ----------------------------------------------------------------------
# Runner discipline: batch probe + batch publish only
# ----------------------------------------------------------------------
class CountingStore(PackedSweepStore):
    """Instruments the store API the runners are allowed to touch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.get_many_calls = 0
        self.put_many_calls = 0
        self.get_calls = 0
        self.put_calls = 0

    def get_many(self, keys, kind=METRICS_KIND):
        self.get_many_calls += 1
        return super().get_many(keys, kind)

    def put_many(self, entries, kind=METRICS_KIND):
        self.put_many_calls += 1
        return super().put_many(entries, kind)

    def get(self, job, kind=METRICS_KIND, *, key=None):
        self.get_calls += 1
        return super().get(job, kind, key=key)

    def put(self, job, value, kind=METRICS_KIND, *, key=None):
        self.put_calls += 1
        super().put(job, value, kind=kind, key=key)


class TestRunnerBatchDiscipline:
    def _grid(self):
        specs = (SPEC, DeconvSpec(3, 5, 2, 4, 4, 3, stride=2, padding=1))
        return [
            make_job(design=design, spec=spec, fold=None,
                     layer_name=f"{design}-{i}")
            for i, spec in enumerate(specs)
            for design in ("RED", "zero-padding", "padding-free")
        ]

    def test_run_design_jobs_zero_per_job_calls(self, tmp_path):
        store = CountingStore(tmp_path)
        jobs = self._grid()
        run_design_jobs(jobs, cache=store)  # cold: probe + publish
        assert (store.get_many_calls, store.put_many_calls) == (1, 1)
        assert (store.get_calls, store.put_calls) == (0, 0)
        run_design_jobs(jobs, cache=store)  # warm: probe only
        assert (store.get_many_calls, store.put_many_calls) == (2, 1)
        assert (store.get_calls, store.put_calls) == (0, 0)

    def test_run_cycle_jobs_zero_per_job_calls(self, tmp_path):
        store = CountingStore(tmp_path)
        jobs = self._grid()  # only RED is trace-capable
        run_cycle_jobs(jobs, cache=store)
        assert (store.get_many_calls, store.put_many_calls) == (1, 1)
        assert (store.get_calls, store.put_calls) == (0, 0)
        run_cycle_jobs(jobs, cache=store)
        assert (store.get_many_calls, store.put_many_calls) == (2, 1)
        assert (store.get_calls, store.put_calls) == (0, 0)

    def test_counting_store_passes_coercion_untouched(self, tmp_path):
        # Duck-typed stores flow through _coerce_cache unchanged, so the
        # counters above really observe the runner's traffic.
        from repro.eval.parallel import _coerce_cache

        store = CountingStore(tmp_path)
        assert _coerce_cache(store) is store


# ----------------------------------------------------------------------
# Route equivalence through the runner
# ----------------------------------------------------------------------
class TestPackedStoreThroughRunner:
    def test_cold_warm_uncached_byte_identical(self, tmp_path):
        jobs = [
            make_job(design=design, fold=None, layer_name=f"{design}-{i}")
            for i in range(2)
            for design in ("RED", "zero-padding", "padding-free")
        ]
        store = PackedSweepStore(tmp_path)
        cold = run_design_jobs(jobs, cache=store)
        warm = run_design_jobs(jobs, cache=store)
        reopened = run_design_jobs(jobs, cache=PackedSweepStore(tmp_path))
        uncached = run_design_jobs(jobs)
        digest = lambda results: [pickle.dumps(m) for m in results]  # noqa: E731
        assert (
            digest(cold) == digest(warm) == digest(reopened) == digest(uncached)
        )

    def test_cycle_stats_roundtrip_through_packed_store(self, tmp_path):
        jobs = [make_job(layer_name="a"), make_job(layer_name="b")]
        store = PackedSweepStore(tmp_path)
        cold = run_cycle_jobs(jobs, cache=store)
        warm = run_cycle_jobs(jobs, cache=store)
        assert [pickle.dumps(c) for c in cold] == [pickle.dumps(c) for c in warm]
        assert [c.layer for c in warm] == ["a", "b"]
