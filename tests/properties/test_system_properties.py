"""Property-based invariants of the system-level models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.pipeline import PipelineReport

positive_floats = st.floats(
    min_value=1e-9, max_value=1e-3, allow_nan=False, allow_infinity=False
)


class TestPipelineAlgebra:
    @given(st.lists(positive_floats, min_size=1, max_size=8), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_fill_at_least_bottleneck(self, stages, batch):
        report = PipelineReport(
            design="x", stage_latencies=tuple(stages), batch=batch, energy_per_sample=1.0
        )
        assert report.fill_latency >= report.bottleneck_latency

    @given(st.lists(positive_floats, min_size=1, max_size=8), st.integers(1, 63))
    @settings(max_examples=60, deadline=None)
    def test_batch_latency_monotone_in_batch(self, stages, batch):
        small = PipelineReport("x", tuple(stages), batch, 1.0)
        large = PipelineReport("x", tuple(stages), batch + 1, 1.0)
        assert large.batch_latency >= small.batch_latency

    @given(st.lists(positive_floats, min_size=1, max_size=8), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_pipeline_never_slower_than_sequential(self, stages, batch):
        report = PipelineReport("x", tuple(stages), batch, 1.0)
        sequential = batch * report.fill_latency
        assert report.batch_latency <= sequential + 1e-15
        assert report.pipeline_speedup >= 1.0 - 1e-12

    @given(st.lists(positive_floats, min_size=2, max_size=8), st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_speedup_bounded_by_stage_count(self, stages, batch):
        report = PipelineReport("x", tuple(stages), batch, 1.0)
        assert report.pipeline_speedup <= len(stages) + 1e-9

    @given(st.lists(positive_floats, min_size=1, max_size=6), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_single_stage_pipeline_gains_nothing(self, stages, batch):
        report = PipelineReport("x", (stages[0],), batch, 1.0)
        assert report.pipeline_speedup == pytest.approx(1.0)
