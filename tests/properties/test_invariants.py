"""Cross-cutting property-based invariants.

These hypothesis suites tie the subsystems together: any valid layer
shape must satisfy the algorithm-equivalence, conservation and
performance-model sanity properties simultaneously.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.red_design import REDDesign
from repro.deconv.analysis import useful_mac_count
from repro.deconv.reference import conv_transpose2d
from repro.designs.padding_free_design import PaddingFreeDesign
from repro.designs.zero_padding_design import ZeroPaddingDesign
from tests.conftest import deconv_specs, random_operands


class TestAlgorithmTriangle:
    """All designs equal the reference, hence each other."""

    @given(deconv_specs(max_input=4, max_kernel=4, max_stride=3, max_channels=3))
    @settings(max_examples=25, deadline=None)
    def test_three_designs_agree(self, spec):
        x, w = random_operands(spec, seed=21)
        ref = conv_transpose2d(x, w, spec)
        for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign):
            out = design_cls(spec).run_functional(x, w).output
            np.testing.assert_allclose(out, ref, atol=1e-9)

    @given(deconv_specs(max_input=3, max_kernel=3, max_stride=3, max_channels=2))
    @settings(max_examples=10, deadline=None)
    def test_quantized_designs_agree_exactly(self, spec):
        rng = np.random.default_rng(31)
        x = rng.integers(0, 16, size=spec.input_shape)
        w = rng.integers(-7, 8, size=spec.kernel_shape)
        from repro.arch.tech import default_tech

        tech = default_tech().with_overrides(bits_input=4, bits_weight=4)
        outputs = [
            design_cls(spec, tech).run_quantized(x, w).output
            for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign)
        ]
        np.testing.assert_array_equal(outputs[0], outputs[1])
        np.testing.assert_array_equal(outputs[0], outputs[2])


class TestConservation:
    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_output_mass_conservation(self, spec):
        """Sum of outputs equals sum(x) kernel-weighted when nothing is
        clipped — checked on the padding-0 subcase where no tap leaves the
        output."""
        if spec.padding != 0 or spec.output_padding != 0:
            return
        x, w = random_operands(spec, seed=17)
        out = conv_transpose2d(x, w, spec)
        expected = np.einsum("yxc,ijcm->", x, w)
        np.testing.assert_allclose(out.sum(), expected, rtol=1e-8)

    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_useful_macs_shared_by_all_designs(self, spec):
        zp = ZeroPaddingDesign(spec).perf_input()
        pf = PaddingFreeDesign(spec).perf_input()
        red = REDDesign(spec).perf_input()
        assert zp.useful_macs == pf.useful_macs == red.useful_macs == useful_mac_count(spec)


class TestPerfSanity:
    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_all_metrics_positive(self, spec):
        for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign):
            metrics = design_cls(spec).evaluate("prop")
            assert metrics.latency.total > 0.0
            assert metrics.energy.total > 0.0
            assert metrics.area.total > 0.0

    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_array_area_identical(self, spec):
        areas = {
            design_cls(spec).evaluate("prop").area.computation
            for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign)
        }
        assert len(areas) == 1

    @given(deconv_specs(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_red_cycles_scale_with_fold(self, spec, fold):
        base = REDDesign(spec, fold=1)
        folded = REDDesign(spec, fold=fold)
        assert folded.cycles == fold * base.cycles

    @given(deconv_specs())
    @settings(max_examples=25, deadline=None)
    def test_red_never_more_cycles_than_zero_padding(self, spec):
        red = REDDesign(spec, fold=1)
        # Block grid is at most the output-pixel grid.
        assert red.cycles <= spec.num_output_pixels + spec.stride**2

    @given(deconv_specs())
    @settings(max_examples=20, deadline=None)
    def test_energy_breakdown_components_nonnegative(self, spec):
        for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign):
            energy = design_cls(spec).evaluate("prop").energy
            for name, value in energy.as_dict().items():
                assert value >= 0.0, name
