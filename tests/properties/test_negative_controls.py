"""Negative controls: breaking an assumption must break the result.

Equality tests alone can pass vacuously (e.g. if both sides were zero);
these controls verify the mechanisms are load-bearing by checking that
deliberate corruption produces detectable disagreement.
"""

import numpy as np
import pytest

from repro.core.mapping import build_sct
from repro.deconv.reference import conv2d_valid, conv_transpose2d, rotate_kernel_180
from repro.deconv.shapes import DeconvSpec
from repro.deconv.zero_padding import zero_insert_input
from tests.conftest import random_operands


@pytest.fixture
def spec():
    # Deliberately asymmetric kernel so rotation matters.
    return DeconvSpec(4, 3, 3, 3, 2, 4, stride=2, padding=1)


class TestRotationIsLoadBearing:
    def test_algorithm1_without_rotation_differs(self, spec):
        """Zero-padding + UNrotated kernel must not equal the reference."""
        x, w = random_operands(spec)
        padded = zero_insert_input(x, spec)
        wrong = conv2d_valid(padded, w)  # missing rot180
        right = conv_transpose2d(x, w, spec)
        assert not np.allclose(wrong, right)

    def test_rotation_matters_for_asymmetric_kernels(self, spec):
        _, w = random_operands(spec)
        assert not np.array_equal(rotate_kernel_180(w), w)


class TestMappingIsLoadBearing:
    def test_shuffled_sct_breaks_equality(self, spec):
        """Permuting sub-crossbars (violating Eq. 1) corrupts the output."""
        from repro.core.red_design import REDDesign

        x, w = random_operands(spec)
        sct = build_sct(w, spec)
        shuffled = sct.data[:, :, ::-1].copy()  # reverse tap order
        w_wrong = (
            shuffled.reshape(
                spec.in_channels, spec.out_channels,
                spec.kernel_height, spec.kernel_width,
            ).transpose(2, 3, 0, 1)
        )
        right = REDDesign(spec).run_functional(x, w).output
        wrong = REDDesign(spec).run_functional(x, np.ascontiguousarray(w_wrong)).output
        assert not np.allclose(wrong, right)

    def test_wrong_stride_changes_everything(self):
        base = DeconvSpec(4, 4, 2, 4, 4, 2, stride=2, padding=1)
        other = DeconvSpec(4, 4, 2, 4, 4, 2, stride=1, padding=1)
        x, w = random_operands(base)
        a = conv_transpose2d(x, w, base)
        b = conv_transpose2d(x, w, other)
        assert a.shape != b.shape


class TestGatingIsLoadBearing:
    def test_padded_vectors_really_sparse(self, spec, rng):
        """If zero insertion were skipped, the redundancy would vanish."""
        from repro.deconv.zero_padding import padded_input_vectors

        x = np.abs(rng.standard_normal(spec.input_shape)) + 1.0
        vectors = padded_input_vectors(x, spec)
        sparsity = 1.0 - np.count_nonzero(vectors) / vectors.size
        assert sparsity > 0.5  # the waste RED exists to remove

    def test_quantized_path_not_trivially_zero(self, spec):
        from repro.core.red_design import REDDesign
        from tests.conftest import integer_operands

        x, w = integer_operands(spec)
        out = REDDesign(spec).run_quantized(x, w).output
        assert np.abs(out).sum() > 0


class TestCalibrationIsLoadBearing:
    def test_zeroing_the_quadratic_term_breaks_pf_band(self):
        """The padding-free array-energy band depends on the quadratic
        wordline term; removing it must take the ratio out of band."""
        from repro.arch.tech import default_tech
        from repro.designs.padding_free_design import PaddingFreeDesign
        from repro.designs.zero_padding_design import ZeroPaddingDesign
        from repro.workloads.specs import get_layer

        layer = get_layer("GAN_Deconv1")
        flat = default_tech().with_overrides(e_wl_quad=0.0)
        pf = PaddingFreeDesign(layer.spec, flat).evaluate(layer.name)
        zp = ZeroPaddingDesign(layer.spec, flat).evaluate(layer.name)
        ratio = pf.energy.array / zp.energy.array
        assert ratio < 4.0  # out of the published 4.48-7.53 band

    def test_ungated_wordlines_break_red_similarity(self):
        """If zero-padding paid wordline energy on every selected row, its
        array energy would far exceed RED's (cf. DESIGN.md §3)."""
        from dataclasses import replace

        from repro.arch.metrics import energy_breakdown
        from repro.core.red_design import REDDesign
        from repro.designs.zero_padding_design import ZeroPaddingDesign
        from repro.workloads.specs import get_layer

        layer = get_layer("GAN_Deconv1")
        zp_perf = ZeroPaddingDesign(layer.spec).perf_input(layer.name)
        ungated = replace(
            zp_perf,
            live_row_cycles_total=float(
                zp_perf.rows_selected_per_cycle * zp_perf.cycles
            ),
        )
        red = REDDesign(layer.spec).evaluate(layer.name)
        zp_ungated = energy_breakdown(ungated)
        assert zp_ungated.array / red.energy.array > 2.0
