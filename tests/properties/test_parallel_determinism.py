"""Property-based determinism guarantees for the parallel sweep runner.

The contract from ISSUE-1: :func:`repro.eval.parallel.run_design_jobs`
returns *byte-identical* results (compared via pickle) for ``jobs=1`` vs
``jobs=4``, and on a warm cache vs a cold cache vs no cache at all.
"""

import pickle
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.eval.parallel import DesignJob, SweepCache, run_design_jobs
from repro.eval.sweeps import stride_speedup_sweep

DESIGNS = ("zero-padding", "padding-free", "RED")

_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def design_job_lists(draw):
    """Small, diverse job lists over the FCN kernel convention."""
    strides = draw(
        st.lists(st.sampled_from((1, 2, 3, 4)), min_size=1, max_size=3, unique=True)
    )
    channels = draw(st.sampled_from((2, 3, 5)))
    mux_share = draw(st.sampled_from((4, 8, 16)))
    tech = default_tech().with_overrides(mux_share=mux_share)
    jobs = []
    for s in strides:
        k = max(2 * s, 2)
        spec = DeconvSpec(
            input_height=3, input_width=3, in_channels=channels,
            kernel_height=k, kernel_width=k, out_channels=2,
            stride=s, padding=s // 2,
        )
        for design in DESIGNS:
            jobs.append(DesignJob(design, spec, tech, layer_name=f"s{s}-{design}"))
    return jobs


def _digest(results) -> tuple[bytes, ...]:
    """Canonical per-result serialization.

    Per-element rather than whole-list: pickle memoizes *shared object
    identity* (e.g. the interned design-name string appearing in several
    in-process results), so two lists of byte-identical elements can
    still differ at the list level depending on which process produced
    them.
    """
    return tuple(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL) for result in results
    )


class TestWorkerCountInvariance:
    @given(design_job_lists())
    @settings(**_SETTINGS)
    def test_jobs1_equals_jobs4(self, jobs):
        sequential = run_design_jobs(jobs, num_workers=1)
        parallel = run_design_jobs(jobs, num_workers=4, chunk_size=1)
        assert _digest(sequential) == _digest(parallel)

    @given(design_job_lists(), st.sampled_from((2, 3, 8)))
    @settings(**_SETTINGS)
    def test_chunk_size_is_irrelevant(self, jobs, chunk_size):
        a = run_design_jobs(jobs, num_workers=2, chunk_size=chunk_size)
        b = run_design_jobs(jobs, num_workers=1)
        assert _digest(a) == _digest(b)


class TestCacheInvariance:
    @given(design_job_lists())
    @settings(**_SETTINGS)
    def test_warm_cache_equals_cold_cache_equals_uncached(self, jobs):
        with tempfile.TemporaryDirectory() as directory:
            cache = SweepCache(directory)
            cold = run_design_jobs(jobs, cache=cache)
            assert cache.stores == len(jobs)
            warm = run_design_jobs(jobs, cache=cache)
            assert cache.hits >= len(jobs)
            uncached = run_design_jobs(jobs)
            assert _digest(cold) == _digest(warm) == _digest(uncached)

    @given(design_job_lists())
    @settings(**_SETTINGS)
    def test_parallel_workers_share_a_warm_cache(self, jobs):
        with tempfile.TemporaryDirectory() as directory:
            cold = run_design_jobs(jobs, num_workers=4, cache=directory)
            warm = run_design_jobs(jobs, num_workers=4, cache=directory)
            assert _digest(cold) == _digest(warm)


class TestSweepLevelDeterminism:
    def test_stride_sweep_identical_across_jobs_and_cache(self):
        strides = (1, 2, 4)
        baseline = stride_speedup_sweep(strides=strides)
        with tempfile.TemporaryDirectory() as directory:
            pooled = stride_speedup_sweep(strides=strides, jobs=4, cache=directory)
            cached = stride_speedup_sweep(strides=strides, jobs=4, cache=directory)
        assert _digest(baseline) == _digest(pooled) == _digest(cached)
