"""Tests for the workload network definitions."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.workloads.data import latent_batch
from repro.workloads.networks import (
    DCGANGenerator,
    FCN8sDecoder,
    ImprovedGANGenerator,
    SNGANGenerator,
    build_network,
)
from repro.workloads.specs import get_layer


class TestGenerators:
    def test_dcgan_output_is_64x64_rgb(self):
        gen = DCGANGenerator()
        out = gen(latent_batch(2, gen.latent_dim))
        assert out.shape == (2, 3, 64, 64)
        assert np.abs(out).max() <= 1.0  # tanh output

    def test_dcgan_benchmark_layer_matches_table1(self):
        layer = DCGANGenerator().benchmark_layer()
        spec = layer.deconv_spec(8, 8)
        assert spec.kernel_shape == get_layer("GAN_Deconv1").spec.kernel_shape
        assert spec.output_shape == get_layer("GAN_Deconv1").spec.output_shape

    def test_improved_gan_output_is_32x32(self):
        gen = ImprovedGANGenerator()
        assert gen(latent_batch(1, gen.latent_dim)).shape == (1, 3, 32, 32)

    def test_improved_gan_benchmark_layer(self):
        spec = ImprovedGANGenerator().benchmark_layer().deconv_spec(4, 4)
        assert spec.kernel_shape == get_layer("GAN_Deconv2").spec.kernel_shape
        assert spec.output_shape == get_layer("GAN_Deconv2").spec.output_shape

    def test_sngan_cifar_output(self):
        gen = SNGANGenerator(base_size=4)
        assert gen(latent_batch(1, gen.latent_dim)).shape == (1, 3, 32, 32)

    def test_sngan_stl_output(self):
        gen = SNGANGenerator(base_size=6)
        assert gen(latent_batch(1, gen.latent_dim)).shape == (1, 3, 48, 48)

    def test_sngan_benchmark_layers(self):
        cifar = SNGANGenerator(base_size=4).benchmark_layer().deconv_spec(4, 4)
        stl = SNGANGenerator(base_size=6).benchmark_layer().deconv_spec(6, 6)
        assert cifar.output_shape == get_layer("GAN_Deconv3").spec.output_shape
        assert stl.output_shape == get_layer("GAN_Deconv4").spec.output_shape

    def test_sngan_invalid_base_size(self):
        with pytest.raises(ParameterError):
            SNGANGenerator(base_size=5)

    def test_generators_deterministic_given_rng(self):
        a = DCGANGenerator(rng=np.random.default_rng(7))
        b = DCGANGenerator(rng=np.random.default_rng(7))
        z = latent_batch(1, 100)
        np.testing.assert_array_equal(a(z), b(z))


class TestFCN:
    def test_head_chain_16_to_568(self):
        head = FCN8sDecoder()
        score = np.random.default_rng(0).standard_normal((1, 21, 16, 16))
        out = head(score)
        assert out.shape == (1, 21, 568, 568)

    def test_benchmark_layers_match_table1(self):
        up2, up8 = FCN8sDecoder().benchmark_layers()
        assert up2.deconv_spec(16, 16).output_shape == get_layer("FCN_Deconv1").spec.output_shape
        assert up8.deconv_spec(70, 70).output_shape == get_layer("FCN_Deconv2").spec.output_shape

    def test_skip_fusion_path(self):
        head = FCN8sDecoder()
        rng = np.random.default_rng(1)
        fr = rng.standard_normal((1, 21, 16, 16))
        p4 = rng.standard_normal((1, 21, 40, 40))
        p3 = rng.standard_normal((1, 21, 80, 80))
        out = head.forward_scores(fr, p4, p3)
        assert out.shape == (1, 21, 568, 568)

    def test_bilinear_initialization(self):
        head = FCN8sDecoder()
        w = head.upscore2.weight
        # Diagonal channel structure; even 4x4 bilinear kernel peaks at
        # 0.75^2 = 0.5625 in its central 2x2 block.
        assert w[:, :, 0, 0].max() == pytest.approx(0.5625, abs=1e-12)
        assert not w[:, :, 0, 1].any()


class TestBuilder:
    def test_builds_all_table1_networks(self):
        for name in ("DCGAN", "Improved GAN", "SNGAN", "voc-fcn8s 2x", "voc-fcn8s 8x"):
            assert build_network(name) is not None

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            build_network("BigGAN")
