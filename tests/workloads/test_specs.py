"""Tests for the Table I benchmark specifications."""

import pytest

from repro.workloads.specs import get_layer, layer_names


EXPECTED_ROWS = {
    "GAN_Deconv1": ((8, 8, 512), (16, 16, 256), (5, 5, 512, 256), 2),
    "GAN_Deconv2": ((4, 4, 512), (8, 8, 256), (5, 5, 512, 256), 2),
    "GAN_Deconv3": ((4, 4, 512), (8, 8, 256), (4, 4, 512, 256), 2),
    "GAN_Deconv4": ((6, 6, 512), (12, 12, 256), (4, 4, 512, 256), 2),
    "FCN_Deconv1": ((16, 16, 21), (34, 34, 21), (4, 4, 21, 21), 2),
    "FCN_Deconv2": ((70, 70, 21), (568, 568, 21), (16, 16, 21, 21), 8),
}


class TestTableI:
    def test_six_layers_in_paper_order(self):
        assert layer_names() == list(EXPECTED_ROWS)

    @pytest.mark.parametrize("name", list(EXPECTED_ROWS))
    def test_layer_shapes_exact(self, name):
        layer = get_layer(name)
        inp, out, kernel, stride = EXPECTED_ROWS[name]
        assert layer.spec.input_shape == inp
        assert layer.spec.output_shape == out
        assert layer.spec.kernel_shape == kernel
        assert layer.spec.stride == stride

    def test_gan_fcn_classification(self):
        assert all(get_layer(n).is_gan for n in layer_names() if n.startswith("GAN"))
        assert all(get_layer(n).is_fcn for n in layer_names() if n.startswith("FCN"))

    def test_networks_and_datasets(self):
        assert get_layer("GAN_Deconv1").network == "DCGAN"
        assert get_layer("GAN_Deconv1").dataset == "LSUN"
        assert get_layer("GAN_Deconv3").network == "SNGAN"
        assert get_layer("FCN_Deconv2").dataset == "PASCAL VOC"

    def test_unknown_layer_raises(self):
        with pytest.raises(KeyError):
            get_layer("GAN_Deconv9")

    def test_table_row_format(self):
        row = get_layer("GAN_Deconv1").table_row()
        assert row[0] == "GAN_Deconv1"
        assert row[3] == "(8, 8, 512)"
        assert row[-1] == 2

    def test_padding_solutions(self):
        """Padding derived from Table I output sizes (PyTorch convention)."""
        assert get_layer("GAN_Deconv1").spec.padding == 2
        assert get_layer("GAN_Deconv1").spec.output_padding == 1
        assert get_layer("GAN_Deconv3").spec.padding == 1
        assert get_layer("FCN_Deconv1").spec.padding == 0
        assert get_layer("FCN_Deconv2").spec.padding == 0

    def test_fcn2_needs_256_sub_crossbars_unfolded(self):
        spec = get_layer("FCN_Deconv2").spec
        assert spec.num_kernel_taps == 256
        assert spec.stride**2 == 64
