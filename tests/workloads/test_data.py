"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.workloads.data import (
    feature_map_batch,
    latent_batch,
    layer_input,
    layer_kernel,
)
from repro.workloads.specs import get_layer


class TestLatents:
    def test_shape(self):
        assert latent_batch(4, 100).shape == (4, 100)

    def test_deterministic(self):
        np.testing.assert_array_equal(latent_batch(2, 8, seed=5), latent_batch(2, 8, seed=5))

    def test_different_seeds_differ(self):
        assert not np.array_equal(latent_batch(2, 8, seed=1), latent_batch(2, 8, seed=2))

    def test_rejects_bad_batch(self):
        with pytest.raises(ParameterError):
            latent_batch(0, 8)


class TestFeatureMaps:
    def test_nonneg_default(self):
        x = feature_map_batch(2, 3, 4, 4)
        assert x.min() >= 0.0

    def test_signed_option(self):
        x = feature_map_batch(2, 3, 16, 16, nonneg=False, seed=3)
        assert x.min() < 0.0

    def test_shape(self):
        assert feature_map_batch(2, 5, 6, 7).shape == (2, 5, 6, 7)


class TestLayerTensors:
    def test_layer_input_shape(self):
        layer = get_layer("GAN_Deconv3")
        assert layer_input(layer).shape == layer.spec.input_shape

    def test_layer_kernel_shape(self):
        layer = get_layer("GAN_Deconv3")
        assert layer_kernel(layer).shape == layer.spec.kernel_shape

    def test_accepts_raw_spec(self):
        spec = get_layer("FCN_Deconv1").spec
        assert layer_input(spec).shape == spec.input_shape

    def test_deterministic(self):
        layer = get_layer("GAN_Deconv3")
        np.testing.assert_array_equal(layer_input(layer, seed=2), layer_input(layer, seed=2))
