"""Tests for the complete workload networks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.workloads.full_networks import DCGANDiscriminator, FCN8s, gan_round_trip


class TestFCN8s:
    @pytest.fixture(scope="class")
    def net(self):
        return FCN8s(width=8, rng=np.random.default_rng(1))

    def test_output_matches_input_resolution(self, net):
        x = np.random.default_rng(0).standard_normal((1, 3, 32, 32))
        out = net(x)
        assert out.shape == (1, 21, 32, 32)

    def test_predict_classes(self, net):
        x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
        pred = net.predict(x)
        assert pred.shape == (1, 16, 16)
        assert pred.min() >= 0 and pred.max() < 21

    def test_rejects_unaligned_input(self, net):
        with pytest.raises(ShapeError):
            net(np.zeros((1, 3, 30, 30)))

    def test_deconvs_are_bilinear(self, net):
        w = net.upscore_final.weight
        assert not w[:, :, 0, 1].any()  # diagonal channel structure

    def test_contains_three_upsampling_stages(self, net):
        from repro.system.network_mapper import extract_deconv_layers

        layers = extract_deconv_layers(net, 4, 4)
        assert len(layers) == 3
        assert all(l.spec.stride == 2 for l in layers)

    def test_deterministic(self):
        a = FCN8s(width=8, rng=np.random.default_rng(7))
        b = FCN8s(width=8, rng=np.random.default_rng(7))
        x = np.random.default_rng(2).standard_normal((1, 3, 16, 16))
        np.testing.assert_array_equal(a(x), b(x))


class TestDiscriminator:
    def test_scores_in_unit_interval(self):
        disc = DCGANDiscriminator(rng=np.random.default_rng(3))
        x = np.random.default_rng(4).standard_normal((2, 3, 64, 64))
        scores = disc(x)
        assert scores.shape == (2,)
        assert (scores >= 0.0).all() and (scores <= 1.0).all()

    def test_rejects_wrong_resolution(self):
        disc = DCGANDiscriminator()
        with pytest.raises(ShapeError):
            disc(np.zeros((1, 3, 32, 32)))


class TestRoundTrip:
    def test_generator_discriminator_pair(self):
        images, scores = gan_round_trip(batch=1, seed=0)
        assert images.shape == (1, 3, 64, 64)
        assert np.abs(images).max() <= 1.0
        assert scores.shape == (1,)

    def test_deterministic(self):
        _, a = gan_round_trip(batch=1, seed=5)
        _, b = gan_round_trip(batch=1, seed=5)
        np.testing.assert_array_equal(a, b)
