"""The single-exception-type contract at the API boundary.

Every library-raised error derives from :class:`repro.errors.ReproError`,
so callers can wrap any entry point in one ``except ReproError`` clause.
"""

import numpy as np
import pytest

from repro.errors import (
    CalibrationError,
    DeviceError,
    MappingError,
    ParameterError,
    ReproError,
    ScheduleError,
    ShapeError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ShapeError, ParameterError, MappingError, ScheduleError, DeviceError, CalibrationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_also_catchable_as_valueerror(self):
        assert issubclass(ShapeError, ValueError)
        assert issubclass(ParameterError, ValueError)


class TestBoundaryCatches:
    def test_bad_spec_caught_as_repro_error(self):
        from repro.deconv.shapes import DeconvSpec

        with pytest.raises(ReproError):
            DeconvSpec(0, 4, 1, 3, 3, 1, stride=1)

    def test_bad_operands_caught_as_repro_error(self):
        from repro.core.red_design import REDDesign
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(2, 2, 2, 2, 2, 2, stride=2)
        with pytest.raises(ReproError):
            REDDesign(spec).run_functional(np.zeros((1, 1, 1)), np.zeros(spec.kernel_shape))

    def test_bad_device_caught_as_repro_error(self):
        from repro.reram.device import ReRAMDeviceParams

        with pytest.raises(ReproError):
            ReRAMDeviceParams(r_on=1e7, r_off=1e3)

    def test_bad_schedule_caught_as_repro_error(self):
        from repro.core.dataflow import red_cycle_count
        from repro.deconv.shapes import DeconvSpec

        with pytest.raises(ReproError):
            red_cycle_count(DeconvSpec(2, 2, 2, 2, 2, 2, stride=2), fold=0)

    def test_reference_alias_matches(self, rng):
        from repro.deconv.reference import conv_transpose2d, deconv_output_reference
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(3, 3, 2, 2, 2, 2, stride=2)
        x = rng.standard_normal(spec.input_shape)
        w = rng.standard_normal(spec.kernel_shape)
        np.testing.assert_array_equal(
            deconv_output_reference(x, w, spec), conv_transpose2d(x, w, spec)
        )
