"""Tests for the quantization algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ParameterError
from repro.nn.quantize import (
    QuantParams,
    dequantize_tensor,
    quantization_error,
    quantize_tensor,
    symmetric_quant_params,
)


class TestQuantParams:
    def test_signed_range(self):
        params = QuantParams(scale=1.0, zero_point=0, bits=8, signed=True)
        assert (params.qmin, params.qmax) == (-128, 127)

    def test_unsigned_range(self):
        params = QuantParams(scale=1.0, zero_point=0, bits=8, signed=False)
        assert (params.qmin, params.qmax) == (0, 255)

    def test_rejects_bad_scale(self):
        with pytest.raises(ParameterError):
            QuantParams(scale=0.0, zero_point=0, bits=8, signed=True)


class TestSymmetric:
    def test_scale_covers_peak(self, rng):
        x = rng.normal(size=(100,)) * 7.0
        params = symmetric_quant_params(x, bits=8)
        assert params.scale == pytest.approx(np.abs(x).max() / 127)

    def test_zero_tensor_gets_unit_scale(self):
        params = symmetric_quant_params(np.zeros(5), bits=8)
        assert params.scale == 1.0

    def test_integers_survive_round_trip(self, rng):
        """Integers within range quantize losslessly at scale 1."""
        x = rng.integers(-127, 128, size=(50,)).astype(np.float64)
        params = QuantParams(scale=1.0, zero_point=0, bits=8, signed=True)
        q = quantize_tensor(x, params)
        np.testing.assert_array_equal(dequantize_tensor(q, params), x)

    @given(arrays(np.float64, (20,), elements=st.floats(-100, 100)))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_error_bounded(self, x):
        params = symmetric_quant_params(x, bits=8)
        err = quantization_error(x, params)
        assert err <= params.scale  # RMS error below one step

    def test_saturation(self):
        params = QuantParams(scale=1.0, zero_point=0, bits=4, signed=True)
        q = quantize_tensor(np.array([100.0, -100.0]), params)
        np.testing.assert_array_equal(q, [7, -8])

    def test_error_decreases_with_bits(self, rng):
        x = rng.normal(size=(500,))
        errs = [
            quantization_error(x, symmetric_quant_params(x, bits=b))
            for b in (2, 4, 8, 12)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_unsigned_activations(self, rng):
        x = np.abs(rng.normal(size=(50,)))
        params = symmetric_quant_params(x, bits=8, signed=False)
        q = quantize_tensor(x, params)
        assert q.min() >= 0
        assert q.max() <= 255
