"""Tests for the NumPy NN functional ops."""

import numpy as np
import pytest

from repro.deconv.reference import conv_transpose2d as ref_deconv
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.nn import functional as F


class TestConv:
    def test_conv2d_batch_matches_per_sample(self, rng):
        x = rng.normal(size=(3, 2, 6, 6))
        w = rng.normal(size=(3, 3, 2, 4))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (3, 4, 6, 6)
        from repro.deconv.reference import conv2d as single

        for n in range(3):
            hwc = np.transpose(x[n], (1, 2, 0))
            expected = np.transpose(single(hwc, w, 1, 1), (2, 0, 1))
            np.testing.assert_allclose(out[n], expected, atol=1e-10)

    def test_conv2d_bias(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 3, 2, 5))
        bias = rng.normal(size=5)
        with_bias = F.conv2d(x, w, bias=bias, padding=1)
        without = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(with_bias - without, np.broadcast_to(bias.reshape(1, 5, 1, 1), with_bias.shape), atol=1e-12)

    def test_conv_transpose_matches_reference(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(4, 4, 3, 5))
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        spec = DeconvSpec(4, 4, 3, 4, 4, 5, stride=2, padding=1)
        for n in range(2):
            hwc = np.transpose(x[n], (1, 2, 0))
            expected = np.transpose(ref_deconv(hwc, w, spec), (2, 0, 1))
            np.testing.assert_allclose(out[n], expected, atol=1e-10)

    def test_conv_transpose_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            F.conv_transpose2d(rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(3, 3, 5, 2)))

    def test_non_4d_rejected(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(rng.normal(size=(2, 4, 4)), rng.normal(size=(3, 3, 2, 1)))


class TestActivations:
    def test_relu(self):
        x = np.array([[[[-1.0, 2.0]]]])
        np.testing.assert_array_equal(F.relu(x), [[[[0.0, 2.0]]]])

    def test_leaky_relu(self):
        x = np.array([[[[-10.0, 10.0]]]])
        out = F.leaky_relu(x, 0.2)
        np.testing.assert_allclose(out, [[[[-2.0, 10.0]]]])

    def test_tanh_range(self, rng):
        out = F.tanh(rng.normal(size=(2, 3, 4, 4)) * 10)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_sigmoid_at_zero(self):
        assert F.sigmoid(np.zeros((1, 1, 1, 1)))[0, 0, 0, 0] == pytest.approx(0.5)


class TestBatchNorm:
    def test_identity_params(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.batch_norm(x, np.zeros(3), np.ones(3), np.ones(3), np.zeros(3), eps=0.0)
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_normalizes_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 8, 8)) * 3.0 + 5.0
        mean = np.array([5.0, 5.0])
        var = np.array([9.0, 9.0])
        out = F.batch_norm(x, mean, var, np.ones(2), np.zeros(2), eps=0.0)
        assert abs(out.mean()) < 0.2
        assert abs(out.std() - 1.0) < 0.2

    def test_gamma_beta(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = F.batch_norm(x, np.zeros(1), np.ones(1), np.array([2.0]), np.array([3.0]), eps=0.0)
        np.testing.assert_allclose(out, 2.0 * x + 3.0, atol=1e-12)


class TestPooling:
    def test_max_pool_reduces(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        out = F.max_pool2d(x, kernel=2)
        assert out.shape == (1, 2, 4, 4)
        assert out[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_avg_pool_value(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(x, kernel=2)
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())

    def test_pool_with_stride(self, rng):
        x = rng.normal(size=(1, 1, 7, 7))
        out = F.max_pool2d(x, kernel=3, stride=2)
        assert out.shape == (1, 1, 3, 3)


class TestSoftmaxCrop:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(rng.normal(size=(2, 21, 4, 4)), axis=1)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(np.array([[[[1000.0]], [[999.0]]]]), axis=1)
        assert np.isfinite(out).all()

    def test_center_crop(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        out = F.center_crop(x, 4, 4)
        np.testing.assert_array_equal(out, x[:, :, 2:6, 2:6])

    def test_center_crop_too_large_raises(self, rng):
        with pytest.raises(ShapeError):
            F.center_crop(rng.normal(size=(1, 1, 4, 4)), 5, 5)
