"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.init import (
    bilinear_upsampling_kernel,
    dcgan_init,
    kaiming_init,
    normal_init,
    xavier_init,
)
from repro.nn.modules import BatchNorm2d, Conv2d, Sequential


class TestBilinearKernel:
    def test_diagonal_channel_mapping(self):
        w = bilinear_upsampling_kernel(4, 3, 3)
        assert w.shape == (4, 4, 3, 3)
        for c in range(3):
            for m in range(3):
                if c != m:
                    assert not w[:, :, c, m].any()

    def test_symmetric_filter(self):
        w = bilinear_upsampling_kernel(4, 1, 1)[:, :, 0, 0]
        np.testing.assert_allclose(w, w[::-1, ::-1])
        np.testing.assert_allclose(w, w.T)

    def test_odd_kernel_peak_at_center(self):
        w = bilinear_upsampling_kernel(5, 1, 1)[:, :, 0, 0]
        assert w[2, 2] == w.max() == pytest.approx(1.0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            bilinear_upsampling_kernel(4, 3, 5)

    def test_stride2_interpolation_property(self):
        """Deconvolving a constant map with the bilinear kernel stays constant
        away from borders (the defining property of interpolation)."""
        from repro.deconv.reference import conv_transpose2d
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(6, 6, 1, 4, 4, 1, stride=2, padding=1)
        x = np.ones(spec.input_shape)
        w = bilinear_upsampling_kernel(4, 1, 1)
        out = conv_transpose2d(x, w, spec)
        interior = out[3:-3, 3:-3, 0]
        np.testing.assert_allclose(interior, 1.0, atol=1e-12)


class TestStatInits:
    def test_dcgan_init_std(self):
        conv = Conv2d(64, 64, 5)
        dcgan_init(conv, rng=np.random.default_rng(0))
        assert conv.weight.std() == pytest.approx(0.02, rel=0.1)

    def test_normal_init_zeroes_bias(self):
        conv = Conv2d(4, 4, 3, bias=True)
        conv._parameters["bias"][...] = 1.0
        normal_init(conv)
        assert not conv.bias.any()

    def test_normal_init_preserves_running_stats(self):
        net = Sequential(Conv2d(2, 2, 3), BatchNorm2d(2))
        normal_init(net)
        bn = net[1]
        np.testing.assert_array_equal(bn._parameters["running_var"], np.ones(2))

    def test_kaiming_scales_with_fan_in(self):
        small = Conv2d(4, 8, 3)
        big = Conv2d(256, 8, 3)
        kaiming_init(small, rng=np.random.default_rng(1))
        kaiming_init(big, rng=np.random.default_rng(1))
        assert small.weight.std() > big.weight.std()

    def test_xavier_bounded(self):
        conv = Conv2d(8, 8, 3)
        xavier_init(conv, rng=np.random.default_rng(2))
        bound = np.sqrt(6.0 / (3 * 3 * 8 + 3 * 3 * 8))
        assert np.abs(conv.weight).max() <= bound
