"""Tests for the module system."""

import numpy as np
import pytest

from repro.errors import ParameterError, ShapeError
from repro.nn.modules import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Flatten,
    Identity,
    LeakyReLU,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


class TestRegistry:
    def test_parameters_depth_first(self):
        seq = Sequential(Conv2d(2, 3, 3), BatchNorm2d(3))
        names = [name for name, _ in seq.named_parameters()]
        assert "0.weight" in names
        assert "1.gamma" in names

    def test_num_parameters(self):
        conv = Conv2d(2, 3, 3, bias=True)
        assert conv.num_parameters() == 3 * 3 * 2 * 3 + 3

    def test_register_parameter_type_check(self):
        module = Module()
        with pytest.raises(ParameterError):
            module.register_parameter("w", [1, 2, 3])

    def test_add_module_type_check(self):
        module = Module()
        with pytest.raises(ParameterError):
            module.add_module("m", object())

    def test_attribute_children_registered(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = ReLU()

        net = Net()
        assert "layer" in net._children


class TestStateDict:
    def test_round_trip(self, rng):
        a = Conv2d(2, 3, 3, rng=rng)
        b = Conv2d(2, 3, 3, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(1, 2, 5, 5))
        np.testing.assert_array_equal(a(x), b(x))

    def test_missing_key_raises(self):
        a = Conv2d(2, 3, 3)
        state = a.state_dict()
        state.pop("weight")
        with pytest.raises(ParameterError):
            a.load_state_dict(state)

    def test_extra_key_raises(self):
        a = Conv2d(2, 3, 3)
        state = a.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(ParameterError):
            a.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        a = Conv2d(2, 3, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ShapeError):
            a.load_state_dict(state)

    def test_state_dict_is_copy(self):
        a = Conv2d(2, 3, 3)
        state = a.state_dict()
        state["weight"][...] = 0.0
        assert a.weight.any()


class TestLayers:
    def test_conv_output_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_deconv_output_shape(self, rng):
        deconv = ConvTranspose2d(8, 4, 4, stride=2, padding=1, rng=rng)
        out = deconv(rng.normal(size=(1, 8, 4, 4)))
        assert out.shape == (1, 4, 8, 8)

    def test_deconv_spec_builder(self):
        deconv = ConvTranspose2d(8, 4, 4, stride=2, padding=1)
        spec = deconv.deconv_spec(4, 4)
        assert spec.output_shape == (8, 8, 4)
        assert spec.kernel_shape == (4, 4, 8, 4)

    def test_sequential_composition(self, rng):
        net = Sequential(Conv2d(2, 4, 3, padding=1, rng=rng), ReLU())
        out = net(rng.normal(size=(1, 2, 5, 5)))
        assert out.min() >= 0.0
        assert len(net) == 2
        assert isinstance(net[1], ReLU)

    def test_identity_and_flatten(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(Identity()(x), x)
        assert Flatten()(x).shape == (2, 48)

    def test_elementwise_layers(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        assert Tanh()(x).max() <= 1.0
        assert Sigmoid()(x).min() >= 0.0
        assert LeakyReLU(0.1)(x).shape == x.shape

    def test_batchnorm_defaults_identityish(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(1, 3, 4, 4))
        np.testing.assert_allclose(bn(x), x, atol=1e-2)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ParameterError):
            Conv2d(0, 3, 3)
        with pytest.raises(ParameterError):
            ConvTranspose2d(2, 3, 3, stride=0)

    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(np.zeros(1))
