"""Tests for the counter set."""

import pytest

from repro.sim.counters import CounterSet


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("x")
        counters.add("x", 4)
        assert counters.get("x") == 5

    def test_missing_counter_is_zero(self):
        assert CounterSet().get("nothing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a.get("x") == 5
        assert a.get("y") == 1

    def test_iteration_sorted(self):
        counters = CounterSet()
        counters.add("b")
        counters.add("a")
        assert [name for name, _ in counters] == ["a", "b"]

    def test_contains(self):
        counters = CounterSet()
        counters.add("x")
        assert "x" in counters
        assert "y" not in counters

    def test_as_dict_snapshot(self):
        counters = CounterSet()
        counters.add("x")
        snap = counters.as_dict()
        counters.add("x")
        assert snap["x"] == 1
