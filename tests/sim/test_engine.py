"""Tests for the instrumented cycle engine."""

import numpy as np
import pytest

from repro.core.red_design import REDDesign
from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.sim.engine import CycleEngine
from tests.conftest import random_operands


class TestEngine:
    def test_output_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        run = CycleEngine(small_spec).run(x, w)
        np.testing.assert_allclose(
            run.output, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    def test_folded_output_matches(self):
        spec = DeconvSpec(3, 3, 4, 4, 4, 3, stride=2, padding=1)
        x, w = random_operands(spec)
        run = CycleEngine(spec, fold=2).run(x, w)
        np.testing.assert_allclose(run.output, conv_transpose2d(x, w, spec), atol=1e-10)

    def test_counters_match_design_counters(self, small_spec):
        """Engine observability agrees with REDDesign's own accounting."""
        x, w = random_operands(small_spec)
        design = REDDesign(small_spec)
        engine_run = CycleEngine(small_spec, fold=design.fold).run(x, w)
        design_run = design.run_cycle_accurate(x, w)
        assert engine_run.cycles == design_run.cycles
        assert engine_run.counters.get("sc_fire") == design_run.counters["sc_matvecs"]
        assert engine_run.counters.get("buffer_reads") == design_run.counters["buffer_reads"]

    def test_output_pixels_counter(self, small_spec):
        x, w = random_operands(small_spec)
        run = CycleEngine(small_spec).run(x, w)
        assert run.counters.get("output_pixels") == small_spec.num_output_pixels

    def test_trace_records_fires(self, small_spec):
        x, w = random_operands(small_spec)
        run = CycleEngine(small_spec).run(x, w)
        assert run.trace.count("sc_fire") == run.counters.get("sc_fire")

    def test_shape_validation(self, small_spec):
        x, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            CycleEngine(small_spec).run(x[..., :0], w)

    def test_live_rows_counter(self, small_spec):
        x, w = random_operands(small_spec)
        run = CycleEngine(small_spec).run(x, w)
        assert run.counters.get("live_rows") == (
            run.counters.get("sc_fire") * small_spec.in_channels
        )
