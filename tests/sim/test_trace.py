"""Tests for the execution trace."""

from repro.sim.trace import Trace


class TestTrace:
    def test_record_and_filter(self):
        trace = Trace()
        trace.record(0, "sc_fire", (1, 2))
        trace.record(0, "input_fetch", (3, 4))
        trace.record(1, "sc_fire", (5, 6))
        assert trace.count() == 3
        assert trace.count("sc_fire") == 2
        assert [e.cycle for e in trace.events("sc_fire")] == [0, 1]

    def test_bounded_eviction(self):
        trace = Trace(max_events=3)
        for i in range(5):
            trace.record(i, "e", (i,))
        assert len(trace) == 3
        assert [e.cycle for e in trace.events()] == [2, 3, 4]

    def test_event_str(self):
        trace = Trace()
        trace.record(7, "output_write", (1, 2, 3))
        text = str(next(trace.events()))
        assert "output_write" in text and "7" in text

    def test_detail_tuple_frozen(self):
        trace = Trace()
        trace.record(0, "e", [1, 2])
        event = next(trace.events())
        assert event.detail == (1, 2)
