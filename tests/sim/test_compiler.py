"""Tests for the analytic schedule compiler and its configurable LRU.

The load-bearing property: :func:`build_compiled_schedule` (closed-form
meshgrid construction) is event-for-event identical to
:func:`compile_schedule_via_walk`, which replays the scalar
:func:`walk_events` oracle — same counters, same tap-group ordering,
same row-major pixel/output ordering within every group.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fold import choose_fold
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from repro.sim.compiler import (
    build_compiled_schedule,
    clear_compiled_schedules,
    compile_schedule,
    compile_schedule_via_walk,
    configure_schedule_cache,
    schedule_cache_info,
    walk_events,
)
from tests.conftest import SMALL_SPECS, deconv_specs


@pytest.fixture
def fresh_cache():
    """Isolate a test from process-wide schedule-cache state.

    Not autouse: the hypothesis property tests below use only the
    uncached compile entry points, and a function-scoped fixture under
    ``@given`` would trip the function_scoped_fixture health check.
    """
    clear_compiled_schedules()
    configure_schedule_cache(64)
    yield
    clear_compiled_schedules()
    configure_schedule_cache(None)


def assert_schedules_identical(analytic, walked) -> None:
    """Granular version of ``CompiledSchedule.same_events`` (the
    canonical benchmark check, asserted last) for readable hypothesis
    failure output."""
    assert analytic.spec == walked.spec
    assert analytic.fold == walked.fold
    assert analytic.num_slots == walked.num_slots
    assert analytic.cycles == walked.cycles
    assert analytic.num_fires == walked.num_fires
    assert analytic.sc_idle == walked.sc_idle
    assert analytic.buffer_reads == walked.buffer_reads
    assert analytic.output_pixels == walked.output_pixels
    assert len(analytic.tap_groups) == len(walked.tap_groups)
    for got, expected in zip(analytic.tap_groups, walked.tap_groups):
        assert got.tap == expected.tap
        assert got.phys == expected.phys
        assert got.slot == expected.slot
        assert got.pixels.dtype == expected.pixels.dtype
        np.testing.assert_array_equal(got.pixels, expected.pixels)
        np.testing.assert_array_equal(got.outputs, expected.outputs)
    assert analytic.same_events(walked)


class TestAnalyticMatchesOracle:
    @pytest.mark.parametrize("fold", (1, 2, 3))
    def test_spec_zoo(self, small_spec, fold):
        assert_schedules_identical(
            build_compiled_schedule(small_spec, fold),
            compile_schedule_via_walk(small_spec, fold),
        )

    @given(
        spec=deconv_specs(max_input=6, max_kernel=6, max_stride=4),
        fold=st.integers(1, 6),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_randomized(self, spec, fold):
        assert_schedules_identical(
            build_compiled_schedule(spec, fold),
            compile_schedule_via_walk(spec, fold),
        )

    def test_auto_fold_under_tight_budget(self):
        for spec in SMALL_SPECS:
            fold = choose_fold(spec, max_sub_crossbars=4)
            assert_schedules_identical(
                build_compiled_schedule(spec, fold),
                compile_schedule_via_walk(spec, fold),
            )

    @given(spec=deconv_specs(max_input=5, max_kernel=5, max_stride=3))
    @settings(max_examples=30, deadline=None)
    def test_counts_match_raw_event_stream(self, spec):
        """The compiled counters literally count the oracle's events."""
        fold = 2
        kinds = {"fire": 0, "idle": 0, "fetch": 0, "write": 0}
        for event in walk_events(spec, fold):
            kinds[event[0]] += 1
        compiled = build_compiled_schedule(spec, fold)
        assert compiled.num_fires == kinds["fire"]
        assert compiled.sc_idle == kinds["idle"]
        assert compiled.buffer_reads == kinds["fetch"]
        assert compiled.output_pixels == kinds["write"]
        assert compiled.num_fires == sum(
            len(group.pixels) for group in compiled.tap_groups
        )

    def test_outputs_unique_within_group(self, small_spec):
        compiled = build_compiled_schedule(small_spec, 1)
        for group in compiled.tap_groups:
            assert len(np.unique(group.outputs)) == len(group.outputs)

    def test_invalid_fold_rejected(self, small_spec):
        with pytest.raises(ParameterError):
            build_compiled_schedule(small_spec, 0)


@pytest.mark.usefixtures("fresh_cache")
class TestScheduleCache:
    def test_hit_and_miss_accounting(self):
        spec = SMALL_SPECS[0]
        compile_schedule(spec, 1)
        first = schedule_cache_info()
        assert first.misses == 1 and first.hits == 0
        assert compile_schedule(spec, 1) is compile_schedule(spec, 1)
        info = schedule_cache_info()
        assert info.hits == 2
        assert info.size == 1

    def test_capacity_evicts_least_recently_used(self):
        configure_schedule_cache(2)
        a, b, c = SMALL_SPECS[0], SMALL_SPECS[1], SMALL_SPECS[2]
        first = compile_schedule(a, 1)
        compile_schedule(b, 1)
        assert compile_schedule(a, 1) is first  # refresh a; b is now LRU
        compile_schedule(c, 1)  # evicts b
        resident = {(entry.spec, entry.fold) for entry in schedule_cache_info().entries}
        assert resident == {(a, 1), (c, 1)}
        assert compile_schedule(a, 1) is first

    def test_shrinking_capacity_trims_entries(self):
        for spec in SMALL_SPECS[:4]:
            compile_schedule(spec, 1)
        assert schedule_cache_info().size == 4
        assert configure_schedule_cache(1) == 1
        assert schedule_cache_info().size == 1

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("RED_SCHEDULE_CACHE", "3")
        assert configure_schedule_cache(None) == 3
        assert schedule_cache_info().capacity == 3

    def test_env_capacity_invalid(self, monkeypatch):
        monkeypatch.setenv("RED_SCHEDULE_CACHE", "many")
        with pytest.raises(ParameterError):
            configure_schedule_cache(None)
        monkeypatch.setenv("RED_SCHEDULE_CACHE", "0")
        with pytest.raises(Exception):
            configure_schedule_cache(None)

    def test_keyword_capacity_validated(self):
        with pytest.raises(Exception):
            configure_schedule_cache(0)

    def test_per_entry_footprint(self):
        spec = SMALL_SPECS[2]
        compiled = compile_schedule(spec, 1)
        info = schedule_cache_info()
        (entry,) = info.entries
        assert entry.spec == spec and entry.fold == 1
        expected = sum(
            group.pixels.nbytes + group.outputs.nbytes
            for group in compiled.tap_groups
        )
        assert entry.nbytes == compiled.nbytes == expected > 0
        assert info.total_nbytes == expected

    def test_clear_releases_everything(self):
        compile_schedule(SMALL_SPECS[0], 1)
        clear_compiled_schedules()
        info = schedule_cache_info()
        assert info.size == 0 and info.hits == 0 and info.misses == 0


class TestLargeLayerSpotChecks:
    """Closed-form counters on shapes too big for the event-walk tests."""

    def test_fcn_stride8_folded(self):
        spec = DeconvSpec(8, 8, 4, 16, 16, 4, stride=8, padding=0)
        assert_schedules_identical(
            build_compiled_schedule(spec, 2),
            compile_schedule_via_walk(spec, 2),
        )

    def test_output_pixels_always_cover_the_output(self, small_spec):
        compiled = build_compiled_schedule(small_spec, 1)
        assert compiled.output_pixels == small_spec.num_output_pixels
        covered = np.concatenate(
            [group.outputs for group in compiled.tap_groups]
        ) if compiled.tap_groups else np.array([], dtype=np.intp)
        # Every written pixel index is a valid flat output coordinate.
        assert covered.size == 0 or (
            covered.min() >= 0 and covered.max() < small_spec.num_output_pixels
        )
