"""Equivalence tests: the batch engine vs per-job CycleEngine runs.

The ISSUE-1 contract: ``BatchEngine`` outputs, cycle counts and counters
must match per-job :class:`~repro.sim.engine.CycleEngine` runs *exactly*
(bit-identical outputs, equal counter dicts) across strides 1-4 and
folds ``{1, 'auto'}``.  Since ISSUE-3 the default path executes jobs
*fused* — same-``(spec, fold)`` jobs stacked into one batched matmul per
kernel tap — so these tests now gate the fused executor's float64
bit-identity; the float32 option is tolerance-tested separately.
"""

import numpy as np
import pytest

from repro.core.fold import choose_fold
from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError, ShapeError
from repro.sim.batch import BatchEngine, BatchJob
from repro.sim.engine import CycleEngine
from tests.conftest import random_operands


def spec_for_stride(stride: int) -> DeconvSpec:
    """FCN-convention layer (K = 2s, p = s//2) at a small input size."""
    k = max(2 * stride, 2)
    return DeconvSpec(
        input_height=4, input_width=4, in_channels=3,
        kernel_height=k, kernel_width=k, out_channels=2,
        stride=stride, padding=stride // 2,
    )


STRIDES = (1, 2, 3, 4)


class TestBatchEquivalence:
    @pytest.mark.parametrize("fold", (1, "auto"))
    def test_matches_cycle_engine_exactly(self, fold):
        jobs = [
            BatchJob(spec_for_stride(s), fold=fold, seed=100 + s) for s in STRIDES
        ]
        engine = BatchEngine()
        batch = engine.run(jobs)
        assert batch.num_jobs == len(jobs)
        for job, result in zip(jobs, batch.results):
            x, w = engine.operands_for(job)
            reference = CycleEngine(job.spec, fold=result.fold).run(x, w)
            assert result.cycles == reference.cycles
            assert result.counters == reference.counters.as_dict()
            np.testing.assert_array_equal(result.output, reference.output)

    @pytest.mark.parametrize("stride", STRIDES)
    def test_auto_fold_resolution_matches_design_rule(self, stride):
        job = BatchJob(spec_for_stride(stride), fold="auto")
        result = BatchEngine(max_sub_crossbars=4).run([job]).results[0]
        assert result.fold == choose_fold(job.spec, 4)

    def test_explicit_operands_match_reference_math(self):
        spec = spec_for_stride(2)
        x, w = random_operands(spec, seed=7)
        batch = BatchEngine().run([BatchJob(spec, fold=2)], operands=[(x, w)])
        np.testing.assert_allclose(
            batch.results[0].output, conv_transpose2d(x, w, spec), atol=1e-10
        )

    def test_jobs_sharing_a_spec_reuse_one_schedule(self):
        """Same (spec, fold) twice: identical cycles/counters, distinct data."""
        spec = spec_for_stride(2)
        batch = BatchEngine().run(
            [BatchJob(spec, fold=1, seed=0), BatchJob(spec, fold=1, seed=1)]
        )
        first, second = batch.results
        assert first.cycles == second.cycles
        assert first.counters == second.counters
        assert not np.array_equal(first.output, second.output)

    def test_deterministic_across_runs(self):
        jobs = [BatchJob(spec_for_stride(s), fold="auto", seed=s) for s in STRIDES]
        a = BatchEngine().run(jobs)
        b = BatchEngine().run(jobs)
        for ra, rb in zip(a.results, b.results):
            np.testing.assert_array_equal(ra.output, rb.output)
            assert ra.counters == rb.counters

    def test_interleaved_groups_keep_job_order(self):
        """Fused grouping must not reorder results: jobs of two shapes
        interleaved come back in submission order, each bit-identical to
        its own per-job engine run."""
        spec_a, spec_b = spec_for_stride(2), spec_for_stride(3)
        jobs = [
            BatchJob(spec_a, seed=0), BatchJob(spec_b, seed=1),
            BatchJob(spec_a, seed=2), BatchJob(spec_b, seed=3),
            BatchJob(spec_a, seed=4),
        ]
        engine = BatchEngine()
        batch = engine.run(jobs)
        for job, result in zip(jobs, batch.results):
            assert result.job is job
            x, w = engine.operands_for(job)
            reference = CycleEngine(job.spec, fold=result.fold).run(x, w)
            np.testing.assert_array_equal(result.output, reference.output)

    def test_traced_fallback_matches_fused_results(self):
        """trace_limit > 0 takes the per-job path; same numbers out."""
        jobs = [BatchJob(spec_for_stride(2), seed=s) for s in (0, 1)]
        fused = BatchEngine().run(jobs)
        traced = BatchEngine(trace_limit=1000).run(jobs)
        for rf, rt in zip(fused.results, traced.results):
            np.testing.assert_array_equal(rf.output, rt.output)
            assert rf.counters == rt.counters
            assert rf.cycles == rt.cycles


class TestExecutionDtype:
    def test_float32_within_single_precision_tolerance(self):
        jobs = [BatchJob(spec_for_stride(s), seed=s) for s in STRIDES]
        exact = BatchEngine().run(jobs)
        approx = BatchEngine(dtype=np.float32).run(jobs)
        for re, ra in zip(exact.results, approx.results):
            assert ra.output.dtype == np.float32
            np.testing.assert_allclose(
                ra.output, re.output, rtol=1e-4, atol=1e-4
            )
            # Schedule-level observables are dtype-independent.
            assert ra.cycles == re.cycles
            assert ra.counters == re.counters

    def test_float64_is_default_and_bit_identical(self):
        job = BatchJob(spec_for_stride(2), seed=9)
        engine = BatchEngine()
        assert engine.dtype == np.float64
        x, w = engine.operands_for(job)
        np.testing.assert_array_equal(
            engine.run([job]).results[0].output,
            CycleEngine(job.spec, fold=1).run(x, w).output,
        )

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ParameterError):
            BatchEngine(dtype=np.int32)

    def test_float32_with_tracing_rejected(self):
        """The traced fallback is float64-only; don't silently ignore."""
        with pytest.raises(ParameterError):
            BatchEngine(dtype=np.float32, trace_limit=100)

    def test_fused_outputs_own_their_memory(self):
        """Keeping one job's output must not pin the whole group arena."""
        results = BatchEngine().run(
            [BatchJob(spec_for_stride(2), seed=s) for s in range(3)]
        ).results
        for result in results:
            assert result.output.base is None


class TestBatchAggregates:
    def test_total_cycles_is_job_sum(self):
        jobs = [BatchJob(spec_for_stride(s)) for s in STRIDES]
        batch = BatchEngine().run(jobs)
        assert batch.total_cycles == sum(r.cycles for r in batch.results)

    def test_merged_counters_sum_per_job_counters(self):
        jobs = [BatchJob(spec_for_stride(s), seed=s) for s in (1, 2)]
        batch = BatchEngine().run(jobs)
        merged = batch.merged_counters()
        for name in ("sc_fire", "buffer_reads", "output_pixels"):
            assert merged.get(name) == sum(
                r.counters.get(name, 0) for r in batch.results
            )

    def test_summary_fields(self):
        batch = BatchEngine().run([BatchJob(spec_for_stride(2))])
        summary = batch.summary()
        assert summary["jobs"] == 1
        assert summary["total_cycles"] == batch.total_cycles
        assert summary["mean_cycles_per_job"] == batch.total_cycles
        assert summary["sc_fires"] > 0

    def test_summary_reports_grouping_efficiency(self):
        """Fold distribution and per-group job counts (ISSUE-3)."""
        spec_a, spec_b = spec_for_stride(2), spec_for_stride(3)
        batch = BatchEngine().run(
            [
                BatchJob(spec_a, fold=1, seed=0),
                BatchJob(spec_a, fold=1, seed=1),
                BatchJob(spec_a, fold=2, seed=2),
                BatchJob(spec_b, fold=1, seed=3),
            ]
        )
        summary = batch.summary()
        assert summary["fold_distribution"] == {1: 3, 2: 1}
        assert summary["num_groups"] == 3
        assert summary["group_sizes"] == [2, 1, 1]
        assert summary["mean_jobs_per_group"] == pytest.approx(4 / 3)
        assert batch.group_sizes() == {
            (spec_a, 1): 2,
            (spec_a, 2): 1,
            (spec_b, 1): 1,
        }


class TestBatchValidation:
    def test_empty_jobs_rejected(self):
        with pytest.raises(ParameterError):
            BatchEngine().run([])

    def test_operand_count_mismatch_rejected(self):
        spec = spec_for_stride(1)
        x, w = random_operands(spec)
        with pytest.raises(ShapeError):
            BatchEngine().run(
                [BatchJob(spec), BatchJob(spec)], operands=[(x, w)]
            )

    def test_bad_fold_rejected(self):
        with pytest.raises(ParameterError):
            BatchEngine().run([BatchJob(spec_for_stride(1), fold=0)])

    def test_wrong_operand_shapes_rejected(self):
        spec = spec_for_stride(2)
        x, w = random_operands(spec)
        with pytest.raises(ShapeError):
            BatchEngine().run([BatchJob(spec)], operands=[(x[:-1], w)])
        with pytest.raises(ShapeError):
            BatchEngine().run([BatchJob(spec)], operands=[(x, w[..., :-1])])

    def test_trace_disabled_on_hot_path_by_default(self):
        spec = spec_for_stride(2)
        batch = BatchEngine().run([BatchJob(spec)])
        # Counters are exact even with the trace disabled.
        run = CycleEngine(spec, fold=1).run(*BatchEngine().operands_for(BatchJob(spec)))
        assert batch.results[0].counters == run.counters.as_dict()
        assert run.trace.count("sc_fire") == run.counters.get("sc_fire")
