"""Tests for the command-line interface."""

import json

import pytest

from repro.api.schema import SCHEMA_VERSION, payload_from_dict
from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "GAN_Deconv1" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Shift Adder" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "86.78%" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "saving" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "FCN_Deconv2" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "fold" in out and "128" in out

    def test_network_default(self, capsys):
        assert main(["network"]) == 0
        out = capsys.readouterr().out
        assert "SNGAN" in out and "RED" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "published" in out and "measured" in out

    def test_mechanism(self, capsys):
        assert main(["mechanism"]) == 0
        out = capsys.readouterr().out
        assert "mode (1,1)" in out
        assert "zero redundancy" in out

    def test_report_contains_everything(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        for token in ("Table I", "Table II", "Fig. 4", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert token in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonOutput:
    """Every subcommand emits a versioned payload that round-trips."""

    @pytest.mark.parametrize(
        "command",
        ("table1", "table2", "fig4", "fig7", "fig8", "fig9",
         "tradeoff", "compare", "mechanism", "sweep", "network"),
    )
    def test_json_round_trips(self, capsys, command):
        assert main([command, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        rebuilt = payload_from_dict(payload)
        assert json.loads(json.dumps(rebuilt.to_dict())) == payload

    def test_sweep_json_is_a_sweep_result(self, capsys):
        assert main(["sweep", "--json", "--strides", "1,2,4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sweep_result"
        assert [p["stride"] for p in payload["points"]] == [1, 2, 4]

    def test_network_json_is_a_network_result(self, capsys):
        assert main(["network", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "network_result"
        assert payload["network"] == "SNGAN"
        assert {s["design"] for s in payload["summaries"]} == {
            "zero-padding", "padding-free", "RED",
        }

    def test_grid_json_carries_structured_results(self, capsys):
        assert main(["fig7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "command_result"
        layers = [r["layer"] for r in payload["results"]]
        assert "GAN_Deconv1" in layers and "FCN_Deconv2" in layers
        # The rendered text rides along, so --json output is lossless.
        assert "speedup" in payload["text"]

    def test_text_output_has_no_json(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "schema_version" not in out


class TestErrorBoundary:
    """ReproError surfaces as exit 2: one stderr line, or an ErrorInfo."""

    def test_unknown_network_exits_two_with_one_line(self, capsys):
        assert main(["network", "no-such-network"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("repro network: error:")
        assert "no-such-network" in lines[0]

    def test_json_error_envelope(self, capsys):
        assert main(["network", "no-such-network", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "error_info"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["error_type"] == "SchemaError"
        assert payload["source"] == "network"
        assert payload["retryable"] is False
        rebuilt = payload_from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_bad_sweep_strides_exit_two(self, capsys):
        assert main(["sweep", "--strides", "0,2"]) == 2
        err = capsys.readouterr().err
        assert "repro sweep: error:" in err

    def test_non_repro_errors_still_propagate(self):
        # Only ReproError is the CLI's to translate; anything else is a
        # bug and must surface as a traceback, not a tidy envelope.
        with pytest.raises(SystemExit):
            main(["network", "--bogus-flag"])
