"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "GAN_Deconv1" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Shift Adder" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "86.78%" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "saving" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "FCN_Deconv2" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff"]) == 0
        out = capsys.readouterr().out
        assert "fold" in out and "128" in out

    def test_network_default(self, capsys):
        assert main(["network"]) == 0
        out = capsys.readouterr().out
        assert "SNGAN" in out and "RED" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "published" in out and "measured" in out

    def test_mechanism(self, capsys):
        assert main(["mechanism"]) == 0
        out = capsys.readouterr().out
        assert "mode (1,1)" in out
        assert "zero redundancy" in out

    def test_report_contains_everything(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        for token in ("Table I", "Table II", "Fig. 4", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert token in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
