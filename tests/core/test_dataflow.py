"""Tests for the zero-skipping data flow (Fig. 5c)."""

import pytest
from hypothesis import given, settings

from repro.core.dataflow import ZeroSkippingSchedule, red_cycle_count
from repro.deconv.shapes import DeconvSpec
from repro.errors import ScheduleError
from tests.conftest import deconv_specs


class TestCycleCount:
    def test_paper_example_4x_parallelism(self):
        """GAN-style stride-2: OH*OW/4 rounds (Fig. 5c)."""
        spec = DeconvSpec(8, 8, 4, 5, 5, 4, stride=2, padding=2, output_padding=1)
        assert spec.output_height == 16
        assert red_cycle_count(spec) == 64 == spec.num_output_pixels // 4

    def test_fcn2_folded_round_count(self):
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        assert red_cycle_count(spec, fold=2) == 2 * 71 * 71

    def test_fold_multiplies_rounds(self, small_spec):
        assert red_cycle_count(small_spec, 2) == 2 * red_cycle_count(small_spec, 1)

    def test_rejects_bad_fold(self, small_spec):
        with pytest.raises(ScheduleError):
            red_cycle_count(small_spec, 0)

    @given(deconv_specs())
    @settings(max_examples=40, deadline=None)
    def test_round_count_bounds(self, spec):
        rounds = red_cycle_count(spec)
        s = spec.stride
        blocks_y = -(-spec.output_height // s)
        blocks_x = -(-spec.output_width // s)
        assert rounds == blocks_y * blocks_x
        # Each block dimension is the tight ceiling of output/stride.
        assert s * (blocks_y - 1) < spec.output_height <= s * blocks_y
        assert s * (blocks_x - 1) < spec.output_width <= s * blocks_x


class TestSchedule:
    def test_every_output_produced_exactly_once(self, small_spec):
        ZeroSkippingSchedule(small_spec).coverage_check()

    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_coverage_property(self, spec):
        ZeroSkippingSchedule(spec).coverage_check()

    def test_assignments_reference_valid_pixels(self, small_spec):
        schedule = ZeroSkippingSchedule(small_spec)
        for slot in schedule.cycles():
            for (kh, kw), (ih, iw) in slot.assignments.items():
                assert 0 <= kh < small_spec.kernel_height
                assert 0 <= kw < small_spec.kernel_width
                assert 0 <= ih < small_spec.input_height
                assert 0 <= iw < small_spec.input_width

    def test_assignments_satisfy_scatter_relation(self, small_spec):
        """Tap (kh,kw) with pixel (ih,iw) must land on this block's output."""
        s, p = small_spec.stride, small_spec.padding
        schedule = ZeroSkippingSchedule(small_spec)
        for slot in schedule.cycles():
            outputs = {(oy, ox) for oy, ox, _ in slot.outputs}
            for (kh, kw), (ih, iw) in slot.assignments.items():
                oy, ox = s * ih + kh - p, s * iw + kw - p
                assert (oy, ox) in outputs

    def test_sub_crossbar_used_at_most_once_per_cycle(self, small_spec):
        schedule = ZeroSkippingSchedule(small_spec)
        for slot in schedule.cycles():
            taps = list(slot.assignments)
            assert len(taps) == len(set(taps))

    def test_num_blocks(self):
        spec = DeconvSpec(16, 16, 2, 4, 4, 2, stride=2, padding=0)
        schedule = ZeroSkippingSchedule(spec)
        assert schedule.num_blocks == (17, 17)  # output 34x34

    def test_out_of_range_block_rejected(self, small_spec):
        schedule = ZeroSkippingSchedule(small_spec)
        by, bx = schedule.num_blocks
        with pytest.raises(ScheduleError):
            schedule.cycle(by, 0)

    def test_distinct_inputs_bounded_by_taps(self, small_spec):
        schedule = ZeroSkippingSchedule(small_spec)
        for slot in schedule.cycles():
            assert len(slot.distinct_inputs) <= small_spec.num_kernel_taps

    def test_outputs_per_cycle_at_most_stride_squared(self, small_spec):
        schedule = ZeroSkippingSchedule(small_spec)
        for slot in schedule.cycles():
            assert len(slot.outputs) <= small_spec.stride**2
