"""Tests for the RED accelerator design."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.red_design import REDDesign
from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from tests.conftest import deconv_specs, integer_operands, random_operands


class TestFunctionalEquivalence:
    def test_fast_path_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        run = REDDesign(small_spec).run_functional(x, w)
        np.testing.assert_allclose(
            run.output, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    def test_cycle_accurate_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        run = REDDesign(small_spec).run_cycle_accurate(x, w)
        np.testing.assert_allclose(
            run.output, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    @pytest.mark.parametrize("fold", [1, 2, 4])
    def test_folded_execution_exact(self, fold):
        spec = DeconvSpec(3, 3, 4, 4, 4, 3, stride=2, padding=1)
        x, w = random_operands(spec)
        run = REDDesign(spec, fold=fold).run_cycle_accurate(x, w)
        np.testing.assert_allclose(run.output, conv_transpose2d(x, w, spec), atol=1e-10)

    @given(deconv_specs())
    @settings(max_examples=25, deadline=None)
    def test_cycle_accurate_property(self, spec):
        x, w = random_operands(spec, seed=13)
        run = REDDesign(spec).run_cycle_accurate(x, w)
        np.testing.assert_allclose(run.output, conv_transpose2d(x, w, spec), atol=1e-10)

    def test_quantized_exact(self):
        spec = DeconvSpec(3, 3, 4, 4, 4, 3, stride=2, padding=1)
        x, w = integer_operands(spec)
        run = REDDesign(spec).run_quantized(x, w)
        expected = conv_transpose2d(x.astype(float), w.astype(float), spec)
        np.testing.assert_array_equal(run.output, expected.astype(np.int64))

    def test_quantized_folded_exact(self):
        spec = DeconvSpec(2, 2, 3, 4, 4, 2, stride=2, padding=1)
        x, w = integer_operands(spec)
        run = REDDesign(spec, fold=2).run_quantized(x, w)
        expected = conv_transpose2d(x.astype(float), w.astype(float), spec)
        np.testing.assert_array_equal(run.output, expected.astype(np.int64))


class TestGeometry:
    def test_auto_fold_fcn2(self):
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        design = REDDesign(spec)
        assert design.fold == 2
        assert design.num_physical_scs == 128
        assert design.cycles == 2 * 71 * 71

    def test_gan_unfolded(self):
        spec = DeconvSpec(8, 8, 8, 5, 5, 8, stride=2, padding=2, output_padding=1)
        design = REDDesign(spec)
        assert design.fold == 1
        assert design.num_physical_scs == 25
        assert design.cycles == 64

    def test_parallelism(self):
        spec = DeconvSpec(8, 8, 8, 5, 5, 8, stride=2, padding=2, output_padding=1)
        assert REDDesign(spec).parallel_outputs_per_round == 4.0
        assert REDDesign(spec, fold=2).parallel_outputs_per_round == 2.0

    def test_invalid_fold_rejected(self, small_spec):
        with pytest.raises(ParameterError):
            REDDesign(small_spec, fold=0)
        with pytest.raises(ParameterError):
            REDDesign(small_spec, fold="half")

    def test_measured_cycles_match_perf_model(self, small_spec):
        design = REDDesign(small_spec)
        x, w = random_operands(small_spec)
        run = design.run_cycle_accurate(x, w)
        assert run.cycles == design.perf_input().cycles == design.cycles


class TestPerfInput:
    def test_sub_crossbar_rows(self, small_spec):
        perf = REDDesign(small_spec).perf_input("unit")
        assert perf.rows_selected_per_cycle >= (
            small_spec.num_kernel_taps * small_spec.in_channels
        )
        assert perf.wordline_cols == small_spec.out_channels

    def test_broadcast_instances_equal_physical_scs(self, small_spec):
        design = REDDesign(small_spec)
        perf = design.perf_input()
        assert perf.broadcast_instances == design.num_physical_scs
        assert perf.row_bank_instances == design.num_physical_scs

    def test_live_rows_match_zero_padding(self, small_spec):
        """The 'similar array energy' invariant: live WL activity equals
        the zero-padding design's."""
        from repro.designs.zero_padding_design import ZeroPaddingDesign

        red = REDDesign(small_spec).perf_input()
        zp = ZeroPaddingDesign(small_spec).perf_input()
        assert red.live_row_cycles_total == pytest.approx(zp.live_row_cycles_total)

    def test_conversions_match_zero_padding_totals(self, small_spec):
        """Mode groups share ADCs: total conversions equal ZP's when the
        kernel covers all modes and no folding is needed."""
        from repro.designs.zero_padding_design import ZeroPaddingDesign

        if small_spec.kernel_height < small_spec.stride:
            pytest.skip("kernel smaller than stride leaves empty modes")
        red = REDDesign(small_spec, fold=1).perf_input()
        zp = ZeroPaddingDesign(small_spec).perf_input()
        red_total = red.cycles * red.conv_values_per_cycle
        zp_total = zp.cycles * zp.conv_values_per_cycle
        # Equal up to block-grid rounding: RED converts per block even for
        # border blocks whose trailing phases fall outside the output.
        s = small_spec.stride
        ceiling = red.cycles * s * s * small_spec.out_channels
        assert zp_total <= red_total <= ceiling

    def test_fold_halves_conversion_rate(self):
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        unfolded = REDDesign(spec, fold=1).perf_input()
        folded = REDDesign(spec, fold=2).perf_input()
        assert folded.conv_values_per_cycle == pytest.approx(
            unfolded.conv_values_per_cycle / 2
        )


class TestCounters:
    def test_buffer_reads_bounded_by_input_reuse(self, small_spec):
        x, w = random_operands(small_spec)
        run = REDDesign(small_spec).run_cycle_accurate(x, w)
        blocks = run.cycles // REDDesign(small_spec).fold
        assert run.counters["buffer_reads"] <= blocks * small_spec.num_kernel_taps

    def test_sc_matvec_count_equals_live_assignments(self, small_spec):
        x, w = random_operands(small_spec)
        design = REDDesign(small_spec)
        run = design.run_cycle_accurate(x, w)
        from repro.core.dataflow import ZeroSkippingSchedule

        expected = sum(
            len(slot.assignments) for slot in ZeroSkippingSchedule(small_spec).cycles()
        )
        assert run.counters["sc_matvecs"] == expected
