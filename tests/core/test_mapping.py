"""Tests for the pixel-wise mapping (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.mapping import build_sct, kernel_from_sct
from repro.errors import MappingError, ShapeError
from tests.conftest import deconv_specs, random_operands


class TestEq1:
    def test_equation_1_literally(self, small_spec):
        """SCT[c, m, i*KW + j] == W[i, j, c, m] for every index."""
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        kw_count = small_spec.kernel_width
        for i in range(small_spec.kernel_height):
            for j in range(kw_count):
                np.testing.assert_array_equal(
                    sct.data[:, :, i * kw_count + j], w[i, j, :, :]
                )

    def test_sub_crossbar_shape(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        sub = sct.sub_crossbar(0, 0)
        assert sub.shape == (small_spec.in_channels, small_spec.out_channels)

    def test_num_sub_crossbars(self, small_spec):
        _, w = random_operands(small_spec)
        assert build_sct(w, small_spec).num_sub_crossbars == small_spec.num_kernel_taps

    def test_round_trip(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        np.testing.assert_array_equal(kernel_from_sct(sct), w)

    @given(deconv_specs())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, spec):
        _, w = random_operands(spec, seed=11)
        np.testing.assert_array_equal(kernel_from_sct(build_sct(w, spec)), w)

    def test_wrong_kernel_shape_rejected(self, small_spec):
        _, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            build_sct(w[..., :1] if w.shape[-1] > 1 else w[:, :, :1, :], small_spec)

    def test_tap_index_bounds(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        with pytest.raises(MappingError):
            sct.tap_index(small_spec.kernel_height, 0)

    def test_mode_groups_partition_taps(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        groups = sct.mode_sub_crossbars()
        flat = sorted(t for group in groups for t in group)
        assert flat == list(range(small_spec.num_kernel_taps))
