"""Tests for the Sec. III-C design trade-off explorer."""

import pytest

from repro.core.tradeoff import explore_fold_tradeoff
from repro.errors import ParameterError
from repro.workloads.specs import get_layer


class TestTradeoff:
    def test_default_folds_are_powers_of_two(self):
        spec = get_layer("FCN_Deconv2").spec
        points = explore_fold_tradeoff(spec)
        folds = [p.fold for p in points]
        assert folds == sorted(folds)
        assert all(f & (f - 1) == 0 for f in folds)

    def test_cycles_scale_with_fold(self):
        spec = get_layer("FCN_Deconv2").spec
        points = {p.fold: p for p in explore_fold_tradeoff(spec, folds=(1, 2, 4))}
        assert points[2].cycles == 2 * points[1].cycles
        assert points[4].cycles == 4 * points[1].cycles

    def test_sc_count_shrinks_with_fold(self):
        spec = get_layer("FCN_Deconv2").spec
        points = {p.fold: p for p in explore_fold_tradeoff(spec, folds=(1, 2, 4))}
        assert points[1].num_physical_scs == 256
        assert points[2].num_physical_scs == 128
        assert points[4].num_physical_scs == 64

    def test_latency_increases_with_fold(self):
        spec = get_layer("FCN_Deconv2").spec
        points = explore_fold_tradeoff(spec, folds=(1, 2, 4, 8))
        latencies = [p.latency for p in points]
        assert latencies == sorted(latencies)

    def test_area_decreases_with_fold(self):
        """The Sec. III-C trade: fewer SCs -> less duplicated periphery."""
        spec = get_layer("FCN_Deconv2").spec
        points = explore_fold_tradeoff(spec, folds=(1, 2, 4, 8))
        areas = [p.area for p in points]
        assert areas == sorted(areas, reverse=True)

    def test_paper_configuration_on_frontier(self):
        """The paper picks fold=2 (128 SCs, 2 cycles) for FCN stride-8."""
        spec = get_layer("FCN_Deconv2").spec
        points = {p.fold: p for p in explore_fold_tradeoff(spec, folds=(1, 2))}
        assert points[2].num_physical_scs == 128
        assert points[2].area < points[1].area
        assert points[2].latency < 2.2 * points[1].latency

    def test_empty_folds_rejected(self):
        with pytest.raises(ParameterError):
            explore_fold_tradeoff(get_layer("GAN_Deconv3").spec, folds=())

    def test_duplicate_folds_deduped(self):
        points = explore_fold_tradeoff(get_layer("GAN_Deconv3").spec, folds=(1, 1, 2))
        assert [p.fold for p in points] == [1, 2]
