"""Tests for the ASCII mechanism-figure renderers."""

from repro.core.visualize import render_cycle_table, render_modes, render_padded_map
from repro.deconv.shapes import DeconvSpec


FIG6_SPEC = DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)


class TestModesFigure:
    def test_fig6_paper_example_tap_sets(self):
        """Fig. 6: K=3x3, s=2 -> taps {1,3,7,9}, {4,6}, {2,8}, {5}."""
        text = render_modes(FIG6_SPEC)
        blocks = text.split("\n\n")
        assert len(blocks) == 4
        numbers = []
        for block in blocks:
            nums = sorted(
                int(tok) for line in block.splitlines()[1:] for tok in line.split()
                if tok.isdigit()
            )
            numbers.append(nums)
        assert sorted(map(tuple, numbers)) == sorted(
            [(5,), (4, 6), (2, 8), (1, 3, 7, 9)]
        )

    def test_every_tap_appears_once(self):
        text = render_modes(FIG6_SPEC)
        for tap in range(1, 10):
            assert text.count(f"{tap:>3}") == 1


class TestPaddedMapFigure:
    def test_sngan_map_statistics(self):
        spec = DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)
        text = render_padded_map(spec)
        assert "86.8% zero redundancy" in text
        assert text.count("#") == 16
        grid_lines = text.splitlines()[1:]
        assert len(grid_lines) == 11
        assert all(len(line) == 11 for line in grid_lines)

    def test_stride1_no_insertion(self):
        spec = DeconvSpec(3, 3, 1, 2, 2, 1, stride=1, padding=0)
        text = render_padded_map(spec)
        # Stretched map is dense; only the border is zero.
        assert "###" in text


class TestCycleTableFigure:
    def test_one_row_per_sub_crossbar(self):
        text = render_cycle_table(FIG6_SPEC, num_cycles=2)
        for sc in range(1, 10):
            assert f"SC{sc} " in text

    def test_inputs_are_live_pixels(self):
        text = render_cycle_table(FIG6_SPEC, num_cycles=1)
        assert "I(" in text and "O(" in text

    def test_requested_cycle_count_capped(self):
        spec = DeconvSpec(2, 2, 1, 2, 2, 1, stride=2, padding=0)
        text = render_cycle_table(spec, num_cycles=99)
        # 2x2 blocks -> at most 4 rounds of columns.
        assert "cycle 5 input" not in text
