"""Tests for the activation-sparsity extension study."""

import numpy as np
import pytest

from repro.core.sparse import evaluate_with_sparsity, measure_sparsity
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError


@pytest.fixture
def spec():
    return DeconvSpec(6, 6, 8, 4, 4, 4, stride=2, padding=1)


class TestMeasurement:
    def test_dense_input_nothing_gated(self, spec, rng):
        x = np.abs(rng.standard_normal(spec.input_shape)) + 1.0
        profile = measure_sparsity(x, spec)
        assert profile.pixel_zero_fraction == 0.0
        assert profile.feed_gating_ratio == 0.0

    def test_all_zero_input_everything_gated(self, spec):
        profile = measure_sparsity(np.zeros(spec.input_shape), spec)
        assert profile.pixel_zero_fraction == 1.0
        assert profile.feed_gating_ratio == 1.0

    def test_structured_sparsity_detected(self, spec, rng):
        x = np.abs(rng.standard_normal(spec.input_shape)) + 1.0
        x[::2, :, :] = 0.0
        profile = measure_sparsity(x, spec)
        assert profile.pixel_zero_fraction == 0.5
        assert 0.0 < profile.feed_gating_ratio < 1.0

    def test_element_vs_pixel_sparsity(self, spec, rng):
        """ReLU zeros elements but rarely whole pixel vectors."""
        x = np.maximum(rng.standard_normal(spec.input_shape), 0.0)
        profile = measure_sparsity(x, spec)
        assert profile.element_zero_fraction > 0.3
        assert profile.pixel_zero_fraction < profile.element_zero_fraction

    def test_shape_mismatch_rejected(self, spec):
        with pytest.raises(ShapeError):
            measure_sparsity(np.zeros((1, 1, 1)), spec)


class TestGatedEvaluation:
    def test_gating_never_increases_energy(self, spec, rng):
        x = np.maximum(rng.standard_normal(spec.input_shape), 0.0)
        base, gated, _ = evaluate_with_sparsity(spec, x)
        assert gated.energy.total <= base.energy.total

    def test_latency_unchanged(self, spec, rng):
        """Value gating is an energy extension; the schedule is static."""
        x = np.maximum(rng.standard_normal(spec.input_shape), 0.0)
        base, gated, _ = evaluate_with_sparsity(spec, x)
        assert gated.latency.total == pytest.approx(base.latency.total)

    def test_more_sparsity_more_saving(self, spec, rng):
        dense = np.abs(rng.standard_normal(spec.input_shape)) + 1.0
        sparse = dense.copy()
        sparse[::2, :, :] = 0.0
        _, gated_dense, _ = evaluate_with_sparsity(spec, dense)
        _, gated_sparse, _ = evaluate_with_sparsity(spec, sparse)
        assert gated_sparse.energy.total < gated_dense.energy.total
