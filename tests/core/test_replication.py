"""Tests for bank replication."""

import pytest

from repro.core.replication import replicate_red, replication_frontier
from repro.utils.validation import check_positive_int  # noqa: F401  (sanity import)
from repro.workloads.specs import get_layer


@pytest.fixture(scope="module")
def spec():
    return get_layer("FCN_Deconv2").spec


class TestReplication:
    def test_cycles_divide(self, spec):
        base = replicate_red(spec, 1)
        doubled = replicate_red(spec, 2)
        assert doubled.cycles == -(-base.cycles // 2)

    def test_latency_drops_with_replicas(self, spec):
        points = replication_frontier(spec, (1, 2, 4, 8))
        latencies = [p.latency for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_area_grows_with_replicas(self, spec):
        points = replication_frontier(spec, (1, 2, 4))
        areas = [p.area for p in points]
        assert areas == sorted(areas)
        # Array area is exactly proportional to replicas.
        assert points[1].metrics.area.computation == pytest.approx(
            2 * points[0].metrics.area.computation
        )

    def test_energy_roughly_constant(self, spec):
        """Replication reschedules work; it should not change energy much."""
        base = replicate_red(spec, 1)
        wide = replicate_red(spec, 8)
        ratio = wide.metrics.energy.total / base.metrics.energy.total
        assert 0.9 <= ratio <= 1.1

    def test_replica_one_matches_plain_red(self, spec):
        from repro.core.red_design import REDDesign

        plain = REDDesign(spec).evaluate("replicated")
        rep = replicate_red(spec, 1)
        assert rep.metrics.latency.total == pytest.approx(plain.latency.total)
        assert rep.metrics.area.total == pytest.approx(plain.area.total)

    def test_invalid_factor_rejected(self, spec):
        with pytest.raises(Exception):
            replicate_red(spec, 0)

    def test_frontier_sorted_and_deduped(self, spec):
        points = replication_frontier(spec, (4, 1, 4, 2))
        assert [p.replicas for p in points] == [1, 2, 4]
