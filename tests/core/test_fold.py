"""Tests for the area-efficient fold (Eq. 2)."""

import numpy as np
import pytest

from repro.core.fold import (
    choose_fold,
    choose_fold_batch,
    fold_sct,
    resolve_fold,
    resolve_fold_batch,
    unfold_sct,
)
from repro.core.mapping import build_sct
from repro.deconv.shapes import DeconvSpec
from repro.errors import MappingError, ParameterError
from tests.conftest import SMALL_SPECS, random_operands


class TestChooseFold:
    def test_gan_kernels_unfolded(self):
        spec = DeconvSpec(8, 8, 4, 5, 5, 4, stride=2, padding=2, output_padding=1)
        assert choose_fold(spec) == 1

    def test_fcn2_folds_to_128(self):
        """The paper: 256 taps -> 128 physical SCs via fold 2."""
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        assert choose_fold(spec, max_sub_crossbars=128) == 2

    def test_tight_budget_folds_more(self):
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        assert choose_fold(spec, max_sub_crossbars=32) == 8

    def test_fold_power_of_two(self, small_spec):
        fold = choose_fold(small_spec, max_sub_crossbars=3)
        assert fold & (fold - 1) == 0


class TestBatchFoldResolution:
    @pytest.mark.parametrize("budget", (2, 32, 128))
    def test_choose_fold_batch_matches_scalar(self, budget):
        taps = np.array([spec.num_kernel_taps for spec in SMALL_SPECS])
        batch = choose_fold_batch(taps, max_sub_crossbars=budget)
        expected = [choose_fold(spec, max_sub_crossbars=budget) for spec in SMALL_SPECS]
        assert batch.tolist() == expected

    def test_resolve_fold_batch_mixed_auto_and_explicit(self):
        spec = DeconvSpec(70, 70, 21, 16, 16, 21, stride=8, padding=0)
        taps = np.array([spec.num_kernel_taps] * 3)
        batch = resolve_fold_batch(taps, ["auto", 4, 1], max_sub_crossbars=128)
        assert batch.tolist() == [
            resolve_fold(spec, "auto", 128),
            resolve_fold(spec, 4, 128),
            resolve_fold(spec, 1, 128),
        ]

    def test_resolve_fold_batch_rejects_invalid_entries(self):
        taps = np.array([16])
        for bad in (0, -1, 2.5, "half"):
            with pytest.raises(ParameterError):
                resolve_fold_batch(taps, [bad])

    def test_resolve_fold_batch_rejects_length_mismatch(self):
        with pytest.raises(ParameterError):
            resolve_fold_batch(np.array([16, 25]), ["auto"])


class TestFoldGeometry:
    def test_physical_count(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        folded = fold_sct(sct, 2)
        assert folded.num_physical_scs == -(-small_spec.num_kernel_taps // 2)
        assert folded.rows_per_sc == 2 * small_spec.in_channels

    def test_fold1_is_identity_layout(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        folded = fold_sct(sct, 1)
        assert folded.num_physical_scs == sct.num_sub_crossbars
        np.testing.assert_array_equal(unfold_sct(folded).data, sct.data)

    def test_round_trip(self, small_spec):
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        for fold in (1, 2, 4):
            np.testing.assert_array_equal(unfold_sct(fold_sct(sct, fold)).data, sct.data)

    def test_every_tap_stored_once(self, small_spec):
        _, w = random_operands(small_spec)
        folded = fold_sct(build_sct(w, small_spec), 2)
        taps = [t for slots in folded.tap_slots for t in slots if t is not None]
        assert sorted(taps) == list(range(small_spec.num_kernel_taps))

    def test_slot_lookup(self, small_spec):
        _, w = random_operands(small_spec)
        folded = fold_sct(build_sct(w, small_spec), 2)
        n, f = folded.slot_of_tap(0)
        assert folded.tap_slots[n][f] == 0

    def test_missing_tap_lookup_raises(self, small_spec):
        _, w = random_operands(small_spec)
        folded = fold_sct(build_sct(w, small_spec), 2)
        with pytest.raises(MappingError):
            folded.slot_of_tap(small_spec.num_kernel_taps)

    def test_slot_rows_hold_tap_weights(self, small_spec):
        """Eq. 2 layout: slot f of SC n occupies rows [f*C, (f+1)*C)."""
        _, w = random_operands(small_spec)
        sct = build_sct(w, small_spec)
        folded = fold_sct(sct, 2)
        c = small_spec.in_channels
        for n, slots in enumerate(folded.tap_slots):
            for f, tap in enumerate(slots):
                if tap is None:
                    continue
                np.testing.assert_array_equal(
                    folded.data[f * c : (f + 1) * c, :, n], sct.data[:, :, tap]
                )

    def test_mode_major_grouping(self):
        """Folded partners come from the same computation mode when the
        mode sizes allow (keeps bitline-sharing groups intact)."""
        from repro.deconv.modes import mode_of_tap

        spec = DeconvSpec(4, 4, 2, 16, 16, 2, stride=8, padding=0)
        _, w = random_operands(spec)
        folded = fold_sct(build_sct(w, spec), 2)
        kw_count = spec.kernel_width
        same_mode = 0
        for slots in folded.tap_slots:
            live = [t for t in slots if t is not None]
            if len(live) == 2:
                modes = {mode_of_tap(*divmod(t, kw_count), spec) for t in live}
                same_mode += len(modes) == 1
        # K=16, s=8: every mode has exactly 4 taps -> all pairs intra-mode.
        assert same_mode == len(folded.tap_slots)
