"""Cross-checks between measured activity and the closed-form perf model."""

import pytest

from repro.core.red_design import REDDesign
from repro.designs.padding_free_design import PaddingFreeDesign
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.sim.engine import CycleEngine
from tests.conftest import random_operands


class TestCycleIdentities:
    def test_all_designs_measured_equals_modeled(self, small_spec):
        x, w = random_operands(small_spec)
        for design_cls in (ZeroPaddingDesign, PaddingFreeDesign):
            design = design_cls(small_spec)
            assert design.run_functional(x, w).cycles == design.perf_input().cycles
        red = REDDesign(small_spec)
        assert red.run_cycle_accurate(x, w).cycles == red.perf_input().cycles


class TestMacConservation:
    def test_useful_macs_identical_across_designs(self, small_spec):
        """Every design performs exactly the same live multiplications."""
        zp = ZeroPaddingDesign(small_spec).perf_input()
        pf = PaddingFreeDesign(small_spec).perf_input()
        red = REDDesign(small_spec).perf_input()
        assert zp.useful_macs == pf.useful_macs == red.useful_macs

    def test_zero_padding_measured_useful_macs(self, small_spec):
        import numpy as np

        x = np.abs(random_operands(small_spec)[0]) + 1.0
        _, w = random_operands(small_spec)
        design = ZeroPaddingDesign(small_spec)
        run = design.run_functional(x, w)
        assert run.counters["macs_useful"] == design.perf_input().useful_macs

    def test_total_cells_identical_across_designs(self, small_spec):
        zp = ZeroPaddingDesign(small_spec).perf_input()
        pf = PaddingFreeDesign(small_spec).perf_input()
        red = REDDesign(small_spec).perf_input()
        assert zp.total_cells_logical == pf.total_cells_logical == red.total_cells_logical


class TestEngineVsModel:
    def test_live_rows_close_to_model(self, small_spec):
        """Engine-measured live rows match the perf model's live-row total
        (the model may count border-clipped rows the engine skips)."""
        x, w = random_operands(small_spec)
        engine_run = CycleEngine(small_spec).run(x, w)
        model = REDDesign(small_spec).perf_input()
        measured = engine_run.counters.get("live_rows")
        assert measured == pytest.approx(model.live_row_cycles_total, rel=1e-9)

    def test_output_pixels_match_spec(self, small_spec):
        x, w = random_operands(small_spec)
        run = CycleEngine(small_spec).run(x, w)
        assert run.counters.get("output_pixels") == small_spec.num_output_pixels
