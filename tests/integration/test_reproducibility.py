"""Reproducibility and cross-artifact consistency checks."""

import numpy as np
import pytest

from repro.eval.comparison import measure_claims
from repro.eval.export import grid_records
from repro.eval.harness import run_grid


class TestDeterminism:
    def test_grid_is_deterministic(self):
        a = run_grid()
        b = run_grid()
        for layer in a.metrics:
            for design in a.metrics[layer]:
                assert a.get(layer, design).latency.total == b.get(layer, design).latency.total
                assert a.get(layer, design).energy.total == b.get(layer, design).energy.total

    def test_functional_runs_deterministic(self):
        from repro.core.red_design import REDDesign
        from repro.workloads.data import layer_input, layer_kernel
        from repro.workloads.specs import get_layer

        layer = get_layer("GAN_Deconv3")
        x, w = layer_input(layer), layer_kernel(layer)
        a = REDDesign(layer.spec).run_functional(x, w).output
        b = REDDesign(layer.spec).run_functional(x, w).output
        np.testing.assert_array_equal(a, b)


class TestCrossArtifactConsistency:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_grid()

    def test_export_matches_comparison_speedups(self, grid):
        """The CSV export and the claims table must agree on the numbers."""
        records = grid_records(grid)
        red_speedups = [
            r["speedup_vs_zero_padding"] for r in records if r["design"] == "RED"
        ]
        claims = {c.key: c.measured for c in measure_claims(grid)}
        assert min(red_speedups) == pytest.approx(claims["speedup_min"])
        assert max(red_speedups) == pytest.approx(claims["speedup_max"])

    def test_export_matches_grid_energy(self, grid):
        for record in grid_records(grid):
            metric = grid.get(record["layer"], record["design"])
            assert record["energy_j"] == pytest.approx(metric.energy.total)

    def test_figure_tables_agree_with_grid(self, grid):
        from repro.eval.figures import fig7_latency

        fig = fig7_latency(grid)
        for layer in grid.metrics:
            assert fig.speedup[layer]["RED"] == pytest.approx(
                grid.speedup(layer, "RED")
            )

    def test_cli_and_report_share_numbers(self, grid, capsys):
        from repro.cli import main
        from repro.eval.figures import fig8_energy

        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        saving = fig8_energy(grid).saving["FCN_Deconv2"]["RED"]
        assert f"{saving * 100:.1f}%" in out


class TestBufferTrafficFCN:
    def test_fcn2_traffic_contrast(self):
        """At stride 8 the zero-padding window traffic explodes while RED
        reads only live pixels."""
        from repro.arch.memory_system import traffic_for
        from repro.workloads.specs import get_layer

        spec = get_layer("FCN_Deconv2").spec
        zp = traffic_for("zero-padding", spec)
        red = traffic_for("RED", spec)
        assert zp.input_bytes / red.input_bytes > 30
