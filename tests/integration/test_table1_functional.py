"""Functional integration over the remaining full-size Table I layers.

GAN_Deconv3 and FCN_Deconv1 are covered in test_end_to_end; here the
other GAN layers (including the output-padding 5x5 cases) run at full
size through RED's fast path and the chunked zero-padding path.
FCN_Deconv2 stays perf-model-only (3.6e10 MACs).
"""

import numpy as np
import pytest

from repro.core.red_design import REDDesign
from repro.deconv.reference import conv_transpose2d
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.workloads.data import layer_input, layer_kernel
from repro.workloads.specs import get_layer


@pytest.mark.parametrize("name", ["GAN_Deconv1", "GAN_Deconv2", "GAN_Deconv4"])
class TestFullSizeGANLayers:
    def test_red_fast_path(self, name):
        layer = get_layer(name)
        x, w = layer_input(layer), layer_kernel(layer)
        ref = conv_transpose2d(x, w, layer.spec)
        run = REDDesign(layer.spec).run_functional(x, w)
        np.testing.assert_allclose(run.output, ref, atol=1e-8)

    def test_red_cycle_count(self, name):
        layer = get_layer(name)
        spec = layer.spec
        design = REDDesign(spec)
        expected = (-(-spec.output_height // spec.stride)) * (
            -(-spec.output_width // spec.stride)
        )
        assert design.cycles == expected


class TestZeroPaddingChunkedPath:
    def test_gan_deconv2_full_size(self):
        """The 5x5/output-padding case through the chunked im2col path."""
        layer = get_layer("GAN_Deconv2")
        x, w = layer_input(layer), layer_kernel(layer)
        run = ZeroPaddingDesign(layer.spec).run_functional(x, w)
        ref = conv_transpose2d(x, w, layer.spec)
        np.testing.assert_allclose(run.output, ref, atol=1e-8)
        assert run.cycles == 64

    def test_gan_deconv4_full_size(self):
        layer = get_layer("GAN_Deconv4")
        x, w = layer_input(layer), layer_kernel(layer)
        run = ZeroPaddingDesign(layer.spec).run_functional(x, w)
        ref = conv_transpose2d(x, w, layer.spec)
        np.testing.assert_allclose(run.output, ref, atol=1e-8)
        assert run.cycles == 144
