"""Integration tests: whole workload layers through whole designs."""

import numpy as np
import pytest

from repro.core.red_design import REDDesign
from repro.deconv.reference import conv_transpose2d
from repro.designs.padding_free_design import PaddingFreeDesign
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.nn.quantize import quantize_tensor, symmetric_quant_params
from repro.workloads.data import layer_input, layer_kernel
from repro.workloads.networks import SNGANGenerator
from repro.workloads.specs import get_layer


class TestTableILayersFunctional:
    """Full-size Table I layers through every design's functional path."""

    @pytest.mark.parametrize("name", ["GAN_Deconv3", "FCN_Deconv1"])
    def test_all_designs_agree_on_real_layers(self, name):
        layer = get_layer(name)
        x = layer_input(layer)
        w = layer_kernel(layer)
        ref = conv_transpose2d(x, w, layer.spec)
        zp = ZeroPaddingDesign(layer.spec).run_functional(x, w)
        pf = PaddingFreeDesign(layer.spec).run_functional(x, w)
        red = REDDesign(layer.spec).run_functional(x, w)
        np.testing.assert_allclose(zp.output, ref, atol=1e-8)
        np.testing.assert_allclose(pf.output, ref, atol=1e-8)
        np.testing.assert_allclose(red.output, ref, atol=1e-8)

    def test_cycle_ratio_on_real_layer(self):
        """GAN_Deconv3: ZP runs 64 cycles, RED 16 — the 4x of Fig. 5c."""
        layer = get_layer("GAN_Deconv3")
        x, w = layer_input(layer), layer_kernel(layer)
        zp = ZeroPaddingDesign(layer.spec).run_functional(x, w)
        red = REDDesign(layer.spec).run_functional(x, w)
        assert zp.cycles == 64
        assert red.cycles == 16

    def test_fcn2_perf_only(self):
        """FCN_Deconv2 is too large for functional runs in CI; the perf
        model alone must still report the folded geometry."""
        layer = get_layer("FCN_Deconv2")
        design = REDDesign(layer.spec)
        assert design.fold == 2
        assert design.num_physical_scs == 128
        metrics = design.evaluate(layer.name)
        assert metrics.cycles == 10082


class TestNetworkLayerOnAccelerator:
    def test_sngan_generator_layer_through_red(self):
        """Take the actual SNGAN generator's deconv layer (weights and an
        intermediate activation from a real forward pass) and run it
        through RED."""
        gen = SNGANGenerator(base_size=4, rng=np.random.default_rng(3))
        z = np.random.default_rng(4).standard_normal((1, gen.latent_dim))
        feature = gen.project(z.reshape(1, gen.latent_dim, 1, 1))  # (1, 512, 4, 4)
        deconv = gen.benchmark_layer()
        spec = deconv.deconv_spec(4, 4)
        x_hwc = np.transpose(feature[0], (1, 2, 0))
        ref = conv_transpose2d(x_hwc, deconv.weight, spec)
        red = REDDesign(spec).run_functional(x_hwc, deconv.weight)
        np.testing.assert_allclose(red.output, ref, atol=1e-8)

    def test_quantized_end_to_end_error_small(self):
        """Quantize a real layer to 8-bit, run the bit-accurate ReRAM path,
        dequantize, and check the relative error against float."""
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(4, 4, 16, 4, 4, 8, stride=2, padding=1)
        rng = np.random.default_rng(5)
        x = np.maximum(rng.standard_normal(spec.input_shape), 0.0)
        w = rng.normal(0.0, 0.02, size=spec.kernel_shape)
        xq_params = symmetric_quant_params(x, bits=8, signed=False)
        wq_params = symmetric_quant_params(w, bits=8, signed=True)
        x_int = quantize_tensor(x, xq_params)
        w_int = quantize_tensor(w, wq_params)
        run = REDDesign(spec).run_quantized(x_int, w_int)
        approx = run.output * xq_params.scale * wq_params.scale
        ref = conv_transpose2d(x, w, spec)
        rel_err = np.abs(approx - ref).mean() / (np.abs(ref).mean() + 1e-12)
        assert rel_err < 0.05

    def test_quantized_matches_integer_reference_exactly(self):
        from repro.deconv.shapes import DeconvSpec
        from tests.conftest import integer_operands

        spec = DeconvSpec(3, 3, 8, 4, 4, 4, stride=2, padding=1)
        x_int, w_int = integer_operands(spec)
        expected = conv_transpose2d(
            x_int.astype(float), w_int.astype(float), spec
        ).astype(np.int64)
        for design_cls in (ZeroPaddingDesign, PaddingFreeDesign, REDDesign):
            run = design_cls(spec).run_quantized(x_int, w_int)
            np.testing.assert_array_equal(run.output, expected)
