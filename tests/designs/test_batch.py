"""Tests for batched streaming execution."""

import numpy as np
import pytest

from repro.core.red_design import REDDesign
from repro.deconv.reference import conv_transpose2d
from repro.deconv.shapes import DeconvSpec
from repro.designs.padding_free_design import PaddingFreeDesign
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.errors import ShapeError


@pytest.fixture
def spec():
    return DeconvSpec(4, 4, 6, 4, 4, 5, stride=2, padding=1)


@pytest.fixture
def batch(spec, rng):
    return rng.standard_normal((3,) + spec.input_shape)


@pytest.fixture
def kernel(spec, rng):
    return rng.standard_normal(spec.kernel_shape)


@pytest.mark.parametrize("design_cls", [ZeroPaddingDesign, PaddingFreeDesign, REDDesign])
class TestBatch:
    def test_outputs_match_per_sample_reference(self, design_cls, spec, batch, kernel):
        run = design_cls(spec).run_batch(batch, kernel)
        assert run.output.shape == (3,) + spec.output_shape
        for n in range(3):
            np.testing.assert_allclose(
                run.output[n], conv_transpose2d(batch[n], kernel, spec), atol=1e-10
            )

    def test_cycles_sum_over_samples(self, design_cls, spec, batch, kernel):
        design = design_cls(spec)
        single = design.run_functional(batch[0], kernel)
        batched = design.run_batch(batch, kernel)
        assert batched.cycles == 3 * single.cycles

    def test_counters_accumulate(self, design_cls, spec, batch, kernel):
        design = design_cls(spec)
        batched = design.run_batch(batch, kernel)
        assert all(v >= 0 for v in batched.counters.values())
        assert batched.counters  # non-empty

    def test_rejects_non_batched(self, design_cls, spec, batch, kernel):
        with pytest.raises(ShapeError):
            design_cls(spec).run_batch(batch[0], kernel)
