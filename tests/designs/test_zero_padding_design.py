"""Tests for the zero-padding baseline design."""

import numpy as np
import pytest

from repro.deconv.reference import conv_transpose2d
from repro.designs.zero_padding_design import ZeroPaddingDesign
from repro.errors import ShapeError
from tests.conftest import integer_operands, random_operands


class TestFunctional:
    def test_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        run = ZeroPaddingDesign(small_spec).run_functional(x, w)
        np.testing.assert_allclose(
            run.output, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    def test_cycles_equal_output_pixels(self, small_spec):
        x, w = random_operands(small_spec)
        run = ZeroPaddingDesign(small_spec).run_functional(x, w)
        assert run.cycles == small_spec.num_output_pixels

    def test_counters_account_for_redundancy(self, small_spec):
        from repro.deconv.analysis import redundant_mac_fraction

        x = np.abs(random_operands(small_spec)[0]) + 1.0  # strictly non-zero
        _, w = random_operands(small_spec)
        run = ZeroPaddingDesign(small_spec).run_functional(x, w)
        measured = 1.0 - run.counters["nonzero_input_elements"] / run.counters["input_elements"]
        assert measured == pytest.approx(redundant_mac_fraction(small_spec), abs=1e-12)

    def test_shape_validation(self, small_spec):
        x, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            ZeroPaddingDesign(small_spec).run_functional(x[..., :0], w)


class TestQuantized:
    def test_exact_integer_deconvolution(self):
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(3, 3, 4, 4, 4, 3, stride=2, padding=1)
        x, w = integer_operands(spec)
        run = ZeroPaddingDesign(spec).run_quantized(x, w)
        expected = conv_transpose2d(x.astype(float), w.astype(float), spec)
        np.testing.assert_array_equal(run.output, expected.astype(np.int64))

    def test_rejects_float_inputs(self, small_spec):
        x, w = random_operands(small_spec)
        with pytest.raises(ShapeError):
            ZeroPaddingDesign(small_spec).run_quantized(x, w)


class TestPerfInput:
    def test_geometry_matches_fig3a(self, small_spec):
        perf = ZeroPaddingDesign(small_spec).perf_input("unit")
        rows = small_spec.num_kernel_taps * small_spec.in_channels
        assert perf.cycles == small_spec.num_output_pixels
        assert perf.wordline_cols == small_spec.out_channels
        assert perf.bitline_rows == rows
        assert perf.rows_selected_per_cycle == rows
        assert perf.conv_values_per_cycle == small_spec.out_channels
        assert perf.col_periphery_sets == 1
        assert not perf.has_crop_unit

    def test_live_rows_consistent_with_useful_macs(self, small_spec):
        perf = ZeroPaddingDesign(small_spec).perf_input()
        assert perf.live_row_cycles_total == pytest.approx(
            perf.useful_macs / small_spec.out_channels
        )

    def test_measured_cycles_match_perf_model(self, small_spec):
        design = ZeroPaddingDesign(small_spec)
        x, w = random_operands(small_spec)
        assert design.run_functional(x, w).cycles == design.perf_input().cycles
