"""Tests for the standard-convolution design (Fig. 1b)."""

import numpy as np
import pytest

from repro.deconv.reference import conv2d
from repro.designs.conv_design import ConvolutionDesign, ConvSpec
from repro.errors import ShapeError


@pytest.fixture
def spec():
    return ConvSpec(8, 8, 4, 3, 3, 5, stride=2, padding=1)


class TestConvSpec:
    def test_output_algebra(self):
        spec = ConvSpec(8, 8, 1, 3, 3, 1, stride=2, padding=1)
        assert spec.output_shape == (4, 4, 1)

    def test_valid_convolution(self):
        spec = ConvSpec(5, 5, 1, 3, 3, 1)
        assert spec.output_shape == (3, 3, 1)

    def test_empty_output_rejected(self):
        with pytest.raises(ShapeError):
            ConvSpec(2, 2, 1, 5, 5, 1)

    def test_num_weights(self, spec):
        assert spec.num_weights == 3 * 3 * 4 * 5


class TestFunctional:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_matches_reference(self, rng, stride, padding):
        spec = ConvSpec(9, 9, 3, 3, 3, 4, stride=stride, padding=padding)
        x = rng.standard_normal(spec.input_shape)
        w = rng.standard_normal(spec.kernel_shape)
        run = ConvolutionDesign(spec).run_functional(x, w)
        np.testing.assert_allclose(
            run.output, conv2d(x, w, stride=stride, padding=padding), atol=1e-10
        )

    def test_cycles_equal_output_positions(self, spec, rng):
        x = rng.standard_normal(spec.input_shape)
        w = rng.standard_normal(spec.kernel_shape)
        run = ConvolutionDesign(spec).run_functional(x, w)
        assert run.cycles == spec.output_height * spec.output_width

    def test_shape_validation(self, spec, rng):
        design = ConvolutionDesign(spec)
        with pytest.raises(ShapeError):
            design.run_functional(rng.standard_normal((1, 1, 1)), rng.standard_normal(spec.kernel_shape))


class TestQuantized:
    def test_exact_integer_convolution(self, spec, rng):
        x = rng.integers(0, 256, size=spec.input_shape)
        w = rng.integers(-127, 128, size=spec.kernel_shape)
        run = ConvolutionDesign(spec).run_quantized(x, w)
        expected = conv2d(
            x.astype(float), w.astype(float), stride=spec.stride, padding=spec.padding
        ).astype(np.int64)
        np.testing.assert_array_equal(run.output, expected)


class TestPerf:
    def test_geometry(self, spec):
        perf = ConvolutionDesign(spec).perf_input("conv")
        assert perf.wordline_cols == spec.out_channels
        assert perf.bitline_rows == 3 * 3 * 4
        assert perf.cycles == spec.output_height * spec.output_width

    def test_density_scales_live_rows(self, spec):
        dense = ConvolutionDesign(spec).perf_input(activation_density=1.0)
        half = ConvolutionDesign(spec).perf_input(activation_density=0.5)
        assert half.live_row_cycles_total == pytest.approx(
            dense.live_row_cycles_total / 2
        )

    def test_density_bounds(self, spec):
        with pytest.raises(ShapeError):
            ConvolutionDesign(spec).perf_input(activation_density=0.0)
        with pytest.raises(ShapeError):
            ConvolutionDesign(spec).perf_input(activation_density=1.5)

    def test_evaluate_produces_metrics(self, spec):
        m = ConvolutionDesign(spec).evaluate("conv")
        assert m.latency.total > 0.0
        assert m.energy.total > 0.0
        assert m.area.total > 0.0

    def test_denser_activations_cost_more_energy(self, spec):
        lean = ConvolutionDesign(spec).evaluate(activation_density=0.3)
        dense = ConvolutionDesign(spec).evaluate(activation_density=1.0)
        assert dense.energy.total > lean.energy.total
        assert dense.latency.total == pytest.approx(lean.latency.total)
