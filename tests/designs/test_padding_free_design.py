"""Tests for the padding-free baseline design."""

import numpy as np

from repro.deconv.padding_free import full_overlap_shape
from repro.deconv.reference import conv_transpose2d
from repro.designs.padding_free_design import PaddingFreeDesign
from tests.conftest import integer_operands, random_operands


class TestFunctional:
    def test_matches_reference(self, small_spec):
        x, w = random_operands(small_spec)
        run = PaddingFreeDesign(small_spec).run_functional(x, w)
        np.testing.assert_allclose(
            run.output, conv_transpose2d(x, w, small_spec), atol=1e-10
        )

    def test_cycles_equal_input_pixels(self, small_spec):
        x, w = random_operands(small_spec)
        run = PaddingFreeDesign(small_spec).run_functional(x, w)
        assert run.cycles == small_spec.num_input_pixels

    def test_intermediate_volume(self, small_spec):
        x, w = random_operands(small_spec)
        run = PaddingFreeDesign(small_spec).run_functional(x, w)
        assert run.counters["intermediate_values"] == (
            small_spec.num_input_pixels
            * small_spec.num_kernel_taps
            * small_spec.out_channels
        )

    def test_cropped_value_count(self, small_spec):
        x, w = random_operands(small_spec)
        run = PaddingFreeDesign(small_spec).run_functional(x, w)
        fh, fw = full_overlap_shape(small_spec)
        assert run.counters["cropped_values"] == (
            fh * fw - small_spec.num_output_pixels
        ) * small_spec.out_channels


class TestQuantized:
    def test_exact_integer_deconvolution(self):
        from repro.deconv.shapes import DeconvSpec

        spec = DeconvSpec(3, 3, 4, 4, 4, 3, stride=2, padding=1)
        x, w = integer_operands(spec)
        run = PaddingFreeDesign(spec).run_quantized(x, w)
        expected = conv_transpose2d(x.astype(float), w.astype(float), spec)
        np.testing.assert_array_equal(run.output, expected.astype(np.int64))


class TestPerfInput:
    def test_geometry_matches_fig3b(self, small_spec):
        perf = PaddingFreeDesign(small_spec).perf_input("unit")
        wide = small_spec.num_kernel_taps * small_spec.out_channels
        assert perf.cycles == small_spec.num_input_pixels
        assert perf.wordline_cols == wide
        assert perf.bitline_rows == small_spec.in_channels
        assert perf.conv_values_per_cycle == wide
        assert perf.has_crop_unit
        assert perf.overlap_adder_cols == wide

    def test_all_rows_live(self, small_spec):
        perf = PaddingFreeDesign(small_spec).perf_input()
        assert perf.live_row_cycles_total == (
            small_spec.in_channels * small_spec.num_input_pixels
        )

    def test_overlap_serialization_grows_with_taps(self):
        from repro.deconv.shapes import DeconvSpec

        small = PaddingFreeDesign(DeconvSpec(3, 3, 2, 2, 2, 2, stride=2)).perf_input()
        large = PaddingFreeDesign(DeconvSpec(3, 3, 2, 8, 8, 2, stride=2, padding=1)).perf_input()
        assert large.sa_extra_ops_per_value > small.sa_extra_ops_per_value

    def test_measured_cycles_match_perf_model(self, small_spec):
        design = PaddingFreeDesign(small_spec)
        x, w = random_operands(small_spec)
        assert design.run_functional(x, w).cycles == design.perf_input().cycles
