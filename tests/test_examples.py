"""Every example script must run end to end (no rot).

The heavyweight GAN examples are exercised on reduced problem sizes by
their own integration tests; here each script is executed as ``__main__``
with its full workload, serially, with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_has_quickstart():
    names = [p.name for p in EXAMPLES]
    assert "quickstart.py" in names
    assert len(names) >= 3
