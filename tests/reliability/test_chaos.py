"""Chaos suite: injected faults must recover to byte-identical results.

The headline invariant of the resilience plane: a run under injected
pool crashes, I/O errors and corrupt payloads either recovers to the
exact result of a fault-free run (retry, respawn, degrade) or surfaces
a typed error — it never silently returns different numbers.

Every test pins its fault schedule with ``configured_failpoints`` (the
draws are pure functions of ``(seed, site, tokens)``, so a failing
example reproduces exactly); the ambient test at the bottom runs under
whatever ``RED_FAILPOINTS`` environment configuration ``make chaos``
exports.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.schema import SweepRequest
from repro.api.service import RedService
from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import EvaluationTimeoutError
from repro.eval.parallel import (
    DesignJob,
    FidelityJob,
    run_cycle_jobs,
    run_design_jobs,
    run_fidelity_jobs,
)
from repro.eval.store import PackedSweepStore
from repro.reliability import configured_failpoints
from repro.reliability.policy import RetryPolicy, no_sleep

TECH = default_tech()
SPECS = (
    DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1),
    DeconvSpec(3, 3, 2, 6, 6, 3, stride=3, padding=2, output_padding=1),
)
DESIGNS = ("RED", "zero-padding", "padding-free")
JOBS = tuple(
    DesignJob(design, spec, TECH, layer_name=f"{design}/{index}")
    for index, spec in enumerate(SPECS)
    for design in DESIGNS
)
RED_JOBS = tuple(job for job in JOBS if job.design == "RED")

#: Generous attempts, no real sleeping — chaos tests retry a lot.
LENIENT = RetryPolicy(max_attempts=10, base_delay_s=0.0, sleeper=no_sleep)


@functools.lru_cache(maxsize=None)
def fault_free_metrics() -> tuple:
    """The reference result, computed once with every failpoint disarmed."""
    with configured_failpoints(None):
        return tuple(run_design_jobs(list(JOBS), vectorized=False))


@functools.lru_cache(maxsize=None)
def fault_free_cycles() -> tuple:
    with configured_failpoints(None):
        return tuple(run_cycle_jobs(list(RED_JOBS)))


def fidelity_jobs() -> list[FidelityJob]:
    return [
        FidelityJob(
            design="RED",
            spec=SPECS[0],
            tech=TECH,
            seed=seed,
            time_s=1.0,
            stuck_at_rate=0.01,
            max_rows=16,
            max_cols=16,
            layer_name=f"fid{seed}",
        )
        for seed in (0, 1, 2)
    ]


@functools.lru_cache(maxsize=None)
def fault_free_fidelity() -> tuple:
    with configured_failpoints(None):
        return tuple(run_fidelity_jobs(fidelity_jobs()))


class TestPoolChaos:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_io_error_retries_recover_byte_identical(self, seed):
        with configured_failpoints("pool.worker:io_error@0.15", seed=seed):
            result = run_design_jobs(
                list(JOBS),
                num_workers=2,
                vectorized=False,
                retry_policy=LENIENT,
            )
        assert tuple(result) == fault_free_metrics()

    def test_certain_crash_respawns_then_degrades(self):
        # rate 1.0: every pool attempt hard-exits its worker.  The
        # runner respawns the pool once, sees it break again, and
        # degrades the remaining chunks to in-process execution — the
        # recovery of last resort still produces the exact results.
        with configured_failpoints("pool.worker:crash@1.0"):
            result = run_design_jobs(
                list(JOBS),
                num_workers=2,
                vectorized=False,
                retry_policy=LENIENT,
            )
        assert tuple(result) == fault_free_metrics()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_partial_crashes_recover_byte_identical(self, seed):
        with configured_failpoints("pool.worker:crash@0.4", seed=seed):
            result = run_design_jobs(
                list(JOBS),
                num_workers=2,
                vectorized=False,
                retry_policy=LENIENT,
            )
        assert tuple(result) == fault_free_metrics()


class TestStoreChaos:
    def test_publish_faults_degrade_not_corrupt(self, tmp_path):
        # Publish I/O faults at rate 1.0 exhaust the store's retries and
        # flip it into degraded mode — the sweep results are unaffected
        # and the memory tier still serves the second pass.
        store = PackedSweepStore(
            tmp_path, retry_policy=RetryPolicy(max_attempts=2, sleeper=no_sleep)
        )
        with configured_failpoints("store.put_many:io_error@1.0"):
            first = run_design_jobs(list(JOBS), cache=store, vectorized=False)
            assert tuple(first) == fault_free_metrics()
            assert store.degraded
            assert store.degraded_puts == len(JOBS)
            warm = run_design_jobs(list(JOBS), cache=store, vectorized=False)
        assert tuple(warm) == fault_free_metrics()
        assert store.memory_hits > 0

    def test_corrupt_reads_quarantine_and_recompute(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        with configured_failpoints(None):
            run_design_jobs(list(JOBS), cache=store, vectorized=False)
        with configured_failpoints("store.get_many:corrupt@1.0"):
            fresh = PackedSweepStore(tmp_path)  # cold memory tier
            result = run_design_jobs(
                list(JOBS), cache=fresh, vectorized=False
            )
        assert tuple(result) == fault_free_metrics()
        assert fresh.corrupt == len(JOBS)
        assert fresh.quarantined == len(JOBS)
        assert sorted((tmp_path / "quarantine").glob("*.bin"))

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mixed_fault_matrix_recovers(self, seed):
        # tempfile instead of the tmp_path fixture: hypothesis re-runs
        # the test body per example, and each example needs a fresh
        # store directory.
        import tempfile

        spec = (
            "pool.worker:io_error@0.1;"
            "store.put_many:io_error@0.4;"
            "store.get_many:corrupt@0.4"
        )
        with tempfile.TemporaryDirectory() as directory:
            with configured_failpoints(spec, seed=seed):
                store = PackedSweepStore(
                    directory,
                    retry_policy=RetryPolicy(max_attempts=4, sleeper=no_sleep),
                )
                cold = run_design_jobs(
                    list(JOBS),
                    num_workers=2,
                    cache=store,
                    vectorized=False,
                    retry_policy=LENIENT,
                )
                warm = run_design_jobs(
                    list(JOBS),
                    num_workers=2,
                    cache=store,
                    vectorized=False,
                    retry_policy=LENIENT,
                )
        assert tuple(cold) == fault_free_metrics()
        assert tuple(warm) == fault_free_metrics()


class TestRunnerCompanionsChaos:
    def test_cycle_jobs_survive_store_faults(self, tmp_path):
        store = PackedSweepStore(
            tmp_path, retry_policy=RetryPolicy(max_attempts=2, sleeper=no_sleep)
        )
        with configured_failpoints(
            "store.put_many:io_error@1.0;store.get_many:corrupt@1.0"
        ):
            result = run_cycle_jobs(list(RED_JOBS), cache=store)
        assert tuple(result) == fault_free_cycles()
        assert store.degraded

    def test_fidelity_jobs_survive_corrupt_reads(self, tmp_path):
        store = PackedSweepStore(tmp_path)
        with configured_failpoints(None):
            run_fidelity_jobs(fidelity_jobs(), cache=store)
        with configured_failpoints("store.get_many:corrupt@1.0"):
            fresh = PackedSweepStore(tmp_path)
            result = run_fidelity_jobs(fidelity_jobs(), cache=fresh)
        assert tuple(result) == fault_free_fidelity()
        assert fresh.corrupt > 0


class TestTimeouts:
    def test_inline_scalar_timeout(self):
        with configured_failpoints(None):
            with pytest.raises(EvaluationTimeoutError):
                run_design_jobs(list(JOBS), vectorized=False, timeout=1e-9)

    def test_vectorized_timeout(self):
        with configured_failpoints(None):
            with pytest.raises(EvaluationTimeoutError):
                run_design_jobs(list(JOBS), timeout=1e-9)

    def test_pool_timeout(self):
        with configured_failpoints(None):
            with pytest.raises(EvaluationTimeoutError):
                run_design_jobs(
                    list(JOBS),
                    num_workers=2,
                    vectorized=False,
                    timeout=1e-9,
                    retry_policy=LENIENT,
                )

    def test_cycle_jobs_timeout(self):
        with configured_failpoints(None):
            with pytest.raises(EvaluationTimeoutError):
                run_cycle_jobs(list(RED_JOBS), timeout=1e-9)

    def test_fidelity_jobs_timeout(self):
        with configured_failpoints(None):
            with pytest.raises(EvaluationTimeoutError):
                run_fidelity_jobs(fidelity_jobs(), timeout=1e-9)


class TestServicePartialResults:
    def test_sweep_salvages_surviving_strides(self):
        # max_attempts=1 disables retries so per-stride failures surface
        # into the partial-result envelope; seed 4 yields a mix of
        # survivors and failures for this grid.
        policy = RetryPolicy(max_attempts=1, sleeper=no_sleep)
        request = SweepRequest(strides=(1, 2, 4, 8))
        with configured_failpoints("pool.worker:io_error@0.3", seed=4):
            with RedService(
                num_workers=2, vectorized=False, retry_policy=policy
            ) as service:
                partial = service.sweep(request)
        with configured_failpoints(None):
            with RedService() as service:
                clean = service.sweep(request)
        assert partial.failures
        assert clean.failures == ()
        failed = {info.source for info in partial.failures}
        assert all(source.startswith("stride=") for source in failed)
        for info in partial.failures:
            assert info.error_type == "InjectedFaultError"
            assert info.retryable
        # Surviving strides are byte-identical to the fault-free sweep.
        clean_by_stride = {point.stride: point for point in clean.points}
        assert partial.points  # seed 4: survivors exist
        for point in partial.points:
            assert point == clean_by_stride[point.stride]
            assert f"stride={point.stride}" not in failed
        # Round-trips with the failures attached.
        from repro.api.schema import SweepResult

        assert SweepResult.from_dict(partial.to_dict()) == partial


class TestAmbientEnvironment:
    def test_ambient_env_matrix_recovers(self):
        # Under `make chaos` this module imports with RED_FAILPOINTS
        # armed from the environment, so this run executes under the
        # ambient fault matrix; unarmed it is a plain determinism check.
        result = run_design_jobs(
            list(JOBS), num_workers=2, vectorized=False, retry_policy=LENIENT
        )
        assert tuple(result) == fault_free_metrics()
