"""PackedSweepStore index recovery, degraded mode, and quarantine.

Satellite coverage for the store half of the resilience plane:
self-describing segments make ``index.bin`` disposable (missing,
truncated or corrupt indexes rebuild by scanning segments), publish
failures degrade to a counted read-only mode instead of corrupting
state, and corrupt payloads move to ``quarantine/`` rather than being
destroyed.
"""

import pickle

import pytest

from repro.arch.tech import default_tech
from repro.deconv.shapes import DeconvSpec
from repro.eval.parallel import SweepCache, DesignJob, job_key
from repro.eval.store import _INDEX_MAGIC, _ROW, PackedSweepStore
from repro.reliability import configured_failpoints
from repro.reliability.policy import RetryPolicy, no_sleep

TECH = default_tech()
JOBS = tuple(
    DesignJob(
        design,
        DeconvSpec(4, 4, 3, 4, 4, 2, stride=2, padding=1),
        TECH,
        layer_name=f"{design}",
    )
    for design in ("RED", "zero-padding", "padding-free")
)

NO_SLEEP = RetryPolicy(max_attempts=3, sleeper=no_sleep)


@pytest.fixture(autouse=True)
def _disarmed():
    """Pin a disarmed registry for every test in this module.

    These scenarios arm their own failpoints explicitly; the ambient
    ``RED_FAILPOINTS`` matrix ``make chaos`` exports must not leak into
    the fixture stores they build between armed blocks.
    """
    with configured_failpoints(None):
        yield


def populated(tmp_path):
    """A store holding one metrics entry per job, plus the key list."""
    from repro.eval.parallel import run_design_jobs

    store = PackedSweepStore(tmp_path)
    with configured_failpoints(None):
        run_design_jobs(list(JOBS), cache=store, vectorized=False)
    keys = [job_key(job) for job in JOBS]
    return store, keys


def reference_payloads(tmp_path, keys):
    fresh = PackedSweepStore(tmp_path, memory_entries=0)
    return fresh.get_many(keys)


class TestIndexRecovery:
    def test_missing_index_rebuilds_from_segments(self, tmp_path):
        _, keys = populated(tmp_path)
        expected = reference_payloads(tmp_path, keys)
        (tmp_path / "index.bin").unlink()
        with configured_failpoints(None):
            recovered = PackedSweepStore(tmp_path, memory_entries=0)
            assert recovered.get_many(keys) == expected
        assert recovered.rebuilt_entries == len(keys)
        assert recovered.stats()["rebuilt_entries"] == len(keys)

    def test_magic_mismatch_rebuilds_from_segments(self, tmp_path):
        _, keys = populated(tmp_path)
        expected = reference_payloads(tmp_path, keys)
        (tmp_path / "index.bin").write_bytes(b"NOTANIDX\ngarbage")
        with configured_failpoints(None):
            recovered = PackedSweepStore(tmp_path, memory_entries=0)
            assert recovered.get_many(keys) == expected
        assert recovered.rebuilt_entries == len(keys)

    def test_corrupt_manifest_rebuilds_from_segments(self, tmp_path):
        _, keys = populated(tmp_path)
        expected = reference_payloads(tmp_path, keys)
        (tmp_path / "index.bin").write_bytes(_INDEX_MAGIC + b"{not json\n")
        with configured_failpoints(None):
            recovered = PackedSweepStore(tmp_path, memory_entries=0)
            assert recovered.get_many(keys) == expected

    def test_truncated_rows_serve_complete_entries(self, tmp_path):
        _, keys = populated(tmp_path)
        index = tmp_path / "index.bin"
        data = index.read_bytes()
        # Chop half a row off the end: every complete row still serves.
        index.write_bytes(data[: len(data) - _ROW.size // 2])
        with configured_failpoints(None):
            recovered = PackedSweepStore(tmp_path, memory_entries=0)
            values = recovered.get_many(keys)
        assert sum(value is not None for value in values) == len(keys) - 1
        # No rebuild happened — truncation is tolerated row-wise.
        assert recovered.rebuilt_entries == 0

    def test_rebuild_persists_at_next_publish(self, tmp_path):
        store, keys = populated(tmp_path)
        expected = reference_payloads(tmp_path, keys)
        (tmp_path / "index.bin").unlink()
        with configured_failpoints(None):
            recovered = PackedSweepStore(tmp_path, memory_entries=0)
            assert recovered.get_many(keys) == expected
            # The rebuilt index lives in memory until the next publish
            # rewrites index.bin; publish one fresh entry and reopen.
            extra_job = DesignJob(
                "RED",
                DeconvSpec(3, 3, 2, 6, 6, 3, stride=3, padding=2,
                           output_padding=1),
                TECH,
            )
            recovered.put_many([(job_key(extra_job), expected[0])])
            reopened = PackedSweepStore(tmp_path, memory_entries=0)
            assert reopened.get_many(keys) == expected
        assert (tmp_path / "index.bin").exists()
        assert reopened.rebuilt_entries == 0

    def test_segment_skew_reads_as_miss(self, tmp_path):
        # The index references a segment that has since vanished: the
        # lookup is a plain miss (the bytes might be fine elsewhere),
        # never a crash and never a corrupt-scrub.
        _, keys = populated(tmp_path)
        for segment in tmp_path.glob("seg-*.seg"):
            segment.unlink()
        with configured_failpoints(None):
            skewed = PackedSweepStore(tmp_path, memory_entries=0)
            values = skewed.get_many(keys)
        assert values == [None] * len(keys)
        assert skewed.corrupt == 0
        assert skewed.misses == len(keys)


class TestDegradedMode:
    def test_publish_exhaustion_degrades_and_memory_tier_serves(
        self, tmp_path
    ):
        store = PackedSweepStore(tmp_path, retry_policy=NO_SLEEP)
        _, keys = populated(tmp_path / "reference")
        payloads = reference_payloads(tmp_path / "reference", keys)
        entries = list(zip(keys, payloads))
        with configured_failpoints("store.put_many:io_error@1.0"):
            assert store.put_many(entries) == 0
        assert store.degraded
        assert store.degraded_puts == len(entries)
        assert store.stats()["degraded"] == 1
        # The memory tier still serves this process...
        assert store.get_many(keys) == payloads
        assert store.memory_hits == len(keys)
        # ...but nothing reached disk.
        with configured_failpoints(None):
            assert PackedSweepStore(tmp_path).get_many(keys) == [None] * len(
                keys
            )

    def test_refresh_leaves_degraded_mode(self, tmp_path):
        store = PackedSweepStore(tmp_path, retry_policy=NO_SLEEP)
        _, keys = populated(tmp_path / "reference")
        payloads = reference_payloads(tmp_path / "reference", keys)
        entries = list(zip(keys, payloads))
        with configured_failpoints("store.put_many:io_error@1.0"):
            store.put_many(entries)
        assert store.degraded
        with configured_failpoints(None):
            store.refresh()
            assert not store.degraded
            assert store.put_many(entries) == len(entries)
            assert PackedSweepStore(tmp_path, memory_entries=0).get_many(
                keys
            ) == payloads

    def test_publish_retry_eventually_succeeds(self, tmp_path):
        # rate 0.5 with five attempts: the (key, attempt)-keyed draws
        # pass within the budget for this seed, and the batch lands.
        store = PackedSweepStore(
            tmp_path, retry_policy=RetryPolicy(max_attempts=5, sleeper=no_sleep)
        )
        _, keys = populated(tmp_path / "reference")
        payloads = reference_payloads(tmp_path / "reference", keys)
        entries = list(zip(keys, payloads))
        with configured_failpoints("store.put_many:io_error@0.5", seed=1):
            written = store.put_many(entries)
        assert written == len(entries)
        assert not store.degraded
        with configured_failpoints(None):
            assert PackedSweepStore(tmp_path, memory_entries=0).get_many(
                keys
            ) == payloads

    def test_degraded_backoff_is_deterministic(self, tmp_path):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.25, sleeper=slept.append
        )
        store = PackedSweepStore(tmp_path, retry_policy=policy)
        _, keys = populated(tmp_path / "reference")
        payloads = reference_payloads(tmp_path / "reference", keys)
        with configured_failpoints("store.put_many:io_error@1.0"):
            store.put_many(list(zip(keys, payloads)))
        assert slept == [0.25, 0.5]


class TestQuarantine:
    def test_packed_store_quarantines_corrupt_payloads(self, tmp_path):
        _, keys = populated(tmp_path)
        with configured_failpoints("store.get_many:corrupt@1.0"):
            store = PackedSweepStore(tmp_path, memory_entries=0)
            values = store.get_many(keys)
        assert values == [None] * len(keys)
        assert store.corrupt == len(keys)
        assert store.quarantined == len(keys)
        names = {path.name for path in (tmp_path / "quarantine").glob("*.bin")}
        assert names == {f"{key}.bin" for key in keys}

    def test_scrub_then_rewrite_recovers(self, tmp_path):
        store, keys = populated(tmp_path)
        payloads = reference_payloads(tmp_path, keys)
        with configured_failpoints("store.get_many:corrupt@1.0"):
            scrubbed = PackedSweepStore(tmp_path, memory_entries=0)
            assert scrubbed.get_many(keys) == [None] * len(keys)
        # The slots were scrubbed from the live index; rewriting them
        # publishes fresh entries that read back clean.
        with configured_failpoints(None):
            scrubbed.put_many(list(zip(keys, payloads)))
            assert scrubbed.get_many(keys) == payloads
            reopened = PackedSweepStore(tmp_path, memory_entries=0)
            assert reopened.get_many(keys) == payloads

    def test_legacy_sweep_cache_quarantines(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = job_key(JOBS[0])
        bad = tmp_path / f"{key}.pkl"
        bad.write_bytes(b"\x80\x04 definitely not a pickle")
        assert cache.get_many([key]) == [None]
        assert cache.corrupt == 1
        assert not bad.exists()
        assert (tmp_path / "quarantine" / bad.name).exists()

    def test_legacy_sweep_cache_quarantines_wrong_type(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = job_key(JOBS[0])
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps({"not": "metrics"}))
        assert cache.get_many([key]) == [None]
        assert (tmp_path / "quarantine" / f"{key}.pkl").exists()

    def test_degraded_store_skips_quarantine_writes(self, tmp_path):
        _, keys = populated(tmp_path)
        with configured_failpoints(
            "store.get_many:corrupt@1.0;store.put_many:io_error@1.0"
        ):
            store = PackedSweepStore(tmp_path, memory_entries=0,
                                     retry_policy=NO_SLEEP)
            store.put_many([])  # no-op; degraded only flips on real puts
            store.degraded = True
            store.get_many(keys)
        assert store.quarantined == len(keys)
        assert not (tmp_path / "quarantine").exists()


class TestOpenProbe:
    def test_fresh_directory_opens_writable(self, tmp_path):
        store = PackedSweepStore(tmp_path / "new")
        assert not store.degraded
        assert store.rebuilt_entries == 0

    def test_unknown_schema_reads_empty_without_rebuild(self, tmp_path):
        # A schema bump is deliberate invalidation: the index reports
        # empty and the segments are NOT resurrected.
        _, keys = populated(tmp_path)
        index = tmp_path / "index.bin"
        data = index.read_bytes()
        index.write_bytes(data.replace(b'"schema":', b'"schema":9', 1))
        with configured_failpoints(None):
            store = PackedSweepStore(tmp_path, memory_entries=0)
            assert store.get_many(keys) == [None] * len(keys)
        assert store.rebuilt_entries == 0
        assert len(store) == 0


def test_quarantine_files_do_not_break_reopen(tmp_path):
    _, keys = populated(tmp_path)
    with configured_failpoints("store.get_many:corrupt@1.0"):
        PackedSweepStore(tmp_path, memory_entries=0).get_many(keys)
    with configured_failpoints(None):
        reopened = PackedSweepStore(tmp_path, memory_entries=0)
        values = reopened.get_many(keys)
    # The scrub was process-local (no publish happened), so the entries
    # are still on disk and read back clean in a fresh store.
    assert all(value is not None for value in values)
