"""Retry policies, the transient/permanent taxonomy, and deadlines."""

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    EvaluationTimeoutError,
    InjectedFaultError,
    ParameterError,
    ShapeError,
    WorkerCrashError,
)
from repro.reliability.policy import (
    NO_SLEEP_POLICY,
    Deadline,
    RetryPolicy,
    is_retryable,
    no_sleep,
)


class TestRetryable:
    @pytest.mark.parametrize(
        "exc",
        [
            OSError("disk"),
            InjectedFaultError("injected"),
            WorkerCrashError("crash"),
            BrokenProcessPool("pool"),
        ],
    )
    def test_transient_failures_retry(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            # A timeout subclasses TimeoutError (itself an OSError since
            # Python 3.3) but the budget is final: never retried.
            EvaluationTimeoutError("budget"),
            ShapeError("bad shape"),
            ParameterError("bad param"),
            ValueError("bad"),
            KeyError("missing"),
        ],
    )
    def test_permanent_failures_surface(self, exc):
        assert not is_retryable(exc)


class TestRetryPolicy:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        assert policy.delays() == (0.1, 0.2, 0.4, 0.5)
        assert policy.delay_for(10) == 0.5  # capped

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(max_delay_s=-1)
        with pytest.raises(ParameterError):
            RetryPolicy().delay_for(0)

    def test_call_retries_transient_then_succeeds(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.5, sleeper=slept.append
        )
        attempts = []

        def flaky():
            attempts.append(len(attempts) + 1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        observed = []
        assert (
            policy.call(flaky, on_retry=lambda a, e: observed.append(a))
            == "done"
        )
        assert attempts == [1, 2, 3]
        assert slept == [0.5, 1.0]
        assert observed == [1, 2]

    def test_call_exhaustion_reraises_original(self):
        policy = RetryPolicy(max_attempts=2, sleeper=no_sleep)
        with pytest.raises(InjectedFaultError):
            policy.call(lambda: (_ for _ in ()).throw(InjectedFaultError("x")))

    def test_call_permanent_failure_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleeper=no_sleep)
        calls = []

        def broken():
            calls.append(1)
            raise ShapeError("permanent")

        with pytest.raises(ShapeError):
            policy.call(broken)
        assert len(calls) == 1

    def test_no_sleep_policy_never_sleeps(self):
        assert NO_SLEEP_POLICY.sleeper is no_sleep
        assert no_sleep(123.0) is None


class TestDeadline:
    def test_no_budget_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check("anything")  # must not raise

    def test_budget_counts_down_on_injected_clock(self):
        now = [100.0]
        deadline = Deadline(2.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(2.0)
        now[0] = 101.5
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        now[0] = 102.5
        assert deadline.expired()
        with pytest.raises(EvaluationTimeoutError, match="sweep batch"):
            deadline.check("sweep batch")

    def test_timeout_error_is_not_retryable(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        now[0] = 5.0
        with pytest.raises(EvaluationTimeoutError) as info:
            deadline.check("work")
        assert not is_retryable(info.value)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ParameterError):
            Deadline(0)
        with pytest.raises(ParameterError):
            Deadline(-1.0)
