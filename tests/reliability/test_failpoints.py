"""The failpoint registry: parsing, arming, deterministic draws, hooks.

Every test arms its configuration through ``configured_failpoints`` so
nothing leaks into the next test — including the ambient
``RED_FAILPOINTS`` environment configuration ``make chaos`` runs the
suite under (the context manager restores whatever was armed before).
"""

import pytest

from repro.errors import (
    InjectedFaultError,
    ParameterError,
    ReproError,
    WorkerCrashError,
)
from repro.reliability import failpoints
from repro.reliability.failpoints import (
    Failpoint,
    configured_failpoints,
    format_failpoints,
    parse_failpoints,
)


class TestParsing:
    def test_spec_round_trip(self):
        points = parse_failpoints(
            "store.put_many:io_error@0.3;pool.worker:crash@0.1"
        )
        assert points == (
            Failpoint("store.put_many", "io_error", 0.3),
            Failpoint("pool.worker", "crash", 0.1),
        )
        assert parse_failpoints(format_failpoints(points)) == points

    def test_rate_defaults_to_one(self):
        (point,) = parse_failpoints("store.get_many:corrupt")
        assert point.rate == 1.0

    def test_empty_clauses_skipped(self):
        assert parse_failpoints(";;pool.worker:crash;;") == (
            Failpoint("pool.worker", "crash"),
        )
        assert parse_failpoints("") == ()

    @pytest.mark.parametrize(
        "spec",
        ["pool.worker", "site:badmode", "site:io_error@nope", "site:io_error@1.5"],
    )
    def test_malformed_specs_raise_parameter_error(self, spec):
        with pytest.raises(ParameterError):
            parse_failpoints(spec)

    @pytest.mark.parametrize("site", ["", "a:b", "a;b", "a b", "a@b"])
    def test_invalid_sites_rejected(self, site):
        with pytest.raises(ParameterError):
            Failpoint(site, "io_error")


class TestConfiguration:
    def test_configure_and_clear(self):
        with configured_failpoints("pool.worker:io_error@0.5", seed=3):
            assert failpoints.is_armed()
            assert failpoints.active_seed() == 3
            assert failpoints.active_failpoints() == (
                Failpoint("pool.worker", "io_error", 0.5),
            )
            with configured_failpoints(None):
                assert not failpoints.is_armed()
                assert failpoints.active_failpoints() == ()
            # The nested block restored the outer configuration.
            assert failpoints.active_seed() == 3

    def test_configured_restores_on_error(self):
        with configured_failpoints("pool.worker:io_error", seed=9):
            with pytest.raises(RuntimeError):
                with configured_failpoints("store.put_many:crash", seed=1):
                    raise RuntimeError("boom")
            assert failpoints.active_seed() == 9
            assert failpoints.active_failpoints()[0].site == "pool.worker"

    def test_configure_from_env(self):
        with configured_failpoints(None):
            armed = failpoints.configure_from_env(
                {
                    failpoints.ENV_VAR: "store.get_many:corrupt@0.25",
                    failpoints.ENV_SEED_VAR: "17",
                }
            )
            assert armed
            assert failpoints.active_seed() == 17
            assert failpoints.active_failpoints() == (
                Failpoint("store.get_many", "corrupt", 0.25),
            )

    def test_configure_from_env_absent_is_noop(self):
        with configured_failpoints("pool.worker:crash", seed=2):
            assert not failpoints.configure_from_env({})
            assert failpoints.active_seed() == 2

    def test_bad_env_seed_raises(self):
        with configured_failpoints(None):
            with pytest.raises(ParameterError):
                failpoints.configure_from_env(
                    {
                        failpoints.ENV_VAR: "pool.worker:crash",
                        failpoints.ENV_SEED_VAR: "not-an-int",
                    }
                )

    def test_bad_seed_rejected(self):
        with pytest.raises(ParameterError):
            failpoints.configure_failpoints("pool.worker:crash", seed=-1)


class TestDeterminism:
    def test_draw_is_pure_function_of_values(self):
        with configured_failpoints("pool.worker:io_error@0.5", seed=11):
            first = [
                failpoints.check("pool.worker", f"job{i}", 1) is not None
                for i in range(64)
            ]
            second = [
                failpoints.check("pool.worker", f"job{i}", 1) is not None
                for i in range(64)
            ]
        assert first == second
        assert any(first) and not all(first)

    def test_draw_independent_of_call_order(self):
        with configured_failpoints("pool.worker:io_error@0.5", seed=11):
            forward = {
                i: failpoints.check("pool.worker", f"job{i}", 1) is not None
                for i in range(32)
            }
            backward = {
                i: failpoints.check("pool.worker", f"job{i}", 1) is not None
                for i in reversed(range(32))
            }
        assert forward == backward

    def test_attempt_token_redraws(self):
        with configured_failpoints("pool.worker:io_error@0.5", seed=11):
            by_attempt = [
                failpoints.check("pool.worker", "job", attempt) is not None
                for attempt in range(1, 33)
            ]
        assert any(by_attempt) and not all(by_attempt)

    def test_seed_changes_schedule(self):
        def schedule(seed):
            with configured_failpoints("pool.worker:io_error@0.5", seed=seed):
                return tuple(
                    failpoints.check("pool.worker", f"job{i}", 1) is not None
                    for i in range(64)
                )

        assert schedule(0) != schedule(1)

    def test_rate_bounds_short_circuit(self):
        with configured_failpoints("always:io_error@1.0;never:io_error@0.0"):
            assert all(
                failpoints.check("always", i) is not None for i in range(8)
            )
            assert all(failpoints.check("never", i) is None for i in range(8))

    def test_token_types(self):
        with configured_failpoints("site:io_error@0.5", seed=5):
            for token in (0, 3, "key", b"\x00\xff", True):
                # int/str/bytes/bool tokens all draw, deterministically.
                assert failpoints.check("site", token) is failpoints.check(
                    "site", token
                )
            with pytest.raises(ParameterError):
                failpoints.check("site", -1)
            with pytest.raises(ParameterError):
                failpoints.check("site", 1.5)


class TestModes:
    def test_io_error_raises_injected_fault(self):
        with configured_failpoints("site:io_error"):
            with pytest.raises(InjectedFaultError) as info:
                failpoints.inject("site", 0)
        # The retry plane treats injected faults as the OSError they
        # stand in for; the API boundary still sees a ReproError.
        assert isinstance(info.value, OSError)
        assert isinstance(info.value, ReproError)

    def test_crash_raises_outside_worker_processes(self):
        assert not failpoints.in_worker_process()
        with configured_failpoints("site:crash"):
            with pytest.raises(WorkerCrashError):
                failpoints.inject("site", 0)

    def test_corrupt_ignored_by_inject(self):
        with configured_failpoints("site:corrupt"):
            failpoints.inject("site", 0)  # must not raise

    def test_corrupted_flips_payload_deterministically(self):
        payload = b"hello world"
        with configured_failpoints("site:corrupt"):
            mangled = failpoints.corrupted("site", payload, 0)
            assert mangled != payload
            assert len(mangled) == len(payload)
            assert mangled == failpoints.corrupted("site", payload, 0)
            assert failpoints.corrupted("site", b"", 0) == b"\xff"
        with configured_failpoints(None):
            assert failpoints.corrupted("site", payload, 0) == payload

    def test_unarmed_sites_never_fire(self):
        with configured_failpoints("other:io_error"):
            failpoints.inject("site", 0)
            assert failpoints.check("site", 0) is None


class TestHooks:
    def test_hooks_bypassed_rebinds_and_restores(self):
        with configured_failpoints("site:io_error"):
            with failpoints.hooks_bypassed():
                failpoints.inject("site", 0)  # no-op under bypass
                assert failpoints.check("site", 0) is None
                assert failpoints.corrupted("site", b"x", 0) == b"x"
            with pytest.raises(InjectedFaultError):
                failpoints.inject("site", 0)
