"""Submit/close races on :class:`RedService` under ambient faults.

The contract a serving front door leans on: a service being closed out
from under concurrent submitters never hangs and never leaks an
untyped exception.  Every in-flight future resolves — to a result or
to a taxonomy error that :class:`ErrorInfo` can carry — and every
submit that loses the race gets :class:`ServiceClosedError`.
"""

import threading
import time

import pytest

from repro.api.schema import ErrorInfo, SweepRequest, SweepResult
from repro.api.service import RedService
from repro.errors import ReproError, ServiceClosedError
from repro.reliability import configured_failpoints

SWEEP = SweepRequest(strides=(1, 2, 4))

#: Ambient fault schedule for the race: transient pool/store failures
#: that the service's internal retries absorb or surface as taxonomy
#: errors — deterministic via the pinned seed.
AMBIENT = "pool.worker:io_error@0.1;store.put_many:io_error@0.3"


class TestSubmitCloseRace:
    def test_every_future_resolves_or_raises_typed(self):
        with configured_failpoints(AMBIENT, seed=5):
            service = RedService()
            start = threading.Barrier(5)
            outcomes = []
            lock = threading.Lock()

            def submitter(index: int) -> None:
                start.wait()
                try:
                    futures = [service.submit(SWEEP) for _ in range(3)]
                    results = [f.result(timeout=120.0) for f in futures]
                except (ServiceClosedError, ReproError, OSError) as exc:
                    with lock:
                        outcomes.append(exc)
                    return
                with lock:
                    outcomes.extend(results)

            threads = [
                threading.Thread(target=submitter, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            start.wait()  # all submitters racing now
            time.sleep(0.02)  # let some submissions land in flight
            service.close()
            for t in threads:
                t.join(timeout=180.0)
                assert not t.is_alive(), "submitter hung across close()"

        assert outcomes, "no submitter recorded an outcome"
        for outcome in outcomes:
            if isinstance(outcome, SweepResult):
                continue
            # Anything else must be a taxonomy citizen the wire can
            # represent: ErrorInfo round-trips it without guessing.
            info = ErrorInfo.from_exception(outcome, source="race")
            assert info.error_type == type(outcome).__name__

    def test_submit_after_close_is_permanent_and_typed(self):
        with configured_failpoints(AMBIENT, seed=6):
            service = RedService()
            service.close()
            with pytest.raises(ServiceClosedError) as caught:
                service.submit(SWEEP)
        info = ErrorInfo.from_exception(caught.value, source="race")
        assert info.retryable is False

    def test_inflight_work_completes_before_close_returns(self):
        # close(wait=True semantics): whatever was admitted before the
        # close finishes; the race never abandons a future mid-flight.
        with configured_failpoints(None):
            service = RedService()
            future = service.submit(SWEEP)
            service.close()
            result = future.result(timeout=0.0)  # already resolved
        assert isinstance(result, SweepResult)
