"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so ``pip``
cannot build PEP 660 editable wheels; this file lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
