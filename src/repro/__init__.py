"""RED: A ReRAM-based Deconvolution Accelerator — full reproduction.

Reproduces Fan, Li, Li, Chen & Li, *RED: A ReRAM-based Deconvolution
Accelerator*, DATE 2019 (arXiv:1907.02987): the pixel-wise mapping and
zero-skipping data flow, the two baseline designs it is compared against,
the ReRAM crossbar substrate they all run on, a NeuroSim+-style
latency/energy/area model, and the full evaluation (Tables I-II,
Figs. 4, 7, 8, 9).

Quickstart::

    import numpy as np
    from repro import DeconvSpec, REDDesign, conv_transpose2d

    spec = DeconvSpec(4, 4, 8, 4, 4, 5, stride=2, padding=1)
    rng = np.random.default_rng(0)
    x = rng.random(spec.input_shape)
    w = rng.random(spec.kernel_shape)
    run = REDDesign(spec).run_functional(x, w)
    assert np.allclose(run.output, conv_transpose2d(x, w, spec))
    print(REDDesign(spec).evaluate("demo").latency.total)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from repro.api import (
    EvaluationRequest,
    EvaluationResult,
    NetworkRequest,
    NetworkResult,
    RedService,
    SweepRequest,
    SweepResult,
    available_designs,
    register_design,
)
from repro.arch import DesignMetrics, TechnologyParams, default_tech
from repro.core import (
    REDDesign,
    SubCrossbarTensor,
    ZeroSkippingSchedule,
    build_sct,
    explore_fold_tradeoff,
)
from repro.deconv import (
    DeconvSpec,
    conv_transpose2d,
    padded_zero_fraction,
    padding_free_deconv,
    zero_padding_deconv,
)
from repro.designs import DeconvDesign, FunctionalRun, PaddingFreeDesign, ZeroPaddingDesign
from repro.eval import full_report, run_grid
from repro.workloads import TABLE_I_LAYERS, get_layer

__version__ = "1.1.0"

__all__ = [
    "DeconvSpec",
    "conv_transpose2d",
    "zero_padding_deconv",
    "padding_free_deconv",
    "padded_zero_fraction",
    "ZeroPaddingDesign",
    "PaddingFreeDesign",
    "DeconvDesign",
    "FunctionalRun",
    "REDDesign",
    "build_sct",
    "SubCrossbarTensor",
    "ZeroSkippingSchedule",
    "explore_fold_tradeoff",
    "TechnologyParams",
    "default_tech",
    "DesignMetrics",
    "TABLE_I_LAYERS",
    "get_layer",
    "run_grid",
    "full_report",
    "EvaluationRequest",
    "EvaluationResult",
    "NetworkRequest",
    "NetworkResult",
    "RedService",
    "SweepRequest",
    "SweepResult",
    "available_designs",
    "register_design",
    "__version__",
]
