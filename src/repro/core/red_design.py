"""The RED accelerator design (paper Sec. III-B).

Combines pixel-wise mapping (Eq. 1), the zero-skipping data flow
(Fig. 5c) and, when the kernel is large, the area-efficient fold (Eq. 2).
Three execution paths share one schedule:

* :meth:`REDDesign.run_functional` — fast vectorized execution through the
  SCT slices (per-tap strided scatter), for full-size layers;
* :meth:`REDDesign.run_cycle_accurate` — literal cycle-by-cycle execution
  of the folded schedule (the dataflow the performance model charges),
  for verification on small layers;
* :meth:`REDDesign.run_quantized` — cycle-accurate execution where every
  physical sub-crossbar is a bit-sliced differential ReRAM pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.arch.metrics_batch import PerfInputBatch
from repro.arch.perf_input import DecoderBank, DesignPerfInput
from repro.arch.tech import TechnologyParams
from repro.core.dataflow import ZeroSkippingSchedule, red_cycle_count
from repro.core.fold import FoldedSCT, fold_sct, resolve_fold, resolve_fold_batch
from repro.core.mapping import build_sct
from repro.deconv.analysis import useful_mac_count, useful_mac_count_batch
from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec, SpecArrays
from repro.designs.base import DeconvDesign, FunctionalRun
from repro.reram.bitslice import WeightSlicing
from repro.reram.pipeline import CrossbarPipeline


class REDDesign(DeconvDesign):
    """RED: pixel-wise mapped, zero-skipping ReRAM deconvolution."""

    name = "RED"

    def __init__(
        self,
        spec: DeconvSpec,
        tech: TechnologyParams | None = None,
        fold: int | str = "auto",
        max_sub_crossbars: int = 128,
    ) -> None:
        super().__init__(spec, tech)
        self.fold = resolve_fold(spec, fold, max_sub_crossbars)
        self.max_sub_crossbars = max_sub_crossbars
        self.schedule = ZeroSkippingSchedule(spec)
        self._modes = decompose_modes(spec)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def num_physical_scs(self) -> int:
        """Physical sub-crossbars after folding: ``ceil(KH*KW / fold)``."""
        return -(-self.spec.num_kernel_taps // self.fold)

    @property
    def cycles(self) -> int:
        """Compute rounds for the layer (Fig. 5c + fold)."""
        return red_cycle_count(self.spec, self.fold)

    @property
    def parallel_outputs_per_round(self) -> float:
        """Average output pixels per compute round, ``s^2 / fold``."""
        return self.spec.stride**2 / self.fold

    # ------------------------------------------------------------------
    # Functional simulation (fast path)
    # ------------------------------------------------------------------
    def run_functional(self, x: np.ndarray, w: np.ndarray) -> FunctionalRun:
        """Vectorized execution through the pixel-wise mapping.

        Iterates the SCT tap slices and scatters each sub-crossbar's
        contribution onto its strided output positions — the same
        arithmetic the cycle-accurate path performs round by round.
        """
        self._check_float_operands(x, w)
        spec = self.spec
        sct = build_sct(w.astype(np.float64, copy=False), spec)
        s, p = spec.stride, spec.padding
        oh, ow, m = spec.output_shape
        out = np.zeros((oh, ow, m), dtype=np.float64)
        x64 = x.astype(np.float64, copy=False)
        macs = 0
        for kh in range(spec.kernel_height):
            ys = np.arange(spec.input_height) * s + kh - p
            ymask = (ys >= 0) & (ys < oh)
            if not ymask.any():
                continue
            for kw in range(spec.kernel_width):
                xs = np.arange(spec.input_width) * s + kw - p
                xmask = (xs >= 0) & (xs < ow)
                if not xmask.any():
                    continue
                sub = sct.sub_crossbar(kh, kw)
                patch = x64[ymask][:, xmask, :]
                out[np.ix_(ys[ymask], xs[xmask])] += np.tensordot(
                    patch, sub, axes=([2], [0])
                )
                macs += patch.size * m
        return FunctionalRun(
            output=out,
            cycles=self.cycles,
            counters={
                "sub_crossbars": self.num_physical_scs,
                "fold": self.fold,
                "macs_useful": macs,
            },
        )

    # ------------------------------------------------------------------
    # Functional simulation (cycle-accurate path)
    # ------------------------------------------------------------------
    def run_cycle_accurate(self, x: np.ndarray, w: np.ndarray) -> FunctionalRun:
        """Execute the folded zero-skipping schedule round by round."""
        self._check_float_operands(x, w)
        folded = fold_sct(build_sct(w.astype(np.float64, copy=False), self.spec), self.fold)
        return self._execute_schedule(
            x.astype(np.float64, copy=False), folded, matvec=None
        )

    def run_quantized(self, x_int: np.ndarray, w_int: np.ndarray) -> FunctionalRun:
        """Cycle-accurate execution on per-SC bit-sliced ReRAM pipelines."""
        self._check_int_operands(x_int, w_int)
        folded = fold_sct(build_sct(w_int.astype(np.int64), self.spec), self.fold)
        slicing = WeightSlicing(self.tech.bits_weight, self.tech.bits_per_cell)
        pipelines = [
            CrossbarPipeline(
                folded.data[:, :, n],
                slicing=slicing,
                bits_input=self.tech.bits_input,
            )
            for n in range(folded.num_physical_scs)
        ]

        def matvec(n: int, vector: np.ndarray) -> np.ndarray:
            return pipelines[n].matvec(vector.astype(np.int64)).values

        run = self._execute_schedule(x_int.astype(np.int64), folded, matvec=matvec)
        run.output = run.output.astype(np.int64)
        return run

    def _execute_schedule(
        self,
        x: np.ndarray,
        folded: FoldedSCT,
        matvec,
    ) -> FunctionalRun:
        """Drive the folded SCT through every schedule round.

        ``matvec(n, vector)`` evaluates physical SC ``n``; ``None`` uses
        plain NumPy.  Per round and fold sub-cycle, each physical SC sees
        its Eq. 2 input (live rows for the slot's tap, zeros elsewhere);
        outputs accumulate into the tap's mode output pixel.
        """
        spec = self.spec
        c = spec.in_channels
        oh, ow, m = spec.output_shape
        out = np.zeros((oh, ow, m), dtype=x.dtype)
        kw_count = spec.kernel_width
        # tap index -> (mode output slot later), physical location
        tap_to_phys: dict[int, tuple[int, int]] = {}
        for n, slots in enumerate(folded.tap_slots):
            for f, tap in enumerate(slots):
                if tap is not None:
                    tap_to_phys[tap] = (n, f)

        sc_matvecs = 0
        live_rows = 0
        buffer_reads = 0
        rounds = 0
        for slot in self.schedule.cycles():
            rounds += self.fold
            buffer_reads += len(slot.distinct_inputs)
            # Output pixel per mode index for this block.
            mode_target = {mode: (oy, ox) for oy, ox, mode in slot.outputs}
            tap_mode = {}
            for mode_index, mode in enumerate(self._modes):
                for kh, kw in mode.taps:
                    tap_mode[kh * kw_count + kw] = mode_index
            for f in range(self.fold):
                for n, slots in enumerate(folded.tap_slots):
                    tap = slots[f]
                    if tap is None:
                        continue
                    kh, kw = divmod(tap, kw_count)
                    pixel = slot.assignments.get((kh, kw))
                    if pixel is None:
                        continue
                    mode_index = tap_mode[tap]
                    target = mode_target.get(mode_index)
                    if target is None:
                        continue
                    vector = np.zeros(folded.rows_per_sc, dtype=x.dtype)
                    vector[f * c : (f + 1) * c] = x[pixel[0], pixel[1], :]
                    if matvec is None:
                        contribution = vector @ folded.data[:, :, n]
                    else:
                        contribution = matvec(n, vector)
                    oy, ox = target
                    out[oy, ox, :] += contribution
                    sc_matvecs += 1
                    live_rows += c
        return FunctionalRun(
            output=out,
            cycles=rounds,
            counters={
                "sub_crossbars": folded.num_physical_scs,
                "fold": self.fold,
                "sc_matvecs": sc_matvecs,
                "live_rows": live_rows,
                "buffer_reads": buffer_reads,
            },
        )

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------
    def perf_input(self, layer_name: str = "") -> DesignPerfInput:
        """Counts for Fig. 5: folded SCT geometry, zero-skipping rounds."""
        spec = self.spec
        nonempty_modes = sum(1 for mode in self._modes if mode.taps)
        sc_count = self.num_physical_scs
        useful = useful_mac_count(spec)
        # The integrate-and-fire circuit accumulates a folded SC's charge
        # over its `fold` interleaved cycles before one conversion, so the
        # per-cycle conversion rate divides by fold.
        conv_per_cycle = max(nonempty_modes, 1) * spec.out_channels / self.fold
        return DesignPerfInput(
            design=self.name,
            layer=layer_name,
            spec=spec,
            cycles=self.cycles,
            wordline_cols=spec.out_channels,
            # Mode groups are segments of the same physical column stack
            # (the "vertical sum-up" wiring); worst-case bitline settle is
            # set by the full KH*KW*C stack, matching the zero-padding
            # design's column height — the paper's "similar array latency".
            bitline_rows=spec.num_kernel_taps * spec.in_channels,
            rows_selected_per_cycle=sc_count * self.fold * spec.in_channels,
            decoder_banks=(
                DecoderBank(rows=self.fold * spec.in_channels, count=sc_count),
            ),
            conv_values_per_cycle=conv_per_cycle,
            live_row_cycles_total=useful / spec.out_channels,
            useful_macs=useful,
            total_cells_logical=spec.num_weights,
            broadcast_instances=sc_count,
            sa_extra_ops_per_value=(self.fold - 1) / self.fold,
            col_periphery_sets=max(nonempty_modes, 1),
            col_set_width=spec.out_channels,
            row_bank_instances=sc_count,
        )

    @classmethod
    def perf_input_batch(
        cls,
        specs,
        folds,
        tech=None,
        layer_names=None,
        max_sub_crossbars: int = 128,
    ) -> PerfInputBatch:
        """Closed-form :meth:`perf_input` for many (layer, fold) jobs.

        ``folds`` is a per-job sequence of ``'auto'`` or ints, resolved
        through the same Eq. 2 rule as the constructor
        (:func:`~repro.core.fold.resolve_fold_batch`).  The nonempty
        mode count uses the closed form ``min(KH, s) * min(KW, s)``
        (:func:`~repro.deconv.modes.num_nonempty_modes`) instead of the
        full mode decomposition; everything else is the scalar formula
        applied elementwise.  ``tech`` is accepted for hook uniformity.
        """
        arrays = SpecArrays.from_specs(specs)
        jobs = len(arrays)
        taps = arrays.num_kernel_taps
        fold = resolve_fold_batch(taps, folds, max_sub_crossbars)
        sc_count = -(-taps // fold)
        blocks_y = -(-arrays.output_height // arrays.stride)
        blocks_x = -(-arrays.output_width // arrays.stride)
        nonempty_modes = np.minimum(arrays.kernel_height, arrays.stride) * np.minimum(
            arrays.kernel_width, arrays.stride
        )
        useful = useful_mac_count_batch(arrays)
        return PerfInputBatch(
            designs=(cls.name,) * jobs,
            layers=tuple(layer_names) if layer_names is not None else ("",) * jobs,
            cycles=fold * blocks_y * blocks_x,
            wordline_cols=arrays.out_channels,
            bitline_rows=taps * arrays.in_channels,
            rows_selected_per_cycle=sc_count * fold * arrays.in_channels,
            decoder_rows=(fold * arrays.in_channels)[:, None],
            decoder_counts=sc_count[:, None],
            conv_values_per_cycle=(
                np.maximum(nonempty_modes, 1) * arrays.out_channels / fold
            ),
            live_row_cycles_total=useful / arrays.out_channels,
            useful_macs=useful,
            total_cells_logical=arrays.num_weights,
            broadcast_instances=sc_count,
            sa_extra_ops_per_value=(fold - 1) / fold,
            crop_values_total=np.zeros(jobs, dtype=np.int64),
            col_periphery_sets=np.maximum(nonempty_modes, 1),
            col_set_width=arrays.out_channels,
            row_bank_instances=sc_count,
            has_crop_unit=np.zeros(jobs, dtype=bool),
            overlap_adder_cols=np.zeros(jobs, dtype=np.int64),
        )
