"""Extension study: value-level activation sparsity on top of RED.

RED skips *structural* zeros (the inserted ones).  Deconvolution inputs
are usually post-ReLU activations, so roughly half the *live* pixels are
zero too.  A natural extension — in the spirit of Cnvlutin-style
value-gating — detects all-zero input vectors per sub-crossbar and gates
their wordline data pulses and compute current (cycle count is unchanged:
the schedule is static).

This module quantifies that opportunity: measured per-layer vector
sparsity, the gated activity statistics, and the resulting energy scaling
through the standard evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.breakdown import DesignMetrics
from repro.arch.metrics import evaluate_design
from repro.arch.tech import TechnologyParams, default_tech
from repro.core.dataflow import ZeroSkippingSchedule
from repro.core.red_design import REDDesign
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError


@dataclass(frozen=True)
class SparsityProfile:
    """Measured value-sparsity of one input tensor under the RED schedule.

    Attributes:
        pixel_zero_fraction: fraction of input pixels whose whole
            C-channel vector is zero (gateable per SC feed).
        element_zero_fraction: fraction of scalar activations that are
            zero (bounds bit-serial pulse savings).
        gated_sc_feeds: SC input assignments skipped by the zero detector.
        total_sc_feeds: all SC input assignments in the schedule.
    """

    pixel_zero_fraction: float
    element_zero_fraction: float
    gated_sc_feeds: int
    total_sc_feeds: int

    @property
    def feed_gating_ratio(self) -> float:
        """Fraction of SC feeds the extension eliminates."""
        if self.total_sc_feeds == 0:
            return 0.0
        return self.gated_sc_feeds / self.total_sc_feeds


def measure_sparsity(x: np.ndarray, spec: DeconvSpec) -> SparsityProfile:
    """Profile an input tensor against the zero-skipping schedule."""
    if tuple(x.shape) != spec.input_shape:
        raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
    pixel_live = np.any(x != 0.0, axis=2)
    schedule = ZeroSkippingSchedule(spec)
    gated = 0
    total = 0
    for slot in schedule.cycles():
        for pixel in slot.assignments.values():
            total += 1
            if not pixel_live[pixel[0], pixel[1]]:
                gated += 1
    return SparsityProfile(
        pixel_zero_fraction=float(1.0 - pixel_live.mean()),
        element_zero_fraction=float((x == 0.0).mean()),
        gated_sc_feeds=gated,
        total_sc_feeds=total,
    )


def evaluate_with_sparsity(
    spec: DeconvSpec,
    x: np.ndarray,
    tech: TechnologyParams | None = None,
    layer_name: str = "sparse",
) -> tuple[DesignMetrics, DesignMetrics, SparsityProfile]:
    """Evaluate RED with and without value-level gating.

    Gating scales the live wordline activity and the useful MACs by the
    measured ratios; conversions and cycle counts are unchanged (the
    schedule stays static — this is an energy extension, not a latency
    one).

    Returns:
        ``(baseline_metrics, gated_metrics, profile)``.
    """
    tech = tech or default_tech()
    profile = measure_sparsity(x, spec)
    design = REDDesign(spec, tech=tech)
    base_perf = design.perf_input(layer_name)
    baseline = evaluate_design(base_perf, tech)

    live_scale = 1.0 - profile.feed_gating_ratio
    element_scale = 1.0 - profile.element_zero_fraction
    from dataclasses import replace

    gated_perf = replace(
        base_perf,
        live_row_cycles_total=max(base_perf.live_row_cycles_total * live_scale, 1e-9),
        useful_macs=max(int(base_perf.useful_macs * element_scale), 1),
    )
    gated = evaluate_design(gated_perf, tech)
    return baseline, gated, profile
