"""ASCII visualizations of the paper's schematic figures.

The evaluation figures (4, 7, 8, 9) are regenerated numerically by
:mod:`repro.eval`; the *mechanism* figures are regenerated here as ASCII
diagrams computed from the real mapping/schedule code (not hand-drawn):

* :func:`render_padded_map` — the zero-inserted input of Fig. 2/3a.
* :func:`render_modes` — the computation-mode grids of Fig. 6.
* :func:`render_cycle_table` — the per-cycle SC input assignments of
  Fig. 5c.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataflow import ZeroSkippingSchedule
from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.deconv.zero_padding import zero_insert_input
from repro.utils.formatting import render_ascii_table
from repro.utils.validation import check_positive_int


def render_padded_map(spec: DeconvSpec) -> str:
    """Draw the padded input map: ``#`` live pixels, ``.`` inserted zeros.

    This is the sparsity picture behind Fig. 4: for the SNGAN layer the
    11x11 grid holds only 16 ``#``.
    """
    x = np.ones(spec.input_shape)
    padded = zero_insert_input(x, spec)[:, :, 0]
    lines = [
        "".join("#" if cell else "." for cell in row) for row in padded
    ]
    live = int(padded.sum())
    header = (
        f"padded map {padded.shape[0]}x{padded.shape[1]}, "
        f"{live} live / {padded.size} total "
        f"({(1 - live / padded.size) * 100:.1f}% zero redundancy)"
    )
    return "\n".join([header] + lines)


def render_modes(spec: DeconvSpec) -> str:
    """Draw the kernel tap grid per computation mode (Fig. 6).

    Each mode prints the ``KH x KW`` kernel with its own taps numbered
    (1-based, row-major over the kernel as in the paper) and other taps
    as ``.``.
    """
    modes = decompose_modes(spec)
    blocks: list[str] = []
    for index, mode in enumerate(modes):
        tap_set = set(mode.taps)
        lines = [
            f"mode ({mode.phase_y},{mode.phase_x}) — {mode.num_taps} taps"
        ]
        for kh in range(spec.kernel_height):
            cells = []
            for kw in range(spec.kernel_width):
                number = kh * spec.kernel_width + kw + 1
                cells.append(f"{number:>3}" if (kh, kw) in tap_set else "  .")
            lines.append(" ".join(cells))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_cycle_table(spec: DeconvSpec, num_cycles: int = 2) -> str:
    """Tabulate the first rounds of the zero-skipping schedule (Fig. 5c).

    One row per sub-crossbar: which input pixel ``I(ih, iw)`` it receives
    in each of the first ``num_cycles`` rounds, and which output pixel the
    round produces through it.
    """
    check_positive_int(num_cycles, "num_cycles")
    schedule = ZeroSkippingSchedule(spec)
    blocks_y, blocks_x = schedule.num_blocks
    slots = []
    for index in range(min(num_cycles, blocks_y * blocks_x)):
        by, bx = divmod(index, blocks_x)
        slots.append(schedule.cycle(by, bx))

    headers = ["SC (kh,kw)"] + [f"cycle {i + 1} input" for i in range(len(slots))] + [
        f"cycle {i + 1} output" for i in range(len(slots))
    ]
    mode_of = {}
    for mode_index, mode in enumerate(decompose_modes(spec)):
        for tap in mode.taps:
            mode_of[tap] = mode_index
    rows = []
    for kh in range(spec.kernel_height):
        for kw in range(spec.kernel_width):
            row: list[str] = [f"SC{kh * spec.kernel_width + kw + 1} ({kh},{kw})"]
            outs: list[str] = []
            for slot in slots:
                pixel = slot.assignments.get((kh, kw))
                row.append(f"I({pixel[0]},{pixel[1]})" if pixel else "-")
                target = next(
                    (
                        f"O({oy},{ox})"
                        for oy, ox, mode_index in slot.outputs
                        if mode_index == mode_of.get((kh, kw))
                    ),
                    "-",
                )
                outs.append(target if pixel else "-")
            rows.append(row + outs)
    title = (
        f"Fig. 5c schedule for {spec.describe()} — "
        f"{blocks_y * blocks_x} rounds total"
    )
    return render_ascii_table(headers, rows, title=title)
