"""Bank replication: trading area for throughput.

The fold of Eq. 2 trades *down* (fewer sub-crossbars, more cycles); the
opposite direction is replication — program ``R`` copies of the SCT in
parallel banks and assign each copy a slice of the output blocks, cutting
cycles by ``R`` at ``R``-times the array and periphery cost.  PipeLayer
and ReGAN use exactly this duplication for throughput; this module prices
it for RED so the full area <-> latency axis (fold ... replication) can be
explored as one frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.breakdown import DesignMetrics
from repro.arch.metrics import evaluate_design
from repro.arch.tech import TechnologyParams, default_tech
from repro.core.red_design import REDDesign
from repro.deconv.shapes import DeconvSpec
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ReplicationPoint:
    """One replication factor on the throughput frontier.

    Attributes:
        replicas: SCT copies operating on disjoint output blocks.
        cycles: rounds after replication (ceil division).
        metrics: evaluated latency/energy/area.
    """

    replicas: int
    cycles: int
    metrics: DesignMetrics

    @property
    def latency(self) -> float:
        """Seconds for the layer."""
        return self.metrics.latency.total

    @property
    def area(self) -> float:
        """Square metres, all replicas."""
        return self.metrics.area.total


def replicate_red(
    spec: DeconvSpec,
    replicas: int,
    tech: TechnologyParams | None = None,
    fold: int | str = "auto",
    layer_name: str = "replicated",
) -> ReplicationPoint:
    """Evaluate RED with ``replicas`` parallel SCT copies.

    Cycles divide by the replica count (output blocks are independent);
    per-cycle work (rows selected, conversions) multiplies — total energy
    is therefore unchanged to first order while latency drops.  Weights
    are duplicated, so cells and all periphery multiply by ``replicas``.
    """
    check_positive_int(replicas, "replicas")
    tech = tech or default_tech()
    design = REDDesign(spec, tech=tech, fold=fold)
    base = design.perf_input(layer_name)
    cycles = -(-base.cycles // replicas)
    perf = replace(
        base,
        cycles=cycles,
        rows_selected_per_cycle=base.rows_selected_per_cycle * replicas,
        conv_values_per_cycle=base.conv_values_per_cycle * replicas,
        total_cells_logical=base.total_cells_logical * replicas,
        broadcast_instances=base.broadcast_instances * replicas,
        row_bank_instances=base.row_bank_instances * replicas,
        col_periphery_sets=base.col_periphery_sets * replicas,
        decoder_banks=tuple(
            replace(bank, count=bank.count * replicas) for bank in base.decoder_banks
        ),
    )
    return ReplicationPoint(
        replicas=replicas, cycles=cycles, metrics=evaluate_design(perf, tech)
    )


def replication_frontier(
    spec: DeconvSpec,
    factors: tuple[int, ...] = (1, 2, 4, 8),
    tech: TechnologyParams | None = None,
) -> list[ReplicationPoint]:
    """Evaluate a sweep of replication factors (ascending)."""
    return [replicate_red(spec, r, tech) for r in sorted(set(factors))]
