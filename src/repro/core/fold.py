"""Area-efficient fold (paper Eq. 2, Sec. III-C).

When ``KH * KW`` sub-crossbars are too many (FCN stride-8 needs 256), RED
halves the SC count by stacking ``fold`` taps into one physical SC of
``fold * C`` rows and interleaving their input vectors over ``fold``
cycles:

    Cycle 1:  In[0:C]   = I_even,   In[C:2C]  = 0
    Cycle 2:  In[0:C]   = 0,        In[C:2C]  = I_odd            (Eq. 2)

Because only one row segment is live per cycle, the folded SC's output is
exactly the live tap's contribution; the existing accumulators merge the
``fold`` cycles.  The paper's configuration: 128 physical SCs complete the
64 stride-8 computation modes in two cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mapping import SubCrossbarTensor
from repro.deconv.modes import decompose_modes
from repro.errors import MappingError, ParameterError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class FoldedSCT:
    """A folded sub-crossbar tensor.

    Attributes:
        data: array ``(fold * C, M, num_folded_scs)``; physical SC ``n``
            stacks ``fold`` original taps, tap slot ``f`` occupying rows
            ``[f*C, (f+1)*C)``.
        tap_slots: ``tap_slots[n][f]`` is the flat tap index stored in
            slot ``f`` of physical SC ``n`` (or ``None`` padding).
        fold: interleave factor (1 = unfolded).
        base: the original (unfolded) tensor's spec carrier.
    """

    data: np.ndarray
    tap_slots: tuple[tuple[int | None, ...], ...]
    fold: int
    base: SubCrossbarTensor

    @property
    def num_physical_scs(self) -> int:
        """Physical sub-crossbars after folding."""
        return self.data.shape[2]

    @property
    def rows_per_sc(self) -> int:
        """Rows per physical SC, ``fold * C``."""
        return self.data.shape[0]

    def slot_of_tap(self, tap: int) -> tuple[int, int]:
        """Locate tap: returns ``(physical_sc, slot)``."""
        for n, slots in enumerate(self.tap_slots):
            for f, stored in enumerate(slots):
                if stored == tap:
                    return (n, f)
        raise MappingError(f"tap {tap} not present in folded tensor")


def choose_fold(spec, max_sub_crossbars: int = 128) -> int:
    """Smallest power-of-two fold keeping the SC count within budget.

    The paper folds FCN stride-8 (256 taps) by 2 into 128 physical SCs;
    GAN kernels (16-25 taps) stay unfolded.
    """
    check_positive_int(max_sub_crossbars, "max_sub_crossbars")
    taps = spec.num_kernel_taps
    fold = 1
    while -(-taps // fold) > max_sub_crossbars:
        fold *= 2
    return fold


def resolve_fold(spec, fold: int | str, max_sub_crossbars: int = 128) -> int:
    """The single ``'auto'``/int fold-resolution rule.

    Shared by :class:`~repro.core.red_design.REDDesign`, the batch engine
    and the parallel runner so the accepted values can never diverge.
    """
    if fold == "auto":
        return choose_fold(spec, max_sub_crossbars)
    if isinstance(fold, int) and fold >= 1:
        return fold
    raise ParameterError(f"fold must be 'auto' or an int >= 1, got {fold!r}")


def choose_fold_batch(num_taps, max_sub_crossbars: int = 128) -> np.ndarray:
    """Vectorized :func:`choose_fold`: one fold per tap count.

    Same doubling rule — smallest power of two keeping
    ``ceil(taps / fold) <= max_sub_crossbars`` — applied to an ``int64``
    array of ``KH * KW`` values at once.
    """
    check_positive_int(max_sub_crossbars, "max_sub_crossbars")
    taps = np.asarray(num_taps, dtype=np.int64)
    fold = np.ones_like(taps)
    while True:
        over = -(-taps // fold) > max_sub_crossbars
        if not over.any():
            return fold
        fold[over] *= 2


def resolve_fold_batch(num_taps, folds, max_sub_crossbars: int = 128) -> np.ndarray:
    """Vectorized :func:`resolve_fold` over per-job ``'auto'``/int folds.

    ``folds`` is a sequence aligned with ``num_taps``; every entry must
    be ``'auto'`` or an int >= 1 (the scalar rule), otherwise
    :class:`~repro.errors.ParameterError` is raised exactly as the
    scalar path would.
    """
    taps = np.asarray(num_taps, dtype=np.int64)
    if taps.shape[0] != len(folds):
        raise ParameterError(
            f"got {taps.shape[0]} tap counts but {len(folds)} folds"
        )
    resolved = np.empty_like(taps)
    auto = np.zeros(taps.shape[0], dtype=bool)
    for index, fold in enumerate(folds):
        if fold == "auto":
            auto[index] = True
        elif isinstance(fold, int) and fold >= 1:
            resolved[index] = fold
        else:
            raise ParameterError(f"fold must be 'auto' or an int >= 1, got {fold!r}")
    if auto.any():
        resolved[auto] = choose_fold_batch(taps[auto], max_sub_crossbars)
    return resolved


def fold_tap_slots(spec, fold: int) -> tuple[tuple[int | None, ...], ...]:
    """Eq. 2 tap-to-slot geometry: ``result[n][f]`` is the flat tap index
    stored in slot ``f`` of physical SC ``n`` (or ``None`` padding).

    Taps are grouped mode-by-mode so bitline-sharing groups stay intact:
    folding merges taps that would be summed anyway.  Shared by
    :func:`fold_sct` (which adds the weight data) and the cycle engine's
    schedule compiler (which only needs the geometry).
    """
    check_positive_int(fold, "fold")
    taps = spec.num_kernel_taps
    # Mode-major tap order keeps folded partners within one summation group.
    ordered: list[int] = []
    for mode in decompose_modes(spec):
        ordered.extend(kh * spec.kernel_width + kw for kh, kw in mode.taps)
    if sorted(ordered) != list(range(taps)):
        raise MappingError("mode decomposition does not partition the taps")
    num_phys = -(-taps // fold)
    return tuple(
        tuple(
            ordered[n * fold + f] if n * fold + f < taps else None
            for f in range(fold)
        )
        for n in range(num_phys)
    )


def fold_sct(sct: SubCrossbarTensor, fold: int) -> FoldedSCT:
    """Stack taps ``fold``-deep into physical SCs (Eq. 2 geometry)."""
    tap_slots = fold_tap_slots(sct.spec, fold)
    c, m, taps = sct.data.shape
    if taps != sct.spec.num_kernel_taps:
        raise MappingError(
            f"SCT holds {taps} taps but the spec has {sct.spec.num_kernel_taps}"
        )
    data = np.zeros((fold * c, m, len(tap_slots)), dtype=sct.data.dtype)
    for n, slots in enumerate(tap_slots):
        for f, tap in enumerate(slots):
            if tap is not None:
                data[f * c : (f + 1) * c, :, n] = sct.data[:, :, tap]
    return FoldedSCT(data=data, tap_slots=tap_slots, fold=fold, base=sct)


def unfold_sct(folded: FoldedSCT) -> SubCrossbarTensor:
    """Recover the original SCT from a folded tensor (exact inverse)."""
    base = folded.base
    c = base.spec.in_channels
    data = np.zeros_like(base.data)
    for n, slots in enumerate(folded.tap_slots):
        for f, tap in enumerate(slots):
            if tap is not None:
                data[:, :, tap] = folded.data[f * c : (f + 1) * c, :, n]
    return SubCrossbarTensor(data=data, spec=base.spec)
