"""Design trade-off exploration (paper Sec. III-C).

RED's parallelism is ``stride^2 / fold``; each doubling of ``fold`` halves
the sub-crossbar count (and its duplicated row periphery) while doubling
the round count.  :func:`explore_fold_tradeoff` sweeps ``fold`` and
returns the latency/energy/area frontier, reproducing the paper's
observation that stride-8 FCN kernels are best run folded (256 taps on
128 physical SCs, two cycles per round).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.breakdown import DesignMetrics
from repro.arch.tech import TechnologyParams
from repro.core.red_design import REDDesign
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError


@dataclass(frozen=True)
class TradeoffPoint:
    """One fold configuration on the area/performance frontier."""

    fold: int
    num_physical_scs: int
    cycles: int
    metrics: DesignMetrics

    @property
    def latency(self) -> float:
        """Total latency in seconds."""
        return self.metrics.latency.total

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return self.metrics.energy.total

    @property
    def area(self) -> float:
        """Total area in square metres."""
        return self.metrics.area.total


def explore_fold_tradeoff(
    spec: DeconvSpec,
    folds: tuple[int, ...] | None = None,
    tech: TechnologyParams | None = None,
    layer_name: str = "",
) -> list[TradeoffPoint]:
    """Evaluate RED across fold factors.

    Args:
        spec: the deconvolution layer.
        folds: fold factors to test; defaults to powers of two up to the
            tap count.
        tech: technology constants.
        layer_name: label threaded into the metrics.

    Returns:
        One :class:`TradeoffPoint` per fold, in increasing fold order.
    """
    if folds is None:
        folds_list = []
        f = 1
        while f <= spec.num_kernel_taps:
            folds_list.append(f)
            f *= 2
        folds = tuple(folds_list)
    if not folds:
        raise ParameterError("folds must be non-empty")
    points = []
    for fold in sorted(set(folds)):
        design = REDDesign(spec, tech=tech, fold=fold)
        points.append(
            TradeoffPoint(
                fold=fold,
                num_physical_scs=design.num_physical_scs,
                cycles=design.cycles,
                metrics=design.evaluate(layer_name),
            )
        )
    return points
