"""RED: the paper's contribution.

* :mod:`repro.core.mapping` — pixel-wise mapping (Eq. 1): kernel ->
  sub-crossbar tensor (SCT).
* :mod:`repro.core.dataflow` — zero-skipping data flow (Fig. 5c): the
  per-cycle schedule feeding only non-zero pixels.
* :mod:`repro.core.fold` — the area-efficient fold (Eq. 2, Sec. III-C).
* :mod:`repro.core.red_design` — the full RED accelerator design.
* :mod:`repro.core.tradeoff` — the Sec. III-C area/parallelism explorer.
"""

from repro.core.dataflow import (
    CycleSlot,
    ZeroSkippingSchedule,
    red_cycle_count,
)
from repro.core.fold import FoldedSCT, choose_fold, fold_sct
from repro.core.mapping import SubCrossbarTensor, build_sct, kernel_from_sct
from repro.core.red_design import REDDesign
from repro.core.tradeoff import TradeoffPoint, explore_fold_tradeoff

__all__ = [
    "SubCrossbarTensor",
    "build_sct",
    "kernel_from_sct",
    "CycleSlot",
    "ZeroSkippingSchedule",
    "red_cycle_count",
    "FoldedSCT",
    "fold_sct",
    "choose_fold",
    "REDDesign",
    "TradeoffPoint",
    "explore_fold_tradeoff",
]
