"""Pixel-wise mapping (paper Eq. 1).

The 4-D deconvolution kernel ``W (KH, KW, C, M)`` maps onto ``KH*KW``
sub-crossbars ("SC"s), each a ``C x M`` matrix, forming the sub-crossbar
tensor (SCT):

    ``SCT[c, m, i * KW + j] = W[i, j, c, m]``            (Eq. 1)

Each SC holds exactly one kernel tap across all channels and filters, so
the taps of one computation mode (Fig. 6) can be summed on shared bitlines
("vertical sum-up") while taps of different modes run concurrently — the
structural property behind the zero-skipping data flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.errors import MappingError, ShapeError


@dataclass(frozen=True)
class SubCrossbarTensor:
    """The SCT of Eq. 1 plus its layer spec.

    Attributes:
        data: array of shape ``(C, M, KH*KW)``; slice ``[..., t]`` is the
            sub-crossbar of kernel tap ``t = kh * KW + kw``.
        spec: the layer the tensor was built for.
    """

    data: np.ndarray
    spec: DeconvSpec

    def __post_init__(self) -> None:
        expected = (
            self.spec.in_channels,
            self.spec.out_channels,
            self.spec.num_kernel_taps,
        )
        if tuple(self.data.shape) != expected:
            raise MappingError(
                f"SCT shape {self.data.shape} != expected {expected}"
            )

    @property
    def num_sub_crossbars(self) -> int:
        """``KH * KW`` sub-crossbars."""
        return self.data.shape[2]

    def tap_index(self, kh: int, kw: int) -> int:
        """Flat tap index ``kh * KW + kw`` with bounds checking."""
        if not (0 <= kh < self.spec.kernel_height and 0 <= kw < self.spec.kernel_width):
            raise MappingError(
                f"tap ({kh}, {kw}) outside kernel "
                f"{self.spec.kernel_height}x{self.spec.kernel_width}"
            )
        return kh * self.spec.kernel_width + kw

    def sub_crossbar(self, kh: int, kw: int) -> np.ndarray:
        """The ``C x M`` sub-crossbar for kernel tap ``(kh, kw)``."""
        return self.data[:, :, self.tap_index(kh, kw)]

    def mode_sub_crossbars(self) -> list[list[int]]:
        """Tap indices grouped by computation mode (bitline-sharing groups)."""
        groups = []
        for mode in decompose_modes(self.spec):
            groups.append([self.tap_index(kh, kw) for kh, kw in mode.taps])
        return groups


def build_sct(w: np.ndarray, spec: DeconvSpec) -> SubCrossbarTensor:
    """Apply Eq. 1: reorder the kernel into the sub-crossbar tensor."""
    if tuple(w.shape) != spec.kernel_shape:
        raise ShapeError(f"kernel shape {w.shape} != spec {spec.kernel_shape}")
    kh, kw, c, m = w.shape
    data = w.transpose(2, 3, 0, 1).reshape(c, m, kh * kw)
    return SubCrossbarTensor(data=data, spec=spec)


def kernel_from_sct(sct: SubCrossbarTensor) -> np.ndarray:
    """Invert Eq. 1, recovering the ``(KH, KW, C, M)`` kernel exactly."""
    spec = sct.spec
    c, m, taps = sct.data.shape
    return sct.data.reshape(c, m, spec.kernel_height, spec.kernel_width).transpose(
        2, 3, 0, 1
    )
