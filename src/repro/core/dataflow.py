"""Zero-skipping data flow (paper Fig. 5c).

RED never feeds inserted zeros: each cycle it gathers the handful of live
input pixels that an ``stride x stride`` block of output pixels depends on
and routes them to the sub-crossbars.  Output pixel ``(oy, ox)`` of phase
``(oy mod s, ox mod s)`` draws from tap ``(kh, kw)`` the input pixel
``ih = (oy + p - kh) / s`` (when integral and in range) — every tap of a
mode is live for its phase, taps of other modes idle, so all ``stride^2``
modes of a block execute concurrently and a layer finishes in

    ``ceil(OH / s) * ceil(OW / s)``

rounds instead of the zero-padding design's ``OH * OW``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.deconv.modes import ComputationMode, decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.errors import ScheduleError


@dataclass(frozen=True)
class CycleSlot:
    """One compute round of the zero-skipping schedule.

    Attributes:
        block: output block index ``(by, bx)``; the block covers output
            pixels ``[by*s, by*s + s) x [bx*s, bx*s + s)``.
        assignments: mapping tap ``(kh, kw)`` -> live input pixel
            ``(ih, iw)``.  Taps absent from the dict receive no (i.e. zero)
            input this round — they fall outside the input at the borders.
        outputs: produced output pixels as ``(oy, ox, mode_index)``.
    """

    block: tuple[int, int]
    assignments: dict[tuple[int, int], tuple[int, int]]
    outputs: tuple[tuple[int, int, int], ...]

    @property
    def num_active_sub_crossbars(self) -> int:
        """Sub-crossbars receiving a live input this round."""
        return len(self.assignments)

    @property
    def distinct_inputs(self) -> set[tuple[int, int]]:
        """Distinct input pixels fetched this round (buffer reads)."""
        return set(self.assignments.values())


def red_cycle_count(spec: DeconvSpec, fold: int = 1) -> int:
    """Closed-form RED round count: ``fold * ceil(OH/s) * ceil(OW/s)``."""
    if fold < 1:
        raise ScheduleError(f"fold must be >= 1, got {fold}")
    s = spec.stride
    blocks_y = -(-spec.output_height // s)
    blocks_x = -(-spec.output_width // s)
    return fold * blocks_y * blocks_x


class ZeroSkippingSchedule:
    """Generates the per-cycle input/output assignments of Fig. 5c."""

    def __init__(self, spec: DeconvSpec) -> None:
        self.spec = spec
        self.modes: list[ComputationMode] = decompose_modes(spec)

    @property
    def num_blocks(self) -> tuple[int, int]:
        """Output block grid ``(ceil(OH/s), ceil(OW/s))``."""
        s = self.spec.stride
        return (-(-self.spec.output_height // s), -(-self.spec.output_width // s))

    def cycle(self, by: int, bx: int) -> CycleSlot:
        """Build the :class:`CycleSlot` for output block ``(by, bx)``."""
        spec = self.spec
        s, p = spec.stride, spec.padding
        blocks_y, blocks_x = self.num_blocks
        if not (0 <= by < blocks_y and 0 <= bx < blocks_x):
            raise ScheduleError(f"block ({by}, {bx}) outside grid {self.num_blocks}")
        assignments: dict[tuple[int, int], tuple[int, int]] = {}
        outputs: list[tuple[int, int, int]] = []
        for mode_index, mode in enumerate(self.modes):
            oy = by * s + mode.phase_y
            ox = bx * s + mode.phase_x
            if oy >= spec.output_height or ox >= spec.output_width:
                continue
            # Empty modes (kernel smaller than stride) still own their
            # output pixels — the value is identically zero but the pixel
            # must be written once.
            for kh, kw in mode.taps:
                num_y = oy + p - kh
                num_x = ox + p - kw
                # Mode membership guarantees divisibility; range may fail
                # at the borders.
                ih, iw = num_y // s, num_x // s
                if 0 <= ih < spec.input_height and 0 <= iw < spec.input_width:
                    if (kh, kw) in assignments:
                        raise ScheduleError(
                            f"tap ({kh}, {kw}) double-booked in block ({by}, {bx})"
                        )
                    assignments[(kh, kw)] = (ih, iw)
            # The output pixel exists even when every tap was border-
            # clipped (its value is then zero).
            outputs.append((oy, ox, mode_index))
        return CycleSlot(
            block=(by, bx),
            assignments=assignments,
            outputs=tuple(outputs),
        )

    def cycles(self) -> Iterator[CycleSlot]:
        """Iterate all compute rounds in row-major block order."""
        blocks_y, blocks_x = self.num_blocks
        for by in range(blocks_y):
            for bx in range(blocks_x):
                yield self.cycle(by, bx)

    def coverage_check(self) -> None:
        """Raise unless every output pixel is produced exactly once."""
        spec = self.spec
        seen = set()
        for slot in self.cycles():
            for oy, ox, _mode in slot.outputs:
                if (oy, ox) in seen:
                    raise ScheduleError(f"output ({oy}, {ox}) produced twice")
                seen.add((oy, ox))
        expected = spec.num_output_pixels
        if len(seen) != expected:
            raise ScheduleError(
                f"schedule covers {len(seen)} output pixels, expected {expected}"
            )
