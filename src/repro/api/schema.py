"""Versioned request/response schema for the service-layer API.

Every payload that crosses the service boundary — CLI ``--json`` output,
:class:`~repro.api.service.RedService` arguments and results, exported
records — is one of the frozen dataclasses below.  Each type:

* carries a ``schema_version`` field (:data:`SCHEMA_VERSION`) so readers
  can reject payloads from an unsupported API generation — every
  version in :data:`SUPPORTED_SCHEMA_VERSIONS` still parses, and a
  parsed payload keeps the version it arrived with so v1 round-trips
  stay v1 (:func:`downgrade_payload` rewrites v2 trees for v1 readers);
* round-trips exactly: ``T.from_dict(t.to_dict()) == t``, including
  through ``json.dumps``/``json.loads`` (property-tested in
  ``tests/api/test_schema.py``);
* validates strictly — wrong version, unknown keys, missing required
  keys and malformed values all raise
  :class:`~repro.errors.SchemaError`, never produce a half-built object.

``to_dict`` emits JSON-native values only (dicts, lists, strings,
numbers, booleans, ``None``); ``from_dict`` restores the frozen tuple
forms.  The generic :func:`payload_from_dict` dispatches on the
``"kind"`` discriminator every ``to_dict`` embeds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

from repro.arch.breakdown import (
    AreaBreakdown,
    DesignMetrics,
    EnergyBreakdown,
    LatencyBreakdown,
)
from repro.arch.tech import TechnologyParams, default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import SchemaError
from repro.eval.parallel import CycleStats

#: The current request/response schema generation.  Bump on any change
#: to the payload shapes below.  Version 2 added the serving plane's
#: ``ErrorInfo.retry_after_s`` overload-backoff hint.
SCHEMA_VERSION = 2

#: Every generation this library still parses.  Version 1 payloads
#: (no ``retry_after_s``) remain readable and round-trip unchanged, so
#: v1 clients keep working against a v2 server.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})

_TECH_FIELDS = frozenset(f.name for f in fields(TechnologyParams))


# ----------------------------------------------------------------------
# Strict payload plumbing
# ----------------------------------------------------------------------
def _require_mapping(payload, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise SchemaError(f"{kind} payload must be a mapping, got {type(payload).__name__}")
    return payload


def _check_keys(payload: dict, kind: str, required: frozenset, optional: frozenset) -> None:
    keys = set(payload)
    missing = required - keys
    if missing:
        raise SchemaError(f"{kind} payload is missing keys {sorted(missing)}")
    unknown = keys - required - optional
    if unknown:
        raise SchemaError(f"{kind} payload has unknown keys {sorted(unknown)}")


def _check_version(payload: dict, kind: str) -> None:
    version = payload.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaError(
            f"{kind} payload has schema_version {version!r}; "
            f"this library speaks versions {sorted(SUPPORTED_SCHEMA_VERSIONS)}"
        )


def _check_instance_version(kind: str, version) -> None:
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaError(
            f"{kind} schema_version {version!r} is not one of the "
            f"supported versions {sorted(SUPPORTED_SCHEMA_VERSIONS)}"
        )


def _check_kind(payload: dict, kind: str) -> None:
    declared = payload.get("kind", kind)
    if declared != kind:
        raise SchemaError(f"expected a {kind!r} payload, got kind {declared!r}")


def _normalize_overrides(overrides) -> tuple[tuple[str, object], ...]:
    """Tech overrides as a sorted, hashable, validated tuple of pairs."""
    if overrides is None:
        return ()
    if isinstance(overrides, dict):
        items = overrides.items()
    else:
        try:
            items = [(k, v) for k, v in overrides]
        except (TypeError, ValueError):
            raise SchemaError(
                f"tech_overrides must be a mapping or (name, value) pairs, "
                f"got {overrides!r}"
            ) from None
    normalized = []
    for name, value in sorted(items):
        if name not in _TECH_FIELDS:
            raise SchemaError(
                f"unknown TechnologyParams field {name!r} in tech_overrides"
            )
        if not isinstance(value, (int, float, bool)):
            raise SchemaError(
                f"tech_overrides[{name!r}] must be a number or bool, got {value!r}"
            )
        normalized.append((name, value))
    return tuple(normalized)


def _resolve_tech(
    overrides: tuple[tuple[str, object], ...], base: TechnologyParams | None = None
) -> TechnologyParams:
    base = base or default_tech()
    if not overrides:
        return base
    return dataclasses.replace(base, **dict(overrides))


# ----------------------------------------------------------------------
# Leaf serializers: spec, metrics, cycle stats
# ----------------------------------------------------------------------
def spec_to_dict(spec: DeconvSpec) -> dict:
    """A :class:`DeconvSpec` as a flat JSON mapping."""
    return {f.name: getattr(spec, f.name) for f in fields(spec)}


def spec_from_dict(payload) -> DeconvSpec:
    """Rebuild a :class:`DeconvSpec`; shape errors become SchemaError."""
    payload = _require_mapping(payload, "spec")
    names = frozenset(f.name for f in fields(DeconvSpec))
    required = frozenset(
        f.name for f in fields(DeconvSpec)
        if f.default is dataclasses.MISSING
    )
    _check_keys(payload, "spec", required, names - required)
    try:
        return DeconvSpec(**payload)
    except Exception as exc:
        raise SchemaError(f"invalid spec payload: {exc}") from exc


def _breakdown_to_dict(breakdown) -> dict:
    return breakdown.as_dict()


def _breakdown_from_dict(payload, cls):
    payload = _require_mapping(payload, cls.__name__)
    names = frozenset(f.name for f in fields(cls))
    _check_keys(payload, cls.__name__, frozenset(), names)
    try:
        return cls(**{k: float(v) for k, v in payload.items()})
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"invalid {cls.__name__} payload: {exc}") from exc


def metrics_to_dict(metrics: DesignMetrics) -> dict:
    """A :class:`DesignMetrics` as nested JSON mappings."""
    return {
        "design": metrics.design,
        "layer": metrics.layer,
        "cycles": metrics.cycles,
        "latency": _breakdown_to_dict(metrics.latency),
        "energy": _breakdown_to_dict(metrics.energy),
        "area": _breakdown_to_dict(metrics.area),
    }


def metrics_from_dict(payload) -> DesignMetrics:
    """Rebuild a :class:`DesignMetrics` from :func:`metrics_to_dict`."""
    payload = _require_mapping(payload, "metrics")
    _check_keys(
        payload,
        "metrics",
        frozenset({"design", "layer", "cycles", "latency", "energy", "area"}),
        frozenset(),
    )
    return DesignMetrics(
        design=str(payload["design"]),
        layer=str(payload["layer"]),
        cycles=int(payload["cycles"]),
        latency=_breakdown_from_dict(payload["latency"], LatencyBreakdown),
        energy=_breakdown_from_dict(payload["energy"], EnergyBreakdown),
        area=_breakdown_from_dict(payload["area"], AreaBreakdown),
    )


def cycle_stats_to_dict(stats: CycleStats) -> dict:
    """A :class:`CycleStats` as a JSON mapping (counters become a dict)."""
    return {
        "design": stats.design,
        "layer": stats.layer,
        "fold": stats.fold,
        "cycles": stats.cycles,
        "counters": dict(stats.counters),
    }


def cycle_stats_from_dict(payload) -> CycleStats:
    """Rebuild a :class:`CycleStats` from :func:`cycle_stats_to_dict`."""
    payload = _require_mapping(payload, "cycle_stats")
    _check_keys(
        payload,
        "cycle_stats",
        frozenset({"design", "layer", "fold", "cycles", "counters"}),
        frozenset(),
    )
    counters = _require_mapping(payload["counters"], "cycle_stats.counters")
    return CycleStats(
        design=str(payload["design"]),
        layer=str(payload["layer"]),
        fold=int(payload["fold"]),
        cycles=int(payload["cycles"]),
        counters=tuple(sorted((str(k), int(v)) for k, v in counters.items())),
    )


def _validate_fold(fold) -> None:
    if fold is None or fold == "auto":
        return
    if isinstance(fold, bool) or not isinstance(fold, int) or fold < 1:
        raise SchemaError(f"fold must be a positive int, 'auto' or None, got {fold!r}")


def _tuple_of_str(value, label: str) -> tuple[str, ...]:
    if isinstance(value, str):
        raise SchemaError(f"{label} must be a sequence of names, got the string {value!r}")
    try:
        return tuple(str(v) for v in value)
    except TypeError:
        raise SchemaError(f"{label} must be a sequence of names, got {value!r}") from None


# ----------------------------------------------------------------------
# Evaluation: one layer, N designs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationRequest:
    """Evaluate one layer across designs.

    Exactly one of ``layer`` (a Table I benchmark-layer name) or
    ``spec`` must be given.  ``designs`` may use registry aliases; empty
    means "every registered design, in registration order".

    Attributes:
        layer: Table I layer name, or ``None`` when ``spec`` is given.
        spec: explicit layer shape, or ``None`` when ``layer`` is given.
        designs: design names/aliases; ``()`` -> all registered.
        fold: Eq. 2 fold for fold-aware designs (``None`` -> design default).
        tech_overrides: ``TechnologyParams`` field overrides, applied to
            the service's base technology.
        trace: also run the cycle-level engine and return
            :class:`~repro.eval.parallel.CycleStats` per capable design.
        layer_name: label carried into the metrics (defaults to
            ``layer`` or the spec description).
    """

    layer: str | None = None
    spec: DeconvSpec | None = None
    designs: tuple[str, ...] = ()
    fold: int | str | None = None
    tech_overrides: tuple[tuple[str, object], ...] = ()
    trace: bool = False
    layer_name: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("EvaluationRequest", self.schema_version)
        if (self.layer is None) == (self.spec is None):
            raise SchemaError(
                "exactly one of 'layer' (a benchmark-layer name) or 'spec' "
                "must be provided"
            )
        if self.spec is not None and not isinstance(self.spec, DeconvSpec):
            raise SchemaError(f"spec must be a DeconvSpec, got {type(self.spec).__name__}")
        _validate_fold(self.fold)
        object.__setattr__(self, "designs", _tuple_of_str(self.designs, "designs"))
        object.__setattr__(
            self, "tech_overrides", _normalize_overrides(self.tech_overrides)
        )

    def resolved_tech(self, base: TechnologyParams | None = None) -> TechnologyParams:
        """The concrete technology after applying the overrides."""
        return _resolve_tech(self.tech_overrides, base)

    def to_dict(self) -> dict:
        return {
            "kind": "evaluation_request",
            "schema_version": self.schema_version,
            "layer": self.layer,
            "spec": None if self.spec is None else spec_to_dict(self.spec),
            "designs": list(self.designs),
            "fold": self.fold,
            "tech_overrides": dict(self.tech_overrides),
            "trace": self.trace,
            "layer_name": self.layer_name,
        }

    @classmethod
    def from_dict(cls, payload) -> "EvaluationRequest":
        payload = _require_mapping(payload, "evaluation_request")
        _check_kind(payload, "evaluation_request")
        _check_version(payload, "evaluation_request")
        _check_keys(
            payload,
            "evaluation_request",
            frozenset({"schema_version"}),
            frozenset(
                {"kind", "layer", "spec", "designs", "fold", "tech_overrides",
                 "trace", "layer_name"}
            ),
        )
        spec = payload.get("spec")
        return cls(
            layer=payload.get("layer"),
            spec=None if spec is None else spec_from_dict(spec),
            designs=tuple(payload.get("designs", ())),
            fold=payload.get("fold"),
            tech_overrides=payload.get("tech_overrides", ()),
            trace=bool(payload.get("trace", False)),
            layer_name=str(payload.get("layer_name", "")),
            schema_version=payload["schema_version"],
        )


@dataclass(frozen=True)
class EvaluationResult:
    """Per-design metrics (and optional cycle stats) for one layer.

    Attributes:
        layer: the evaluated layer's label.
        designs: canonical design names, in evaluation order.
        metrics: one :class:`DesignMetrics` per design.
        cycle_stats: cycle-level stats aligned with ``designs`` when the
            request asked for a trace (``None`` per design without a
            cycle engine); empty tuple otherwise.
    """

    layer: str
    designs: tuple[str, ...]
    metrics: tuple[DesignMetrics, ...]
    cycle_stats: tuple[CycleStats | None, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("EvaluationResult", self.schema_version)
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "cycle_stats", tuple(self.cycle_stats))
        if len(self.designs) != len(self.metrics):
            raise SchemaError(
                f"{len(self.designs)} designs but {len(self.metrics)} metrics"
            )
        if self.cycle_stats and len(self.cycle_stats) != len(self.designs):
            raise SchemaError(
                f"{len(self.designs)} designs but {len(self.cycle_stats)} cycle stats"
            )

    def metrics_for(self, design: str) -> DesignMetrics:
        """Metrics for one design name."""
        for name, metrics in zip(self.designs, self.metrics):
            if name == design:
                return metrics
        raise KeyError(f"design {design!r} not in result ({self.designs})")

    def to_dict(self) -> dict:
        return {
            "kind": "evaluation_result",
            "schema_version": self.schema_version,
            "layer": self.layer,
            "designs": list(self.designs),
            "metrics": [metrics_to_dict(m) for m in self.metrics],
            "cycle_stats": [
                None if s is None else cycle_stats_to_dict(s) for s in self.cycle_stats
            ],
        }

    @classmethod
    def from_dict(cls, payload) -> "EvaluationResult":
        payload = _require_mapping(payload, "evaluation_result")
        _check_kind(payload, "evaluation_result")
        _check_version(payload, "evaluation_result")
        _check_keys(
            payload,
            "evaluation_result",
            frozenset({"schema_version", "layer", "designs", "metrics"}),
            frozenset({"kind", "cycle_stats"}),
        )
        return cls(
            layer=str(payload["layer"]),
            designs=tuple(str(d) for d in payload["designs"]),
            metrics=tuple(metrics_from_dict(m) for m in payload["metrics"]),
            cycle_stats=tuple(
                None if s is None else cycle_stats_from_dict(s)
                for s in payload.get("cycle_stats", ())
            ),
            schema_version=payload["schema_version"],
        )


# ----------------------------------------------------------------------
# Stride sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRequest:
    """The Sec. III-C stride-speedup sweep, parameterized.

    Attributes mirror :func:`repro.eval.sweeps.stride_speedup_sweep`.
    """

    strides: tuple[int, ...] = (1, 2, 4, 8)
    input_size: int = 8
    channels: int = 64
    filters: int = 32
    fold: int | str = 1
    tech_overrides: tuple[tuple[str, object], ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("SweepRequest", self.schema_version)
        try:
            strides = tuple(int(s) for s in self.strides)
        except (TypeError, ValueError):
            raise SchemaError(f"strides must be integers, got {self.strides!r}") from None
        if not strides or any(s < 1 for s in strides):
            raise SchemaError(f"strides must be positive and non-empty, got {strides!r}")
        object.__setattr__(self, "strides", strides)
        _validate_fold(self.fold)
        if self.fold is None:
            raise SchemaError("sweep fold must be an int or 'auto', not None")
        for name in ("input_size", "channels", "filters"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SchemaError(f"{name} must be a positive int, got {value!r}")
        object.__setattr__(
            self, "tech_overrides", _normalize_overrides(self.tech_overrides)
        )

    def resolved_tech(self, base: TechnologyParams | None = None) -> TechnologyParams:
        """The concrete technology after applying the overrides."""
        return _resolve_tech(self.tech_overrides, base)

    def to_dict(self) -> dict:
        return {
            "kind": "sweep_request",
            "schema_version": self.schema_version,
            "strides": list(self.strides),
            "input_size": self.input_size,
            "channels": self.channels,
            "filters": self.filters,
            "fold": self.fold,
            "tech_overrides": dict(self.tech_overrides),
        }

    @classmethod
    def from_dict(cls, payload) -> "SweepRequest":
        payload = _require_mapping(payload, "sweep_request")
        _check_kind(payload, "sweep_request")
        _check_version(payload, "sweep_request")
        _check_keys(
            payload,
            "sweep_request",
            frozenset({"schema_version"}),
            frozenset(
                {"kind", "strides", "input_size", "channels", "filters", "fold",
                 "tech_overrides"}
            ),
        )
        kwargs = {
            name: payload[name]
            for name in ("strides", "input_size", "channels", "filters", "fold")
            if name in payload
        }
        if "strides" in kwargs:
            kwargs["strides"] = tuple(kwargs["strides"])
        return cls(
            tech_overrides=payload.get("tech_overrides", ()),
            schema_version=payload["schema_version"],
            **kwargs,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One measured stride of the sweep (mirrors ``StrideSweepPoint``)."""

    stride: int
    modes: int
    cycles_red: int
    cycles_zp: int
    speedup: float

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload) -> "SweepPoint":
        payload = _require_mapping(payload, "sweep_point")
        names = frozenset(f.name for f in fields(cls))
        _check_keys(payload, "sweep_point", names, frozenset())
        return cls(
            stride=int(payload["stride"]),
            modes=int(payload["modes"]),
            cycles_red=int(payload["cycles_red"]),
            cycles_zp=int(payload["cycles_zp"]),
            speedup=float(payload["speedup"]),
        )


@dataclass(frozen=True)
class ErrorInfo:
    """A failure, as it travels on the wire.

    The error envelope the serving plane round-trips: enough to
    classify (``error_type``), display (``message``), locate
    (``source`` — a stage, stride or shard label) and react
    (``retryable``, per the taxonomy in :mod:`repro.errors`, plus the
    ``retry_after_s`` backoff hint deterministic load shedding
    attaches — a schema v2 addition, rejected at v1).  Carried
    standalone by the CLI's ``--json`` error boundary and embedded in
    partial results (:attr:`SweepResult.failures`).
    """

    error_type: str
    message: str
    retryable: bool = False
    source: str = ""
    retry_after_s: float | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("ErrorInfo", self.schema_version)
        if not isinstance(self.error_type, str) or not self.error_type:
            raise SchemaError(
                f"error_type must be a non-empty string, got {self.error_type!r}"
            )
        if not isinstance(self.message, str):
            raise SchemaError(f"message must be a string, got {self.message!r}")
        if not isinstance(self.retryable, bool):
            raise SchemaError(f"retryable must be a bool, got {self.retryable!r}")
        if not isinstance(self.source, str):
            raise SchemaError(f"source must be a string, got {self.source!r}")
        if self.retry_after_s is not None:
            if (
                not isinstance(self.retry_after_s, (int, float))
                or isinstance(self.retry_after_s, bool)
                or not self.retry_after_s > 0
            ):
                raise SchemaError(
                    f"retry_after_s must be a positive number or None, "
                    f"got {self.retry_after_s!r}"
                )
            if self.schema_version < 2:
                raise SchemaError(
                    "retry_after_s requires schema_version >= 2, "
                    f"got version {self.schema_version}"
                )
            object.__setattr__(self, "retry_after_s", float(self.retry_after_s))

    @classmethod
    def from_exception(cls, exc: BaseException, source: str = "") -> "ErrorInfo":
        """The envelope for a caught exception.

        ``retryable`` comes from the reliability plane's
        transient/permanent split
        (:func:`repro.reliability.policy.is_retryable`), following one
        level of ``__cause__`` so the transient bit survives
        service-tier wrapping (``raise RichError from
        BrokenProcessPool``).  ``retry_after_s`` is lifted off the
        exception when it carries one
        (:class:`~repro.errors.OverloadedError`).
        """
        from repro.reliability.policy import is_retryable

        retry_after_s = getattr(exc, "retry_after_s", None)
        if (
            not isinstance(retry_after_s, (int, float))
            or isinstance(retry_after_s, bool)
            or retry_after_s <= 0
        ):
            retry_after_s = None
        return cls(
            error_type=type(exc).__name__,
            message=str(exc),
            retryable=is_retryable(exc, follow_cause=True),
            source=source,
            retry_after_s=retry_after_s,
        )

    def to_dict(self) -> dict:
        payload = {
            "kind": "error_info",
            "schema_version": self.schema_version,
            "error_type": self.error_type,
            "message": self.message,
            "retryable": self.retryable,
            "source": self.source,
        }
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload

    @classmethod
    def from_dict(cls, payload) -> "ErrorInfo":
        payload = _require_mapping(payload, "error_info")
        _check_kind(payload, "error_info")
        _check_version(payload, "error_info")
        _check_keys(
            payload,
            "error_info",
            frozenset({"schema_version", "error_type", "message"}),
            frozenset({"kind", "retryable", "source", "retry_after_s"}),
        )
        return cls(
            error_type=payload["error_type"],
            message=payload["message"],
            retryable=bool(payload.get("retryable", False)),
            source=str(payload.get("source", "")),
            retry_after_s=payload.get("retry_after_s"),
            schema_version=payload["schema_version"],
        )


@dataclass(frozen=True)
class SweepResult:
    """The measured stride-speedup curve, possibly partial.

    Attributes:
        points: one :class:`SweepPoint` per *successful* stride,
            ascending.
        fitted_exponent: least-squares ``b`` of ``speedup ~ stride^b``,
            or ``None`` when fewer than two strides exceed 1.
        failures: :class:`ErrorInfo` per failed stride (empty on a full
            result).  Partial-result semantics: when non-empty, the
            sweep completed for the strides in ``points`` and failed
            for those named in each failure's ``source``.
    """

    points: tuple[SweepPoint, ...]
    fitted_exponent: float | None = None
    failures: tuple[ErrorInfo, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("SweepResult", self.schema_version)
        object.__setattr__(self, "points", tuple(self.points))
        failures = tuple(self.failures)
        for failure in failures:
            if not isinstance(failure, ErrorInfo):
                raise SchemaError(
                    f"failures must hold ErrorInfo, got {type(failure).__name__}"
                )
        object.__setattr__(self, "failures", failures)

    def to_dict(self) -> dict:
        payload = {
            "kind": "sweep_result",
            "schema_version": self.schema_version,
            "points": [p.to_dict() for p in self.points],
            "fitted_exponent": self.fitted_exponent,
        }
        if self.failures:
            payload["failures"] = [f.to_dict() for f in self.failures]
        return payload

    @classmethod
    def from_dict(cls, payload) -> "SweepResult":
        payload = _require_mapping(payload, "sweep_result")
        _check_kind(payload, "sweep_result")
        _check_version(payload, "sweep_result")
        _check_keys(
            payload,
            "sweep_result",
            frozenset({"schema_version", "points"}),
            frozenset({"kind", "fitted_exponent", "failures"}),
        )
        exponent = payload.get("fitted_exponent")
        return cls(
            points=tuple(SweepPoint.from_dict(p) for p in payload["points"]),
            fitted_exponent=None if exponent is None else float(exponent),
            failures=tuple(
                ErrorInfo.from_dict(f) for f in payload.get("failures", ())
            ),
            schema_version=payload["schema_version"],
        )


# ----------------------------------------------------------------------
# Whole-network evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkRequest:
    """Evaluate every deconv layer of a named workload network.

    Attributes:
        network: Table I network name (``DCGAN``, ``Improved GAN``,
            ``SNGAN``, ``voc-fcn8s 2x``, ``voc-fcn8s 8x``).
        designs: design names/aliases; ``()`` -> all registered.
        batch: samples streamed through the inter-layer pipeline.
        input_height / input_width: network input spatial size
            (1 for latent-vector generators).
        seed: RNG seed for the synthesized network weights.
    """

    network: str
    designs: tuple[str, ...] = ()
    batch: int = 16
    input_height: int = 1
    input_width: int = 1
    seed: int = 0
    tech_overrides: tuple[tuple[str, object], ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("NetworkRequest", self.schema_version)
        if not isinstance(self.network, str) or not self.network:
            raise SchemaError(f"network must be a non-empty string, got {self.network!r}")
        for name in ("batch", "input_height", "input_width"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SchemaError(f"{name} must be a positive int, got {value!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise SchemaError(f"seed must be a non-negative int, got {self.seed!r}")
        object.__setattr__(self, "designs", _tuple_of_str(self.designs, "designs"))
        object.__setattr__(
            self, "tech_overrides", _normalize_overrides(self.tech_overrides)
        )

    def resolved_tech(self, base: TechnologyParams | None = None) -> TechnologyParams:
        """The concrete technology after applying the overrides."""
        return _resolve_tech(self.tech_overrides, base)

    def to_dict(self) -> dict:
        return {
            "kind": "network_request",
            "schema_version": self.schema_version,
            "network": self.network,
            "designs": list(self.designs),
            "batch": self.batch,
            "input_height": self.input_height,
            "input_width": self.input_width,
            "seed": self.seed,
            "tech_overrides": dict(self.tech_overrides),
        }

    @classmethod
    def from_dict(cls, payload) -> "NetworkRequest":
        payload = _require_mapping(payload, "network_request")
        _check_kind(payload, "network_request")
        _check_version(payload, "network_request")
        _check_keys(
            payload,
            "network_request",
            frozenset({"schema_version", "network"}),
            frozenset(
                {"kind", "designs", "batch", "input_height", "input_width", "seed",
                 "tech_overrides"}
            ),
        )
        kwargs = {
            name: payload[name]
            for name in ("batch", "input_height", "input_width", "seed")
            if name in payload
        }
        return cls(
            network=str(payload["network"]),
            designs=tuple(payload.get("designs", ())),
            tech_overrides=payload.get("tech_overrides", ()),
            schema_version=payload["schema_version"],
            **kwargs,
        )


@dataclass(frozen=True)
class NetworkDesignSummary:
    """End-to-end roll-up of one design over a whole network.

    Attributes:
        design: canonical design name.
        total_latency_s / total_energy_j: sequential (non-pipelined)
            totals over all deconv layers.
        speedup / energy_saving: vs. the baseline design.
        fill_latency_s: first-sample latency through the pipeline.
        bottleneck_latency_s: steady-state initiation interval.
        throughput_per_s: pipelined samples per second.
        chip_area_m2: area of a chip provisioned for this design.
    """

    design: str
    total_latency_s: float
    total_energy_j: float
    speedup: float
    energy_saving: float
    fill_latency_s: float
    bottleneck_latency_s: float
    throughput_per_s: float
    chip_area_m2: float

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload) -> "NetworkDesignSummary":
        payload = _require_mapping(payload, "network_design_summary")
        names = frozenset(f.name for f in fields(cls))
        _check_keys(payload, "network_design_summary", names, frozenset())
        values = {name: payload[name] for name in names}
        values["design"] = str(values["design"])
        for name in names - {"design"}:
            values[name] = float(values[name])
        return cls(**values)


@dataclass(frozen=True)
class NetworkResult:
    """Whole-network evaluation: per-layer metrics plus design roll-ups.

    Attributes:
        network: the evaluated network's name.
        batch: pipeline batch the summaries assume.
        layers: deconv layer names in execution order.
        designs: canonical design names evaluated.
        layer_results: one :class:`EvaluationResult` per layer.
        summaries: one :class:`NetworkDesignSummary` per design.
    """

    network: str
    batch: int
    layers: tuple[str, ...]
    designs: tuple[str, ...]
    layer_results: tuple[EvaluationResult, ...]
    summaries: tuple[NetworkDesignSummary, ...]
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("NetworkResult", self.schema_version)
        for name in ("layers", "designs", "layer_results", "summaries"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def summary_for(self, design: str) -> NetworkDesignSummary:
        """Roll-up for one design name."""
        for summary in self.summaries:
            if summary.design == design:
                return summary
        raise KeyError(f"design {design!r} not in result ({self.designs})")

    def to_dict(self) -> dict:
        return {
            "kind": "network_result",
            "schema_version": self.schema_version,
            "network": self.network,
            "batch": self.batch,
            "layers": list(self.layers),
            "designs": list(self.designs),
            "layer_results": [r.to_dict() for r in self.layer_results],
            "summaries": [s.to_dict() for s in self.summaries],
        }

    @classmethod
    def from_dict(cls, payload) -> "NetworkResult":
        payload = _require_mapping(payload, "network_result")
        _check_kind(payload, "network_result")
        _check_version(payload, "network_result")
        _check_keys(
            payload,
            "network_result",
            frozenset(
                {"schema_version", "network", "batch", "layers", "designs",
                 "layer_results", "summaries"}
            ),
            frozenset({"kind"}),
        )
        return cls(
            network=str(payload["network"]),
            batch=int(payload["batch"]),
            layers=tuple(str(n) for n in payload["layers"]),
            designs=tuple(str(n) for n in payload["designs"]),
            layer_results=tuple(
                EvaluationResult.from_dict(r) for r in payload["layer_results"]
            ),
            summaries=tuple(
                NetworkDesignSummary.from_dict(s) for s in payload["summaries"]
            ),
            schema_version=payload["schema_version"],
        )


# ----------------------------------------------------------------------
# Device-fidelity frontier: accuracy vs energy vs drift, per design
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FidelityRequest:
    """Monte-Carlo device-fidelity sweep over one layer.

    Exactly one of ``layer`` or ``spec`` must be given (same contract as
    :class:`EvaluationRequest`).  The scenario knobs mirror
    :class:`~repro.eval.parallel.FidelityJob`: every requested design is
    sampled over the full ``seeds x times`` grid under the same noise
    scenario, and the result pairs each design's fidelity curve with its
    analytic energy so the accuracy-vs-energy-vs-drift frontier can be
    read off directly.

    Attributes:
        layer: Table I layer name, or ``None`` when ``spec`` is given.
        spec: explicit layer shape, or ``None`` when ``layer`` is given.
        designs: design names/aliases; ``()`` -> all registered.
        seeds: Monte-Carlo seeds (non-negative, non-empty).
        times: retention times in seconds (positive, non-empty).
        nu: drift exponent.
        programming_sigma: lognormal write-variation sigma.
        read_noise_sigma: relative read-noise sigma.
        stuck_at_rate: stuck-at fault probability per cell.
        adc_bits: ADC resolution override (``None`` -> lossless sizing).
        max_rows / max_cols: probe-array caps for the derived profiles.
        tech_overrides: ``TechnologyParams`` field overrides.
        layer_name: label carried into the results.
    """

    layer: str | None = None
    spec: DeconvSpec | None = None
    designs: tuple[str, ...] = ()
    seeds: tuple[int, ...] = (0, 1, 2, 3)
    times: tuple[float, ...] = (1.0, 3600.0, 86400.0, 2.6e6, 3.2e7)
    nu: float = 0.02
    programming_sigma: float = 0.05
    read_noise_sigma: float = 0.0
    stuck_at_rate: float = 0.0
    adc_bits: int | None = None
    max_rows: int = 128
    max_cols: int = 128
    tech_overrides: tuple[tuple[str, object], ...] = ()
    layer_name: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("FidelityRequest", self.schema_version)
        if (self.layer is None) == (self.spec is None):
            raise SchemaError(
                "exactly one of 'layer' (a benchmark-layer name) or 'spec' "
                "must be provided"
            )
        if self.spec is not None and not isinstance(self.spec, DeconvSpec):
            raise SchemaError(f"spec must be a DeconvSpec, got {type(self.spec).__name__}")
        try:
            seeds = tuple(int(s) for s in self.seeds)
        except (TypeError, ValueError):
            raise SchemaError(f"seeds must be integers, got {self.seeds!r}") from None
        if not seeds or any(s < 0 for s in seeds):
            raise SchemaError(f"seeds must be non-negative and non-empty, got {seeds!r}")
        object.__setattr__(self, "seeds", seeds)
        try:
            times = tuple(float(t) for t in self.times)
        except (TypeError, ValueError):
            raise SchemaError(f"times must be numbers, got {self.times!r}") from None
        if not times or any(t <= 0.0 for t in times):
            raise SchemaError(f"times must be positive and non-empty, got {times!r}")
        object.__setattr__(self, "times", times)
        for name in ("nu", "programming_sigma", "read_noise_sigma"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise SchemaError(f"{name} must be a non-negative number, got {value!r}")
        rate = self.stuck_at_rate
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) or not 0 <= rate <= 1:
            raise SchemaError(f"stuck_at_rate must be in [0, 1], got {rate!r}")
        if self.adc_bits is not None and (
            not isinstance(self.adc_bits, int)
            or isinstance(self.adc_bits, bool)
            or self.adc_bits < 1
        ):
            raise SchemaError(f"adc_bits must be a positive int or None, got {self.adc_bits!r}")
        for name in ("max_rows", "max_cols"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SchemaError(f"{name} must be a positive int, got {value!r}")
        object.__setattr__(self, "designs", _tuple_of_str(self.designs, "designs"))
        object.__setattr__(
            self, "tech_overrides", _normalize_overrides(self.tech_overrides)
        )

    def resolved_tech(self, base: TechnologyParams | None = None) -> TechnologyParams:
        """The concrete technology after applying the overrides."""
        return _resolve_tech(self.tech_overrides, base)

    def to_dict(self) -> dict:
        return {
            "kind": "fidelity_request",
            "schema_version": self.schema_version,
            "layer": self.layer,
            "spec": None if self.spec is None else spec_to_dict(self.spec),
            "designs": list(self.designs),
            "seeds": list(self.seeds),
            "times": list(self.times),
            "nu": self.nu,
            "programming_sigma": self.programming_sigma,
            "read_noise_sigma": self.read_noise_sigma,
            "stuck_at_rate": self.stuck_at_rate,
            "adc_bits": self.adc_bits,
            "max_rows": self.max_rows,
            "max_cols": self.max_cols,
            "tech_overrides": dict(self.tech_overrides),
            "layer_name": self.layer_name,
        }

    @classmethod
    def from_dict(cls, payload) -> "FidelityRequest":
        payload = _require_mapping(payload, "fidelity_request")
        _check_kind(payload, "fidelity_request")
        _check_version(payload, "fidelity_request")
        _check_keys(
            payload,
            "fidelity_request",
            frozenset({"schema_version"}),
            frozenset(
                {"kind", "layer", "spec", "designs", "seeds", "times", "nu",
                 "programming_sigma", "read_noise_sigma", "stuck_at_rate",
                 "adc_bits", "max_rows", "max_cols", "tech_overrides",
                 "layer_name"}
            ),
        )
        spec = payload.get("spec")
        kwargs = {
            name: payload[name]
            for name in (
                "nu", "programming_sigma", "read_noise_sigma", "stuck_at_rate",
                "adc_bits", "max_rows", "max_cols",
            )
            if name in payload
        }
        if "seeds" in payload:
            kwargs["seeds"] = tuple(payload["seeds"])
        if "times" in payload:
            kwargs["times"] = tuple(payload["times"])
        return cls(
            layer=payload.get("layer"),
            spec=None if spec is None else spec_from_dict(spec),
            designs=tuple(payload.get("designs", ())),
            tech_overrides=payload.get("tech_overrides", ()),
            layer_name=str(payload.get("layer_name", "")),
            schema_version=payload["schema_version"],
            **kwargs,
        )


@dataclass(frozen=True)
class FidelityPoint:
    """One Monte-Carlo sample of the frontier (mirrors
    :class:`~repro.eval.parallel.FidelityStats`, labels dropped)."""

    design: str
    seed: int
    time_s: float
    rms_error: float
    mean_abs_error: float
    max_abs_error: float
    stuck_fraction: float

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload) -> "FidelityPoint":
        payload = _require_mapping(payload, "fidelity_point")
        names = frozenset(f.name for f in fields(cls))
        _check_keys(payload, "fidelity_point", names, frozenset())
        return cls(
            design=str(payload["design"]),
            seed=int(payload["seed"]),
            time_s=float(payload["time_s"]),
            rms_error=float(payload["rms_error"]),
            mean_abs_error=float(payload["mean_abs_error"]),
            max_abs_error=float(payload["max_abs_error"]),
            stuck_fraction=float(payload["stuck_fraction"]),
        )


@dataclass(frozen=True)
class FidelityResult:
    """The accuracy-vs-energy-vs-drift frontier for one layer.

    Attributes:
        layer: the evaluated layer's label.
        designs: canonical design names, in evaluation order.
        energy_j: analytic per-layer energy per design (the frontier's
            energy axis, from :class:`~repro.arch.breakdown.DesignMetrics`).
        points: every Monte-Carlo sample, design-major then in the
            request's ``seeds x times`` order.
    """

    layer: str
    designs: tuple[str, ...]
    energy_j: tuple[float, ...]
    points: tuple[FidelityPoint, ...]
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("FidelityResult", self.schema_version)
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(self, "energy_j", tuple(float(e) for e in self.energy_j))
        object.__setattr__(self, "points", tuple(self.points))
        if len(self.designs) != len(self.energy_j):
            raise SchemaError(
                f"{len(self.designs)} designs but {len(self.energy_j)} energies"
            )

    def points_for(self, design: str) -> tuple[FidelityPoint, ...]:
        """Every sample of one design, in request order."""
        if design not in self.designs:
            raise KeyError(f"design {design!r} not in result ({self.designs})")
        return tuple(p for p in self.points if p.design == design)

    def energy_for(self, design: str) -> float:
        """The analytic energy axis value of one design."""
        for name, energy in zip(self.designs, self.energy_j):
            if name == design:
                return energy
        raise KeyError(f"design {design!r} not in result ({self.designs})")

    def to_dict(self) -> dict:
        return {
            "kind": "fidelity_result",
            "schema_version": self.schema_version,
            "layer": self.layer,
            "designs": list(self.designs),
            "energy_j": list(self.energy_j),
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, payload) -> "FidelityResult":
        payload = _require_mapping(payload, "fidelity_result")
        _check_kind(payload, "fidelity_result")
        _check_version(payload, "fidelity_result")
        _check_keys(
            payload,
            "fidelity_result",
            frozenset({"schema_version", "layer", "designs", "energy_j", "points"}),
            frozenset({"kind"}),
        )
        return cls(
            layer=str(payload["layer"]),
            designs=tuple(str(d) for d in payload["designs"]),
            energy_j=tuple(float(e) for e in payload["energy_j"]),
            points=tuple(FidelityPoint.from_dict(p) for p in payload["points"]),
            schema_version=payload["schema_version"],
        )


# ----------------------------------------------------------------------
# Generic CLI envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommandPayload:
    """Envelope for CLI subcommands without a dedicated result type.

    ``data`` must be a JSON-native tree (the CLI builds it that way);
    ``results`` carries structured :class:`EvaluationResult` entries for
    grid-backed commands; ``text`` preserves the rendered table so the
    payload is lossless versus the non-``--json`` output.
    """

    command: str
    data: object = None
    results: tuple[EvaluationResult, ...] = ()
    text: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_instance_version("CommandPayload", self.schema_version)
        if not isinstance(self.command, str) or not self.command:
            raise SchemaError(f"command must be a non-empty string, got {self.command!r}")
        object.__setattr__(self, "results", tuple(self.results))

    def to_dict(self) -> dict:
        return {
            "kind": "command_result",
            "schema_version": self.schema_version,
            "command": self.command,
            "data": self.data,
            "results": [r.to_dict() for r in self.results],
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, payload) -> "CommandPayload":
        payload = _require_mapping(payload, "command_result")
        _check_kind(payload, "command_result")
        _check_version(payload, "command_result")
        _check_keys(
            payload,
            "command_result",
            frozenset({"schema_version", "command"}),
            frozenset({"kind", "data", "results", "text"}),
        )
        return cls(
            command=str(payload["command"]),
            data=payload.get("data"),
            results=tuple(
                EvaluationResult.from_dict(r) for r in payload.get("results", ())
            ),
            text=str(payload.get("text", "")),
            schema_version=payload["schema_version"],
        )


#: ``kind`` discriminator -> payload class, for :func:`payload_from_dict`.
PAYLOAD_KINDS: dict[str, type] = {
    "evaluation_request": EvaluationRequest,
    "evaluation_result": EvaluationResult,
    "sweep_request": SweepRequest,
    "sweep_result": SweepResult,
    "network_request": NetworkRequest,
    "network_result": NetworkResult,
    "fidelity_request": FidelityRequest,
    "fidelity_result": FidelityResult,
    "command_result": CommandPayload,
    "error_info": ErrorInfo,
}


def payload_from_dict(payload):
    """Rebuild any schema object from its ``to_dict`` form.

    Dispatches on the embedded ``"kind"`` discriminator; unknown or
    missing kinds raise :class:`~repro.errors.SchemaError`.
    """
    payload = _require_mapping(payload, "api")
    kind = payload.get("kind")
    cls = PAYLOAD_KINDS.get(kind)
    if cls is None:
        raise SchemaError(
            f"unknown payload kind {kind!r}; expected one of {sorted(PAYLOAD_KINDS)}"
        )
    return cls.from_dict(payload)


def _downgrade_tree(node, version: int):
    if isinstance(node, dict):
        rewritten = {}
        for key, value in node.items():
            if version < 2 and key == "retry_after_s":
                continue
            rewritten[key] = _downgrade_tree(value, version)
        if "schema_version" in rewritten:
            rewritten["schema_version"] = version
        return rewritten
    if isinstance(node, list):
        return [_downgrade_tree(item, version) for item in node]
    return node


def downgrade_payload(wire, version: int) -> dict:
    """Rewrite a ``to_dict`` tree for an older-generation client.

    The serving front door answers a client at the schema version the
    client spoke: this recursively stamps ``schema_version=version`` on
    every nested payload mapping and drops keys that generation cannot
    parse (``retry_after_s`` below version 2), so a strict v1
    ``from_dict`` accepts the result.  The input tree is not mutated.
    """
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaError(
            f"cannot downgrade to schema_version {version!r}; supported "
            f"versions are {sorted(SUPPORTED_SCHEMA_VERSIONS)}"
        )
    return _downgrade_tree(_require_mapping(wire, "api"), version)
