"""Typed service-layer API: registry, versioned schema, service facade.

Module map (the request -> service -> engine flow)
--------------------------------------------------
* :mod:`repro.api.registry` — **who can be evaluated.**  The design
  registry: ``@register_design("name", aliases=...)`` declares an
  accelerator design; ``available_designs()`` is the canonical
  presentation order (baseline first) every figure, table and default
  request uses.  This is the only name-to-design dispatch in the
  library.
* :mod:`repro.api.schema` — **what crosses the boundary.**  Frozen,
  ``schema_version``-tagged request/response dataclasses
  (:class:`~repro.api.schema.EvaluationRequest` /
  :class:`~repro.api.schema.EvaluationResult`,
  :class:`~repro.api.schema.SweepRequest` /
  :class:`~repro.api.schema.SweepResult`,
  :class:`~repro.api.schema.NetworkRequest` /
  :class:`~repro.api.schema.NetworkResult`) with strict
  ``to_dict``/``from_dict`` round-tripping.
* :mod:`repro.api.service` — **how it runs.**
  :class:`~repro.api.service.RedService` fronts the batch/cache
  substrate: requests are flattened into
  :class:`~repro.eval.parallel.DesignJob` lists and executed by
  :func:`~repro.eval.parallel.run_design_jobs` (process pool + on-disk
  :class:`~repro.eval.parallel.SweepCache`); ``trace=True`` adds
  cycle-level :class:`~repro.eval.parallel.CycleStats` via the
  :class:`~repro.sim.batch.BatchEngine`, persisted in the same cache.
  ``submit()``/``gather()`` run any request on a service thread pool.

Every pre-API entry point (`repro.eval.harness.run_grid`,
`repro.eval.sweeps.stride_speedup_sweep`,
`repro.system.network_mapper.evaluate_network`, the ``repro`` CLI)
delegates here, so there is exactly one evaluation path.

Registering a fourth design
---------------------------
::

    from repro.api import register_design
    from repro.designs.base import DeconvDesign

    @register_design("my-design", aliases=("mine",), accepts_fold=False)
    class MyDesign(DeconvDesign):
        name = "my-design"
        ...  # run_functional / run_quantized / perf_input

    # It now appears in available_designs(), every default request,
    # `repro report --json`, and the sweep cache keyspace.

Attributes are imported lazily (PEP 562) so that leaf modules —
including process-pool workers importing :mod:`repro.api.registry` —
never drag in the whole evaluation stack.
"""

from __future__ import annotations

_REGISTRY_EXPORTS = {
    "DesignEntry", "available_designs", "baseline_design", "build_design",
    "design_entries", "get_design", "register_design", "resolve_design",
    "unregister_design",
}
_SCHEMA_EXPORTS = {
    "SCHEMA_VERSION", "CommandPayload", "ErrorInfo", "EvaluationRequest",
    "EvaluationResult", "FidelityPoint", "FidelityRequest", "FidelityResult",
    "NetworkDesignSummary", "NetworkRequest", "NetworkResult", "SweepPoint",
    "SweepRequest", "SweepResult", "payload_from_dict",
}
_SERVICE_EXPORTS = {"RedService"}

__all__ = sorted(_REGISTRY_EXPORTS | _SCHEMA_EXPORTS | _SERVICE_EXPORTS)


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.api import registry as module
    elif name in _SCHEMA_EXPORTS:
        from repro.api import schema as module
    elif name in _SERVICE_EXPORTS:
        from repro.api import service as module
    else:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    return getattr(module, name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
