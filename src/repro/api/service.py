"""The ``RedService`` facade: one front door for every evaluation.

Request -> service -> engine flow
---------------------------------
Callers build a frozen request from :mod:`repro.api.schema`, hand it to
a :class:`RedService`, and get a frozen result back::

    from repro.api import EvaluationRequest, RedService

    with RedService(num_workers=4, cache="~/.cache/red") as service:
        result = service.evaluate(EvaluationRequest(layer="GAN_Deconv1"))
        print(result.metrics_for("RED").latency.total)

Internally every path — :meth:`~RedService.evaluate`,
:meth:`~RedService.sweep`, :meth:`~RedService.evaluate_network`, plus
the library-level helpers :meth:`~RedService.grid`,
:meth:`~RedService.sweep_points` and
:meth:`~RedService.network_evaluation` that :func:`repro.eval.harness.run_grid`,
:func:`repro.eval.sweeps.stride_speedup_sweep` and
:func:`repro.system.network_mapper.evaluate_network` delegate to —
flattens the work into :class:`~repro.eval.parallel.DesignJob` entries
and routes them through :func:`~repro.eval.parallel.run_design_jobs`,
the single evaluation substrate (vectorized plane / process pool +
batched on-disk :class:`~repro.eval.store.PackedSweepStore`; the
legacy :class:`~repro.eval.parallel.SweepCache` is still accepted as a
ready-made store).  ``trace=True`` requests
additionally run :func:`~repro.eval.parallel.run_cycle_jobs`, whose
cycle-level :class:`~repro.eval.parallel.CycleStats` persist in the
same cache under the ``"cycles"`` kind.

Concurrency
-----------
:meth:`~RedService.submit` enqueues any request on a per-service thread
pool and returns a :class:`concurrent.futures.Future`;
:meth:`~RedService.gather` collects results in submission order.  The
evaluation substrate is thread-safe: job execution is pure, and cache
writes are atomic.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.api.registry import available_designs, baseline_design, resolve_design
from repro.api.schema import (
    ErrorInfo,
    EvaluationRequest,
    EvaluationResult,
    FidelityPoint,
    FidelityRequest,
    FidelityResult,
    NetworkDesignSummary,
    NetworkRequest,
    NetworkResult,
    SweepPoint,
    SweepRequest,
    SweepResult,
)
from repro.arch.tech import TechnologyParams, default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError, SchemaError, ServiceClosedError
from repro.eval.parallel import (
    DesignJob,
    FidelityJob,
    SweepCache,
    _coerce_cache,
    run_cycle_jobs,
    run_design_jobs,
    run_fidelity_jobs,
)
from repro.eval.store import PackedSweepStore
from repro.reliability.policy import RetryPolicy, is_retryable


class RedService:
    """Concurrent facade over the evaluation substrate.

    Args:
        num_workers: process-pool width for cache misses (1 = inline).
        cache: a :class:`~repro.eval.store.PackedSweepStore`, a legacy
            :class:`SweepCache`, a cache directory path (constructs the
            packed store, migrating legacy directory-of-pickles
            content), or ``None``.
        tech: base technology the per-request overrides apply to
            (default: :func:`default_tech`).
        service_threads: thread-pool width for :meth:`submit`.
        max_sub_crossbars: SC budget used to resolve ``fold='auto'`` on
            cycle-level (trace) runs.
        cycle_dtype: execution dtype of the fused cycle-level batch
            executor (``"float64"`` — bit-identical to per-job engine
            runs — or ``"float32"`` for throughput-bound sweeps).
        vectorized: route analytic cache misses through the
            struct-of-arrays evaluation plane
            (:mod:`repro.eval.vectorized`, the default).  ``False``
            forces the scalar per-job oracle path — results are
            bit-identical either way.
        timeout: optional wall-clock budget in seconds, forwarded to
            every runner call the service makes; exceeding it raises
            :class:`~repro.errors.EvaluationTimeoutError`.
        retry_policy: :class:`~repro.reliability.RetryPolicy` the
            runners apply to transient failures (worker crashes,
            I/O errors); ``None`` uses the runners' default.
        design_runner: the evaluation substrate for analytic metrics —
            any callable with :func:`~repro.eval.parallel.run_design_jobs`'
            signature.  The default is ``run_design_jobs`` itself; the
            serving plane injects a
            :class:`~repro.serving.runner.ShardedRunner` here so every
            service path fans out across supervised shard processes
            without the service tier knowing (daffodil-style layering:
            the controller swaps the component, the high-level API is
            unchanged).
    """

    def __init__(
        self,
        num_workers: int = 1,
        cache: SweepCache | PackedSweepStore | str | os.PathLike | None = None,
        tech: TechnologyParams | None = None,
        service_threads: int = 4,
        max_sub_crossbars: int = 128,
        cycle_dtype: str = "float64",
        vectorized: bool = True,
        timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        design_runner=None,
    ) -> None:
        if num_workers < 1:
            raise ParameterError(f"num_workers must be >= 1, got {num_workers}")
        if service_threads < 1:
            raise ParameterError(f"service_threads must be >= 1, got {service_threads}")
        self.num_workers = num_workers
        # Coerce once: a path builds one PackedSweepStore for the
        # service's whole lifetime, so every request shares its offset
        # index, mmaps and in-memory LRU hit tier (re-coercing per call
        # would reopen the store and defeat the memory tier).  A store
        # the service constructed itself is owned — close() releases it.
        self.cache = _coerce_cache(cache)
        self._owns_cache = self.cache is not None and self.cache is not cache
        self.tech = tech
        self.service_threads = service_threads
        self.max_sub_crossbars = max_sub_crossbars
        self.cycle_dtype = cycle_dtype
        self.vectorized = vectorized
        if timeout is not None and not timeout > 0:
            raise ParameterError(f"timeout must be > 0 seconds, got {timeout!r}")
        self.timeout = timeout
        self.retry_policy = retry_policy
        self._design_runner = design_runner or run_design_jobs
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self._lock = threading.Lock()

    def _runner_kwargs(self, timeout: float | None = None) -> dict:
        """Substrate keywords every runner call shares.

        ``timeout`` overrides the service-wide budget for one request —
        the serving front door propagates each wire deadline here.
        """
        return {
            "num_workers": self.num_workers,
            "cache": self.cache,
            "vectorized": self.vectorized,
            "timeout": self.timeout if timeout is None else timeout,
            "retry_policy": self.retry_policy,
        }

    # ------------------------------------------------------------------
    # Request-level entry points
    # ------------------------------------------------------------------
    def evaluate(
        self, request: EvaluationRequest, *, timeout: float | None = None
    ) -> EvaluationResult:
        """Evaluate one layer across designs (optionally cycle-traced).

        ``timeout`` overrides the service-wide budget for this request
        (wire-deadline propagation); ``None`` keeps the service default.
        """
        if not isinstance(request, EvaluationRequest):
            raise SchemaError(
                f"evaluate() takes an EvaluationRequest, got {type(request).__name__}"
            )
        spec, label = self._resolve_layer(request)
        designs = self._resolve_designs(request.designs)
        tech = request.resolved_tech(self.tech)
        jobs = [
            DesignJob(design, spec, tech, fold=request.fold, layer_name=label)
            for design in designs
        ]
        metrics = self._design_runner(jobs, **self._runner_kwargs(timeout))
        cycle_stats: tuple = ()
        if request.trace:
            cycle_stats = tuple(
                run_cycle_jobs(
                    jobs,
                    cache=self.cache,
                    max_sub_crossbars=self.max_sub_crossbars,
                    dtype=self.cycle_dtype,
                    timeout=self.timeout if timeout is None else timeout,
                    retry_policy=self.retry_policy,
                )
            )
        return EvaluationResult(
            layer=label,
            designs=designs,
            metrics=tuple(metrics),
            cycle_stats=cycle_stats,
        )

    def fidelity_sweep(
        self, request: FidelityRequest, *, timeout: float | None = None
    ) -> FidelityResult:
        """Monte-Carlo device-fidelity frontier for one layer.

        The energy axis comes from the analytic metrics — the same
        :class:`~repro.eval.parallel.DesignJob` list every other entry
        point routes through :func:`~repro.eval.parallel.run_design_jobs`
        — and the accuracy-vs-drift axes come from
        :func:`~repro.eval.parallel.run_fidelity_jobs`, one
        :class:`~repro.eval.parallel.FidelityJob` per
        (design, seed, time) grid point, batched through the
        struct-of-arrays sampler and persisted under the ``"fidelity"``
        cache kind.
        """
        if not isinstance(request, FidelityRequest):
            raise SchemaError(
                f"fidelity_sweep() takes a FidelityRequest, got {type(request).__name__}"
            )
        spec, label = self._resolve_layer(request)
        designs = self._resolve_designs(request.designs)
        tech = request.resolved_tech(self.tech)
        metrics = self._design_runner(
            [DesignJob(design, spec, tech, layer_name=label) for design in designs],
            **self._runner_kwargs(timeout),
        )
        stats = run_fidelity_jobs(
            [
                FidelityJob(
                    design=design,
                    spec=spec,
                    tech=tech,
                    seed=seed,
                    time_s=time_s,
                    nu=request.nu,
                    programming_sigma=request.programming_sigma,
                    read_noise_sigma=request.read_noise_sigma,
                    stuck_at_rate=request.stuck_at_rate,
                    adc_bits=request.adc_bits,
                    max_rows=request.max_rows,
                    max_cols=request.max_cols,
                    layer_name=label,
                )
                for design in designs
                for seed in request.seeds
                for time_s in request.times
            ],
            cache=self.cache,
            timeout=self.timeout if timeout is None else timeout,
            retry_policy=self.retry_policy,
        )
        return FidelityResult(
            layer=label,
            designs=designs,
            energy_j=tuple(m.energy.total for m in metrics),
            points=tuple(
                FidelityPoint(
                    design=s.design,
                    seed=s.seed,
                    time_s=s.time_s,
                    rms_error=s.rms_error,
                    mean_abs_error=s.mean_abs_error,
                    max_abs_error=s.max_abs_error,
                    stuck_fraction=s.stuck_fraction,
                )
                for s in stats
            ),
        )

    def sweep(
        self, request: SweepRequest, *, timeout: float | None = None
    ) -> SweepResult:
        """Run the stride-speedup sweep a request describes.

        A transient failure (worker crash, I/O fault) in the batched
        run does not lose the whole sweep: the service falls back to
        per-stride evaluation and reports strides that still fail as
        :class:`~repro.api.schema.ErrorInfo` entries in
        :attr:`~repro.api.schema.SweepResult.failures`, with the
        surviving points (and an exponent fitted over them) intact.
        Permanent failures — invalid parameters, timeouts — raise.
        """
        if not isinstance(request, SweepRequest):
            raise SchemaError(
                f"sweep() takes a SweepRequest, got {type(request).__name__}"
            )
        tech = request.resolved_tech(self.tech)
        failures: tuple[ErrorInfo, ...] = ()
        try:
            points = self.sweep_points(
                strides=request.strides,
                input_size=request.input_size,
                channels=request.channels,
                filters=request.filters,
                tech=tech,
                fold=request.fold,
                timeout=timeout,
            )
        except Exception as exc:
            if not is_retryable(exc):
                raise
            points, failures = self._sweep_points_partial(request, tech, timeout)
        exponent = None
        if len([p for p in points if p.stride > 1]) >= 2:
            from repro.eval.sweeps import quadratic_fit_exponent

            exponent = quadratic_fit_exponent(points)
        return SweepResult(
            points=tuple(points), fitted_exponent=exponent, failures=failures
        )

    def _sweep_points_partial(
        self,
        request: SweepRequest,
        tech: TechnologyParams,
        timeout: float | None = None,
    ) -> tuple[list[SweepPoint], tuple[ErrorInfo, ...]]:
        """Per-stride salvage pass behind :meth:`sweep`.

        Each stride is evaluated on its own so one persistently failing
        stride cannot take down its neighbours; a stride whose retries
        still exhaust becomes an :class:`~repro.api.schema.ErrorInfo`
        tagged ``source="stride=N"``.
        """
        points: list[SweepPoint] = []
        failures: list[ErrorInfo] = []
        for stride in sorted(set(request.strides)):
            try:
                points.extend(
                    self.sweep_points(
                        strides=(stride,),
                        input_size=request.input_size,
                        channels=request.channels,
                        filters=request.filters,
                        tech=tech,
                        fold=request.fold,
                        timeout=timeout,
                    )
                )
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                failures.append(
                    ErrorInfo.from_exception(exc, source=f"stride={stride}")
                )
        return points, tuple(failures)

    def evaluate_network(
        self, request: NetworkRequest, *, timeout: float | None = None
    ) -> NetworkResult:
        """Evaluate every deconv layer of a named workload network."""
        if not isinstance(request, NetworkRequest):
            raise SchemaError(
                f"evaluate_network() takes a NetworkRequest, got {type(request).__name__}"
            )
        from repro.system.chip import provision_chip
        from repro.system.pipeline import pipeline_network
        from repro.workloads.networks import build_network

        designs = self._resolve_designs(request.designs)
        tech = request.resolved_tech(self.tech)
        try:
            # The seed stays a plain int across the API boundary; the
            # workloads module owns the seed-to-generator mapping.
            network = build_network(request.network, seed=request.seed)
        except KeyError as exc:
            raise SchemaError(exc.args[0] if exc.args else str(exc)) from exc
        # The roll-ups normalize against the baseline design, so evaluate
        # it even when the requested subset omits it (it is cheap and
        # cache-shared); only the requested designs are reported.
        baseline = baseline_design()
        evaluated = designs if baseline in designs else (*designs, baseline)
        evaluation = self.network_evaluation(
            network,
            request.input_height,
            request.input_width,
            tech=tech,
            designs=evaluated,
            timeout=timeout,
        )
        layer_results = tuple(
            EvaluationResult(
                layer=mapped.name,
                designs=designs,
                metrics=tuple(
                    evaluation.metrics[design][mapped.name] for design in designs
                ),
            )
            for mapped in evaluation.layers
        )
        summaries = []
        for design in designs:
            report = pipeline_network(evaluation, design, batch=request.batch)
            chip = provision_chip(evaluation, design)
            summaries.append(
                NetworkDesignSummary(
                    design=design,
                    total_latency_s=evaluation.total_latency(design),
                    total_energy_j=evaluation.total_energy(design),
                    speedup=evaluation.speedup(design),
                    energy_saving=evaluation.energy_saving(design),
                    fill_latency_s=report.fill_latency,
                    bottleneck_latency_s=report.bottleneck_latency,
                    throughput_per_s=report.throughput,
                    chip_area_m2=chip.total_area,
                )
            )
        return NetworkResult(
            network=request.network,
            batch=request.batch,
            layers=tuple(mapped.name for mapped in evaluation.layers),
            designs=designs,
            layer_results=layer_results,
            summaries=tuple(summaries),
        )

    # ------------------------------------------------------------------
    # Concurrent entry points
    # ------------------------------------------------------------------
    def submit(self, request) -> Future:
        """Dispatch any request on the service thread pool.

        Returns a :class:`concurrent.futures.Future` resolving to the
        matching result type.  Raises
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`
        — the closed check and executor creation share ``self._lock``,
        so a concurrent ``close()`` can never leak a fresh thread pool.
        """
        handler = self._handler_for(request)
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "cannot submit() on a closed RedService; "
                    "construct a new service instead"
                )
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.service_threads,
                    thread_name_prefix="red-service",
                )
            executor = self._executor
        return executor.submit(handler, request)

    def gather(self, futures) -> list:
        """Results of :meth:`submit` futures, in submission order."""
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the service thread pool down and release compiled
        schedules (idempotent).

        A long-lived service that traced many distinct large layer
        shapes holds their compiled-schedule index arrays in the
        process-wide LRU (:func:`repro.sim.compiler.schedule_cache_info`);
        closing the service returns that memory.  A cache store the
        service constructed from a path is owned and closed too (its
        mmaps and LRU tier are released; caller-provided stores are the
        caller's to close).  After ``close()`` the service is retired:
        :meth:`submit` raises
        :class:`~repro.errors.ServiceClosedError` instead of silently
        spinning up a fresh thread pool nothing will ever shut down.
        """
        from repro.sim.compiler import clear_compiled_schedules

        with self._lock:
            executor, self._executor = self._executor, None
            already_closed = self._closed
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)
        if already_closed:
            return
        if self._owns_cache:
            self.cache.close()
        clear_compiled_schedules()

    def __enter__(self) -> "RedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _handler_for(self, request):
        if isinstance(request, EvaluationRequest):
            return self.evaluate
        if isinstance(request, SweepRequest):
            return self.sweep
        if isinstance(request, NetworkRequest):
            return self.evaluate_network
        if isinstance(request, FidelityRequest):
            return self.fidelity_sweep
        raise SchemaError(
            f"cannot dispatch request of type {type(request).__name__}; "
            "expected EvaluationRequest, SweepRequest, NetworkRequest "
            "or FidelityRequest"
        )

    # ------------------------------------------------------------------
    # Library-level canonical paths (the pre-API entry points delegate
    # here so there is exactly one evaluation path)
    # ------------------------------------------------------------------
    def grid(self, layers=None, tech: TechnologyParams | None = None):
        """Evaluate all registered designs over benchmark layers.

        The canonical implementation behind
        :func:`repro.eval.harness.run_grid`; returns an
        :class:`~repro.eval.harness.EvaluationGrid`.
        """
        from repro.eval.harness import EvaluationGrid
        from repro.workloads.specs import TABLE_I_LAYERS

        layers = layers or TABLE_I_LAYERS
        tech = tech or self.tech or default_tech()
        designs = available_designs()
        jobs = [
            DesignJob(design, layer.spec, tech, layer_name=layer.name)
            for layer in layers
            for design in designs
        ]
        evaluated = self._design_runner(jobs, **self._runner_kwargs())
        metrics: dict[str, dict[str, object]] = {}
        for job, result in zip(jobs, evaluated):
            metrics.setdefault(job.layer_name, {})[job.design] = result
        return EvaluationGrid(metrics=metrics, layers=tuple(layers), tech=tech)

    def sweep_points(
        self,
        strides: tuple[int, ...] = (1, 2, 4, 8),
        input_size: int = 8,
        channels: int = 64,
        filters: int = 32,
        tech: TechnologyParams | None = None,
        fold: int | str = 1,
        timeout: float | None = None,
    ) -> list[SweepPoint]:
        """Measure RED's speedup as the stride grows (FCN rule ``K=2s``).

        The canonical implementation behind
        :func:`repro.eval.sweeps.stride_speedup_sweep`.
        """
        if not strides:
            raise ParameterError("strides must be non-empty")
        tech = tech or self.tech or default_tech()
        baseline = baseline_design()
        traced = "RED"  # the sweep measures the paper's design by definition
        ordered = sorted(set(strides))
        jobs: list[DesignJob] = []
        for stride in ordered:
            kernel = max(2 * stride, 2)
            spec = DeconvSpec(
                input_height=input_size, input_width=input_size,
                in_channels=channels,
                kernel_height=kernel, kernel_width=kernel, out_channels=filters,
                stride=stride, padding=stride // 2,
            )
            jobs.append(
                DesignJob(traced, spec, tech, fold=fold, layer_name=f"stride{stride}")
            )
            jobs.append(DesignJob(baseline, spec, tech, layer_name=f"stride{stride}"))
        metrics = self._design_runner(jobs, **self._runner_kwargs(timeout))
        points = []
        for index, stride in enumerate(ordered):
            red_metrics = metrics[2 * index]
            zp_metrics = metrics[2 * index + 1]
            points.append(
                SweepPoint(
                    stride=stride,
                    modes=stride * stride,
                    cycles_red=red_metrics.cycles,
                    cycles_zp=zp_metrics.cycles,
                    speedup=red_metrics.speedup_over(zp_metrics),
                )
            )
        return points

    def network_evaluation(
        self,
        network,
        input_height: int = 1,
        input_width: int = 1,
        tech: TechnologyParams | None = None,
        designs: tuple[str, ...] | None = None,
        timeout: float | None = None,
    ):
        """Evaluate every design over every deconv layer of a module tree.

        The canonical implementation behind
        :func:`repro.system.network_mapper.evaluate_network`; returns a
        :class:`~repro.system.network_mapper.NetworkEvaluation`.
        """
        from repro.system.network_mapper import NetworkEvaluation, extract_deconv_layers

        tech = tech or self.tech or default_tech()
        designs = self._resolve_designs(tuple(designs) if designs else ())
        layers = extract_deconv_layers(network, input_height, input_width)
        jobs = [
            DesignJob(design, mapped.spec, tech, layer_name=mapped.name)
            for design in designs
            for mapped in layers
        ]
        evaluated = self._design_runner(jobs, **self._runner_kwargs(timeout))
        metrics: dict[str, dict[str, object]] = {}
        for job, result in zip(jobs, evaluated):
            metrics.setdefault(job.design, {})[job.layer_name] = result
        return NetworkEvaluation(layers=layers, metrics=metrics, tech=tech)

    # ------------------------------------------------------------------
    # Shared resolution helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_designs(designs: tuple[str, ...]) -> tuple[str, ...]:
        """Canonical design names (all registered when none requested)."""
        if not designs:
            return available_designs()
        return tuple(resolve_design(name) for name in designs)

    @staticmethod
    def _resolve_layer(request: EvaluationRequest) -> tuple[DeconvSpec, str]:
        """The concrete (spec, label) an evaluation request names."""
        if request.spec is not None:
            label = request.layer_name or request.spec.describe()
            return request.spec, label
        from repro.workloads.specs import get_layer

        try:
            layer = get_layer(request.layer)
        except KeyError as exc:
            # KeyError str() wraps the message in repr quotes; unwrap it.
            raise SchemaError(exc.args[0] if exc.args else str(exc)) from exc
        return layer.spec, request.layer_name or layer.name
