"""The design registry: the single name-to-design dispatch.

Before this module existed every entry point — the CLI, the evaluation
grid, the network mapper — hard-coded the three paper designs by string
comparison.  The registry replaces that with declarative registration:

* :func:`register_design` — decorator that registers a factory (a
  :class:`~repro.designs.base.DeconvDesign` subclass or a
  ``(spec, tech, **kwargs) -> DeconvDesign`` callable) under a canonical
  name plus optional aliases.
* :func:`available_designs` — canonical names in registration order; this
  *is* the presentation order every figure/table uses (baseline first).
* :func:`build_design` — instantiate a registered design for a layer.
* :func:`resolve_design` / :func:`get_design` — alias-tolerant lookup.

Registering a fourth design from user code::

    from repro.api.registry import register_design
    from repro.designs.base import DeconvDesign

    @register_design("my-design", aliases=("mine",))
    class MyDesign(DeconvDesign):
        name = "my-design"
        ...

The class is returned unchanged; from then on ``"my-design"`` is a valid
design name in every request, sweep, CLI invocation and cache key.

Process-pool caveat: registration is per-process.  The parallel runner
(``run_design_jobs`` with ``num_workers > 1``) resolves names inside its
worker processes, which on spawn-based platforms (macOS/Windows) import
modules fresh — so register plugin designs at import time of a module
the workers also import, or evaluate them with ``num_workers=1`` (the
default).  The built-ins are always available: they register when this
module is imported.

This module is deliberately a leaf: it imports only :mod:`repro.errors`
at module scope (the built-in factories import their design classes
lazily), so anything — including the process-pool sweep workers — can
import it without dragging in the whole evaluation stack.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from repro.errors import DuplicateDesignError, ParameterError, UnknownDesignError


@dataclass(frozen=True)
class DesignEntry:
    """One registered accelerator design.

    Attributes:
        name: canonical design name (the name used in cache keys,
            figures and serialized payloads).
        factory: callable producing a design instance.  Called as
            ``factory(spec, tech)`` — plus ``fold=...`` when
            ``accepts_fold`` is true.
        aliases: alternative names accepted by :func:`resolve_design`
            (matched case-insensitively).
        accepts_fold: the design takes the Eq. 2 ``fold`` parameter;
            designs without it share cache entries across folds.
        supports_trace: the design has a cycle-level engine, so
            trace/cycle statistics can be computed and cached for it.
        baseline: the design every paper figure normalizes against.
        description: one-line summary for introspection output.
        perf_batch: optional vectorized perf-input hook, called as
            ``perf_batch(specs, folds, tech, layer_names)`` and
            returning a :class:`~repro.arch.metrics_batch.PerfInputBatch`
            covering every job closed-form (no per-job design objects).
            Designs with a hook are evaluated through the vectorized
            analytic plane (:mod:`repro.eval.vectorized`); designs
            without one fall back to the scalar per-job path.
        fidelity_profile: optional Monte-Carlo fidelity hook, called as
            ``fidelity_profile(spec, tech, adc_bits=..., max_rows=...,
            max_cols=...)`` and returning the
            :class:`~repro.reram.batch.FidelityProfile` the design
            exposes to the device-fidelity plane.  ``None`` falls back
            to :func:`~repro.reram.batch.derived_fidelity_profile`
            (probe array from the design's perf geometry), so every
            registered design appears in the fidelity frontier
            automatically.
    """

    name: str
    factory: Callable[..., object]
    aliases: tuple[str, ...] = ()
    accepts_fold: bool = False
    supports_trace: bool = False
    baseline: bool = False
    description: str = ""
    perf_batch: Callable[..., object] | None = None
    fidelity_profile: Callable[..., object] | None = None


#: Canonical name -> entry, in registration order (dicts preserve it).
_REGISTRY: dict[str, DesignEntry] = {}
#: Lower-cased alias or canonical name -> canonical name.
_LOOKUP: dict[str, str] = {}


def register_design(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    accepts_fold: bool = False,
    supports_trace: bool = False,
    baseline: bool = False,
    description: str = "",
    perf_batch: Callable[..., object] | None = None,
    fidelity_profile: Callable[..., object] | None = None,
):
    """Class/function decorator registering a design factory under ``name``.

    Raises:
        DuplicateDesignError: the name or an alias is already taken.
        ParameterError: the name is empty or not a string.
    """
    if not isinstance(name, str) or not name.strip():
        raise ParameterError(f"design name must be a non-empty string, got {name!r}")

    def decorator(factory):
        entry = DesignEntry(
            name=name,
            factory=factory,
            aliases=tuple(aliases),
            accepts_fold=accepts_fold,
            supports_trace=supports_trace,
            baseline=baseline,
            description=description or (inspect.getdoc(factory) or "").split("\n")[0],
            perf_batch=perf_batch,
            fidelity_profile=fidelity_profile,
        )
        claimed = [name, *entry.aliases]
        for label in claimed:
            owner = _LOOKUP.get(label.lower())
            if owner is not None:
                raise DuplicateDesignError(
                    f"design name/alias {label!r} is already registered "
                    f"(by design {owner!r})"
                )
        if baseline:
            for existing in _REGISTRY.values():
                if existing.baseline:
                    raise DuplicateDesignError(
                        f"design {existing.name!r} is already the baseline; "
                        "only one design can be the normalization reference"
                    )
        _REGISTRY[name] = entry
        for label in claimed:
            _LOOKUP[label.lower()] = name
        return factory

    return decorator


def unregister_design(name: str) -> None:
    """Remove a registered design (plugin teardown / test cleanup)."""
    canonical = resolve_design(name)
    entry = _REGISTRY.pop(canonical)
    for label in (entry.name, *entry.aliases):
        _LOOKUP.pop(label.lower(), None)


def available_designs() -> tuple[str, ...]:
    """Canonical design names in registration order (baseline first)."""
    return tuple(_REGISTRY)


def design_entries() -> tuple[DesignEntry, ...]:
    """Every registered entry, in registration order."""
    return tuple(_REGISTRY.values())


def resolve_design(name: str) -> str:
    """Map a name or alias to the canonical design name.

    Raises:
        UnknownDesignError: nothing is registered under ``name``.
    """
    if name in _REGISTRY:
        return name
    canonical = _LOOKUP.get(str(name).lower())
    if canonical is None:
        raise UnknownDesignError(
            f"unknown design {name!r}; choose from {available_designs()}"
        )
    return canonical


def get_design(name: str) -> DesignEntry:
    """The registry entry behind a name or alias."""
    return _REGISTRY[resolve_design(name)]


def baseline_design() -> str:
    """The canonical name of the normalization baseline (zero-padding)."""
    for entry in _REGISTRY.values():
        if entry.baseline:
            return entry.name
    raise UnknownDesignError("no baseline design is registered")


def build_design(name: str, spec, tech=None, fold=None):
    """Instantiate the design ``name`` describes for one layer.

    Args:
        name: canonical design name or alias.
        spec: the :class:`~repro.deconv.shapes.DeconvSpec`.
        tech: technology parameters (default: :func:`default_tech`).
        fold: Eq. 2 fold for fold-aware designs (``None`` -> ``'auto'``);
            silently ignored by designs that do not take it, mirroring
            the old hard-coded dispatch.
    """
    entry = get_design(name)
    if tech is None:
        from repro.arch.tech import default_tech

        tech = default_tech()
    if entry.accepts_fold:
        return entry.factory(spec, tech, fold="auto" if fold is None else fold)
    return entry.factory(spec, tech)


# ----------------------------------------------------------------------
# Built-in designs (paper Fig. 3a, Fig. 3b, and RED itself).  Factories
# and batch hooks import their classes lazily so this module stays a
# leaf.
# ----------------------------------------------------------------------
def _zero_padding_perf_batch(specs, folds=None, tech=None, layer_names=None):
    from repro.designs.zero_padding_design import ZeroPaddingDesign

    return ZeroPaddingDesign.perf_input_batch(specs, folds, tech, layer_names)


def _padding_free_perf_batch(specs, folds=None, tech=None, layer_names=None):
    from repro.designs.padding_free_design import PaddingFreeDesign

    return PaddingFreeDesign.perf_input_batch(specs, folds, tech, layer_names)


def _red_perf_batch(specs, folds, tech=None, layer_names=None):
    from repro.core.red_design import REDDesign

    return REDDesign.perf_input_batch(specs, folds, tech, layer_names)


def _derived_fidelity_hook(name):
    """A fidelity hook bound to the default perf-geometry derivation."""

    def hook(spec, tech=None, *, adc_bits=None, max_rows=128, max_cols=128):
        from repro.reram.batch import derived_fidelity_profile

        return derived_fidelity_profile(
            name, spec, tech,
            adc_bits=adc_bits, max_rows=max_rows, max_cols=max_cols,
        )

    return hook


@register_design(
    "zero-padding",
    aliases=("zp", "zero_padding"),
    baseline=True,
    description="Algorithm 1 baseline: zero-inserted input, dense crossbar",
    perf_batch=_zero_padding_perf_batch,
    fidelity_profile=_derived_fidelity_hook("zero-padding"),
)
def _build_zero_padding(spec, tech):
    from repro.designs.zero_padding_design import ZeroPaddingDesign

    return ZeroPaddingDesign(spec, tech)


@register_design(
    "padding-free",
    aliases=("pf", "padding_free"),
    description="Algorithm 2 baseline: wide-row matrix, overlap-add + crop",
    perf_batch=_padding_free_perf_batch,
    fidelity_profile=_derived_fidelity_hook("padding-free"),
)
def _build_padding_free(spec, tech):
    from repro.designs.padding_free_design import PaddingFreeDesign

    return PaddingFreeDesign(spec, tech)


@register_design(
    "RED",
    aliases=("red",),
    accepts_fold=True,
    supports_trace=True,
    description="Pixel-wise mapped, zero-skipping deconvolution (the paper)",
    perf_batch=_red_perf_batch,
    fidelity_profile=_derived_fidelity_hook("RED"),
)
def _build_red(spec, tech, fold="auto"):
    from repro.core.red_design import REDDesign

    return REDDesign(spec, tech, fold=fold)
