"""Non-ideality models for the analog crossbar path.

The paper evaluates ideal arrays (NeuroSim+ is an estimator, not a SPICE
deck); this module adds the standard degradation knobs so the reproduction
can run sensitivity studies: programming variation (lognormal conductance
perturbation), stuck-at faults, additive read noise, and a flag enabling
the crossbar's first-order IR-drop model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_probability


@dataclass
class NoiseModel:
    """Configuration + RNG for crossbar non-idealities.

    Attributes:
        programming_sigma: relative lognormal sigma of programmed
            conductance (0 disables).
        read_noise_sigma: additive Gaussian current noise, relative to the
            per-call RMS current (0 disables).
        stuck_at_rate: fraction of cells stuck at a random extreme level.
        ir_drop: enable the crossbar's first-order IR-drop attenuation.
        seed: RNG seed; a fresh generator is derived per operation so
            repeated calls are reproducible.
    """

    programming_sigma: float = 0.0
    read_noise_sigma: float = 0.0
    stuck_at_rate: float = 0.0
    ir_drop: bool = False
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.programming_sigma < 0 or self.read_noise_sigma < 0:
            raise ParameterError("noise sigmas must be non-negative")
        check_probability(self.stuck_at_rate, "stuck_at_rate")
        self._rng = np.random.default_rng(self.seed)

    def apply_programming(
        self, conductance: np.ndarray, device: "ReRAMDeviceParams"
    ) -> np.ndarray:
        """Perturb programmed conductances; clip to the device window."""
        g = conductance.astype(np.float64, copy=True)
        if self.programming_sigma > 0.0:
            factor = self._rng.lognormal(
                mean=0.0, sigma=self.programming_sigma, size=g.shape
            )
            g = g * factor
        if self.stuck_at_rate > 0.0:
            stuck = self._rng.random(g.shape) < self.stuck_at_rate
            extremes = self._rng.choice(
                [device.g_min, device.g_max], size=g.shape
            )
            g = np.where(stuck, extremes, g)
        return np.clip(g, device.g_min, device.g_max)

    def apply_read(self, currents: np.ndarray) -> np.ndarray:
        """Add relative Gaussian read noise to column currents."""
        if self.read_noise_sigma <= 0.0:
            return currents
        rms = float(np.sqrt(np.mean(currents**2))) or 1e-12
        return currents + self._rng.normal(
            0.0, self.read_noise_sigma * rms, size=currents.shape
        )


# Imported late to avoid a cycle (device does not know about noise).
from repro.reram.device import ReRAMDeviceParams  # noqa: E402  (docs type only)
