"""Non-ideality models for the analog crossbar path.

The paper evaluates ideal arrays (NeuroSim+ is an estimator, not a SPICE
deck); this module adds the standard degradation knobs so the reproduction
can run sensitivity studies: programming variation (lognormal conductance
perturbation), stuck-at faults, additive read noise, and a flag enabling
the crossbar's first-order IR-drop model.

Seeding contract
----------------
Every draw comes from a child generator derived as
``default_rng(SeedSequence(seed, spawn_key=(domain, stream)))`` — never
from shared mutable generator state.  The *domain* separates operation
types (programming factors, stuck faults, read noise), so enabling or
interleaving one kind of operation can never shift the draws of another;
the *stream* separates operations within a domain.  Callers either pass
``stream`` explicitly (same ``(seed, domain, stream)`` -> bit-identical
array, regardless of process, batch order or call history) or leave it
``None`` to consume the model's per-domain monotone counter (repeated
calls differ, but the whole sequence is reproducible from ``seed``).
The batched Monte-Carlo sampler (:mod:`repro.reram.batch`) and the
write-verify programmer rely on explicit streams; the crossbar pipeline
uses the counters.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_probability

#: Spawn-key domains: one per operation type so draw streams never
#: interleave across them (see the module docstring).
PROGRAM_DOMAIN = 0
STUCK_DOMAIN = 1
READ_DOMAIN = 2


def _as_stream(value, label: str) -> int:
    """A validated non-negative int stream identifier."""
    if isinstance(value, bool):
        raise ParameterError(f"{label} must be an int, got {value!r}")
    try:
        value = operator.index(value)
    except TypeError:
        raise ParameterError(f"{label} must be an int, got {value!r}") from None
    if value < 0:
        raise ParameterError(f"{label} must be >= 0, got {value}")
    return value


@dataclass
class NoiseModel:
    """Configuration + seeded RNG derivation for crossbar non-idealities.

    Attributes:
        programming_sigma: relative lognormal sigma of programmed
            conductance (0 disables).
        read_noise_sigma: additive Gaussian current noise, relative to the
            per-call RMS current (0 disables).
        stuck_at_rate: fraction of cells stuck at a random extreme level.
        ir_drop: enable the crossbar's first-order IR-drop attenuation.
        seed: non-negative root seed.  Each operation derives a fresh
            child generator from ``SeedSequence(seed, spawn_key=(domain,
            stream))`` — see the module docstring for the contract.
    """

    programming_sigma: float = 0.0
    read_noise_sigma: float = 0.0
    stuck_at_rate: float = 0.0
    ir_drop: bool = False
    seed: int = 0
    _counters: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.programming_sigma < 0 or self.read_noise_sigma < 0:
            raise ParameterError("noise sigmas must be non-negative")
        check_probability(self.stuck_at_rate, "stuck_at_rate")
        self._counters = {PROGRAM_DOMAIN: 0, STUCK_DOMAIN: 0, READ_DOMAIN: 0}

    # ------------------------------------------------------------------
    # Generator derivation
    # ------------------------------------------------------------------
    def _generator(self, domain: int, stream: int | None) -> np.random.Generator:
        """The child generator for one ``(domain, stream)`` operation.

        ``stream=None`` consumes (and advances) the domain's monotone
        counter; an explicit stream leaves the counters untouched.
        """
        if stream is None:
            stream = self._counters[domain]
            self._counters[domain] = stream + 1
        else:
            stream = _as_stream(stream, "stream")
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(domain, stream))
        )

    # ------------------------------------------------------------------
    # Primitive draws (used directly by the programmer and the batched
    # fidelity sampler, composed by apply_programming below)
    # ------------------------------------------------------------------
    def programming_factors(
        self, shape: tuple[int, ...], stream: int | None = None
    ) -> np.ndarray:
        """Lognormal conductance perturbation factors for one write op.

        Returns all-ones without consuming a stream when
        ``programming_sigma`` is 0, so the draw sequence is independent
        of whether the knob is enabled.
        """
        if self.programming_sigma <= 0.0:
            return np.ones(shape, dtype=np.float64)
        return self._generator(PROGRAM_DOMAIN, stream).lognormal(
            mean=0.0, sigma=self.programming_sigma, size=shape
        )

    def stuck_faults(
        self,
        shape: tuple[int, ...],
        device: "ReRAMDeviceParams",
        stream: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One sampled stuck-at fault pattern: ``(mask, extremes)``.

        ``mask`` is boolean (True where the cell is defective) and
        ``extremes`` holds the extreme conductance each defective cell is
        pinned to (``g_min`` or ``g_max``; entries outside the mask are
        meaningless).  No stream is consumed when ``stuck_at_rate`` is 0.
        The pattern is a physical property of the array: callers that
        model repeated writes (the write-verify programmer) must sample
        it once and hold it fixed.
        """
        if self.stuck_at_rate <= 0.0:
            return np.zeros(shape, dtype=bool), np.zeros(shape, dtype=np.float64)
        rng = self._generator(STUCK_DOMAIN, stream)
        mask = rng.random(shape) < self.stuck_at_rate
        extremes = rng.choice([device.g_min, device.g_max], size=shape)
        return mask, extremes

    # ------------------------------------------------------------------
    # Composite operations
    # ------------------------------------------------------------------
    def apply_programming(
        self,
        conductance: np.ndarray,
        device: "ReRAMDeviceParams",
        *,
        stream: int | None = None,
        stuck_stream: int | None = None,
    ) -> np.ndarray:
        """Perturb programmed conductances; clip to the device window.

        ``stream`` keys the lognormal write variation, ``stuck_stream``
        the stuck-at pattern; with both explicit the call is a pure
        function of ``(seed, streams, input)``.
        """
        g = conductance.astype(np.float64, copy=True)
        if self.programming_sigma > 0.0:
            g = g * self.programming_factors(g.shape, stream)
        if self.stuck_at_rate > 0.0:
            mask, extremes = self.stuck_faults(g.shape, device, stuck_stream)
            g = np.where(mask, extremes, g)
        return np.clip(g, device.g_min, device.g_max)

    def apply_read(
        self, currents: np.ndarray, *, stream: int | None = None
    ) -> np.ndarray:
        """Add relative Gaussian read noise to column currents.

        Empty inputs are returned unchanged (there is no RMS to scale
        against), as are all inputs when ``read_noise_sigma`` is 0.
        """
        if self.read_noise_sigma <= 0.0:
            return currents
        currents = np.asarray(currents)
        if currents.size == 0:
            return currents
        rms = float(np.sqrt(np.mean(currents**2))) or 1e-12
        return currents + self._generator(READ_DOMAIN, stream).normal(
            0.0, self.read_noise_sigma * rms, size=currents.shape
        )


# Imported late to avoid a cycle (device does not know about noise).
from repro.reram.device import ReRAMDeviceParams  # noqa: E402  (docs type only)
