"""1T1R ReRAM cell model.

The paper's platform uses a 1T1R cell at 65 nm driven at 2 GHz.  A cell
stores ``bits_per_cell`` bits as one of ``2^bits_per_cell`` conductance
levels spaced uniformly between ``1/r_off`` and ``1/r_on``; during compute,
a read-voltage pulse on the wordline produces a bitline current
``I = V * G`` summed with its column neighbours (Kirchhoff).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.utils.validation import check_positive_float, check_positive_int


@dataclass(frozen=True)
class ReRAMDeviceParams:
    """Electrical parameters of one 1T1R ReRAM cell.

    Defaults follow the HfOx-class devices NeuroSim+ models at 65 nm:
    100 kOhm LRS, 1 MOhm HRS, 0.3 V read pulses, 2 bits per cell.
    """

    r_on: float = 100e3
    r_off: float = 1e6
    read_voltage: float = 0.3
    write_voltage: float = 2.0
    bits_per_cell: int = 2
    cell_area_factor: float = 12.0  # 1T1R footprint in F^2
    #: Level spacing: "conductance" (uniform G steps — required for exact
    #: analog readback, see ``conductance_grid``) or "resistance" (uniform
    #: R steps — simpler to program but non-linear in current).
    grid_mode: str = "conductance"

    def __post_init__(self) -> None:
        check_positive_float(self.r_on, "r_on")
        check_positive_float(self.r_off, "r_off")
        check_positive_float(self.read_voltage, "read_voltage")
        check_positive_float(self.write_voltage, "write_voltage")
        check_positive_int(self.bits_per_cell, "bits_per_cell")
        if self.r_off <= self.r_on:
            raise DeviceError(
                f"r_off ({self.r_off}) must exceed r_on ({self.r_on}); "
                "the HRS/LRS window would be empty"
            )
        if self.grid_mode not in ("conductance", "resistance"):
            raise DeviceError(
                f"grid_mode must be 'conductance' or 'resistance', got "
                f"{self.grid_mode!r}"
            )

    @property
    def g_min(self) -> float:
        """HRS conductance, ``1 / r_off``."""
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        """LRS conductance, ``1 / r_on``."""
        return 1.0 / self.r_on

    @property
    def num_levels(self) -> int:
        """Programmable conductance levels, ``2^bits_per_cell``."""
        return 1 << self.bits_per_cell

    @property
    def on_off_ratio(self) -> float:
        """HRS/LRS resistance window."""
        return self.r_off / self.r_on

    def cell_current(self, level: int) -> float:
        """Read current of a cell programmed to ``level`` (amperes)."""
        grid = conductance_grid(self)
        if not 0 <= level < self.num_levels:
            raise DeviceError(f"level {level} outside [0, {self.num_levels})")
        return self.read_voltage * grid[level]


def conductance_grid(params: ReRAMDeviceParams) -> np.ndarray:
    """Conductance grid for the cell's levels, level 0 = HRS.

    In the default ``"conductance"`` mode levels are spaced uniformly in
    conductance, which makes the analog column current an exact affine
    image of the stored integer — the property the bit-accurate pipeline
    relies on: ``I_col = V * (g_min * n_rows + dG * sum(digits))``.

    The ``"resistance"`` mode spaces levels uniformly in resistance
    instead; currents are then *non-linear* in the digit value, which is
    why practical multi-level PIM cells are programmed on a conductance
    grid (demonstrated in ``tests/reram/test_device.py``).
    """
    if params.grid_mode == "resistance":
        resistances = np.linspace(params.r_off, params.r_on, params.num_levels)
        return 1.0 / resistances
    return np.linspace(params.g_min, params.g_max, params.num_levels)


def digits_to_conductance(digits: np.ndarray, params: ReRAMDeviceParams) -> np.ndarray:
    """Map an integer digit array (values in ``[0, levels)``) to conductances."""
    digits = np.asarray(digits)
    if digits.size and (digits.min() < 0 or digits.max() >= params.num_levels):
        raise DeviceError(
            f"digits outside [0, {params.num_levels}): "
            f"range [{digits.min()}, {digits.max()}]"
        )
    grid = conductance_grid(params)
    return grid[digits.astype(np.int64)]


def conductance_to_digits(g: np.ndarray, params: ReRAMDeviceParams) -> np.ndarray:
    """Invert :func:`digits_to_conductance` by nearest-level matching."""
    grid = conductance_grid(params)
    g = np.asarray(g, dtype=np.float64)
    return np.abs(g[..., None] - grid).argmin(axis=-1)
