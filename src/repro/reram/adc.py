"""Read circuit: ADC / integrate-and-fire quantization of column sums.

After the analog readback, each column's integer partial sum passes through
an ADC with ``bits`` resolution over ``[0, full_scale]``.  With
``bits >= exact_adc_bits(rows, levels)`` the conversion is lossless, which
is how the designs in the paper (and ISAAC-style pipelines generally) size
their read circuits; smaller ADCs introduce the clipping/rounding the
precision ablation explores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ADCParams:
    """ADC configuration.

    Attributes:
        bits: output resolution.
        full_scale: largest representable input value (integer domain);
            values above it saturate.
    """

    bits: int
    full_scale: int

    def __post_init__(self) -> None:
        check_positive_int(self.bits, "bits")
        check_positive_int(self.full_scale, "full_scale")

    @property
    def num_codes(self) -> int:
        """``2^bits`` output codes."""
        return 1 << self.bits

    @property
    def step(self) -> float:
        """Quantization step in the integer input domain."""
        return self.full_scale / (self.num_codes - 1)


def exact_adc_bits(rows: int, num_levels: int) -> int:
    """Resolution needed to read a column sum losslessly.

    The worst-case binary-pulse column sum is ``rows * (num_levels - 1)``;
    exactness needs ``ceil(log2(that + 1))`` bits.
    """
    check_positive_int(rows, "rows")
    check_positive_int(num_levels, "num_levels")
    return max(1, math.ceil(math.log2(rows * (num_levels - 1) + 1)))


def quantize_readout(sums: np.ndarray, params: ADCParams | None) -> np.ndarray:
    """Quantize integer column sums through the ADC transfer function.

    ``params=None`` models a full-resolution read circuit (lossless).
    Otherwise values are clipped to ``[0, full_scale]`` and rounded to the
    nearest of the ``2^bits`` codes, then mapped back to the integer
    domain — i.e. the returned array is the *reconstructed* sum, directly
    comparable to the exact one.
    """
    sums = np.asarray(sums)
    if params is None:
        return sums.astype(np.int64)
    if params.num_codes - 1 >= params.full_scale:
        # Enough codes to represent every integer exactly: only saturation.
        return np.clip(sums, 0, params.full_scale).astype(np.int64)
    clipped = np.clip(sums, 0, params.full_scale).astype(np.float64)
    codes = np.rint(clipped / params.step)
    return np.rint(codes * params.step).astype(np.int64)


def adc_for_crossbar(rows: int, num_levels: int, bits: int | None = None) -> ADCParams:
    """Convenience constructor sized for a crossbar's worst-case sum."""
    full_scale = rows * (num_levels - 1)
    if bits is None:
        bits = exact_adc_bits(rows, num_levels)
    if full_scale < 1:
        raise ParameterError("crossbar with zero dynamic range")
    return ADCParams(bits=bits, full_scale=full_scale)
