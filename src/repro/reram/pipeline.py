"""The composed bit-accurate crossbar VMM pipeline.

One :class:`CrossbarPipeline` implements a signed integer matrix
``W (rows x cols)`` as differential, bit-sliced crossbar tiles and
evaluates ``x @ W`` for unsigned integer activations via bit-serial pulses,
ADC readout and shift-add recombination — the arithmetic shared by the
zero-padding, padding-free and RED designs.  With full-resolution ADCs the
result equals the integer matmul *exactly* (property-tested); reduced ADC
bits or an active noise model degrade it measurably, which the precision
ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.reram.adc import ADCParams, adc_for_crossbar, quantize_readout
from repro.reram.bitslice import WeightSlicing, bit_serial_inputs, slice_weights
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import ReRAMDeviceParams
from repro.reram.noise import NoiseModel
from repro.reram.shift_adder import ShiftAdder


@dataclass
class PipelineActivity:
    """Work counters accumulated across pipeline evaluations."""

    input_pulses: int = 0
    adc_conversions: int = 0
    shift_add_ops: int = 0
    matvecs: int = 0

    def merge(self, other: "PipelineActivity") -> None:
        """Add another activity record into this one."""
        self.input_pulses += other.input_pulses
        self.adc_conversions += other.adc_conversions
        self.shift_add_ops += other.shift_add_ops
        self.matvecs += other.matvecs


@dataclass
class PipelineResult:
    """Output of a pipeline evaluation: values plus the work performed."""

    values: np.ndarray
    activity: PipelineActivity = field(default_factory=PipelineActivity)


class CrossbarPipeline:
    """Differential bit-sliced crossbar implementation of an integer matrix.

    Args:
        weights: signed integer matrix ``(rows, cols)``.
        slicing: weight precision / cell-slicing configuration.
        bits_input: activation precision (unsigned).
        device: ReRAM cell parameters.
        adc_bits: ADC resolution; ``None`` sizes it for lossless readout.
        noise: optional non-ideality model (forces the analog path).
        analog: evaluate through Kirchhoff currents (True) or digitally
            (False).  Both are bit-exact in the ideal case.
    """

    def __init__(
        self,
        weights: np.ndarray,
        slicing: WeightSlicing | None = None,
        bits_input: int = 8,
        device: ReRAMDeviceParams | None = None,
        adc_bits: int | None = None,
        noise: NoiseModel | None = None,
        analog: bool = False,
    ) -> None:
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got ndim={weights.ndim}")
        self.slicing = slicing or WeightSlicing()
        self.bits_input = bits_input
        self.device = device or ReRAMDeviceParams(bits_per_cell=self.slicing.bits_per_cell)
        if self.device.bits_per_cell != self.slicing.bits_per_cell:
            raise ShapeError(
                "device bits_per_cell must match slicing "
                f"({self.device.bits_per_cell} != {self.slicing.bits_per_cell})"
            )
        self.noise = noise
        self.analog = analog or noise is not None
        self.rows, self.cols = weights.shape

        pos_digits, neg_digits = slice_weights(weights, self.slicing)
        self._tiles_pos = [
            CrossbarArray(pos_digits[:, :, d], self.device, noise)
            for d in range(self.slicing.num_slices)
        ]
        self._tiles_neg = [
            CrossbarArray(neg_digits[:, :, d], self.device, noise)
            for d in range(self.slicing.num_slices)
        ]
        self.adc: ADCParams | None = (
            adc_for_crossbar(self.rows, self.device.num_levels, adc_bits)
            if adc_bits is not None
            else None
        )

    @property
    def num_slices(self) -> int:
        """Digit planes per weight (each has a +/- crossbar pair)."""
        return self.slicing.num_slices

    def _read_tile(self, tile: CrossbarArray, pulses: np.ndarray) -> np.ndarray:
        if self.analog:
            raw = tile.digit_sums(pulses)
        else:
            raw = tile.ideal_digit_sums(pulses)
        return quantize_readout(raw, self.adc)

    def matvec(self, x: np.ndarray) -> PipelineResult:
        """Evaluate ``x @ W`` for one unsigned integer activation vector."""
        x = np.asarray(x)
        if x.shape != (self.rows,):
            raise ShapeError(f"activation must be ({self.rows},), got {x.shape}")
        planes = bit_serial_inputs(x, self.bits_input)
        adder = ShiftAdder()
        activity = PipelineActivity(matvecs=1)
        for b in range(self.bits_input):
            pulses = planes[b]
            activity.input_pulses += int(pulses.sum())
            for d in range(self.num_slices):
                pos = self._read_tile(self._tiles_pos[d], pulses)
                neg = self._read_tile(self._tiles_neg[d], pulses)
                activity.adc_conversions += 2 * self.cols
                adder.accumulate_signed(
                    pos, neg, shift=b + d * self.slicing.bits_per_cell
                )
        activity.shift_add_ops = adder.operations
        return PipelineResult(values=adder.value, activity=activity)

    def matmul(self, x: np.ndarray) -> PipelineResult:
        """Evaluate ``X @ W`` row by row for ``X (n, rows)``."""
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.rows:
            raise ShapeError(f"X must be (n, {self.rows}), got {x.shape}")
        outs = np.empty((x.shape[0], self.cols), dtype=np.int64)
        activity = PipelineActivity()
        for i, row in enumerate(x):
            result = self.matvec(row)
            outs[i] = result.values
            activity.merge(result.activity)
        return PipelineResult(values=outs, activity=activity)
