"""Analog crossbar vector-matrix multiplication.

A :class:`CrossbarArray` holds a conductance matrix programmed from integer
digits and evaluates Kirchhoff-law column currents for binary wordline
pulses.  Non-idealities (conductance variation, read noise, first-order
IR drop) are opt-in via :class:`repro.reram.noise.NoiseModel` so the exact
integer pipeline and the degradation studies share one code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.reram.device import (
    ReRAMDeviceParams,
    conductance_grid,
    digits_to_conductance,
)
from repro.reram.noise import NoiseModel


class CrossbarArray:
    """One physical crossbar tile programmed with digit values.

    Args:
        digits: integer digit matrix ``(rows, cols)``; values in
            ``[0, 2^bits_per_cell)``.
        device: cell electrical parameters.
        noise: optional non-ideality model; ``None`` means ideal.
        wire_resistance: per-cell-segment wire resistance (ohms) used by the
            IR-drop approximation when ``noise.ir_drop`` is enabled.
    """

    def __init__(
        self,
        digits: np.ndarray,
        device: ReRAMDeviceParams | None = None,
        noise: NoiseModel | None = None,
        wire_resistance: float = 2.5,
    ) -> None:
        digits = np.asarray(digits)
        if digits.ndim != 2:
            raise ShapeError(f"digits must be 2-D (rows, cols), got ndim={digits.ndim}")
        self.device = device or ReRAMDeviceParams()
        self.noise = noise
        self.wire_resistance = wire_resistance
        self.digits = digits.astype(np.int64)
        conductance = digits_to_conductance(self.digits, self.device)
        if noise is not None:
            conductance = noise.apply_programming(conductance, self.device)
        self.conductance = conductance

    @property
    def rows(self) -> int:
        """Wordline count."""
        return self.digits.shape[0]

    @property
    def cols(self) -> int:
        """Bitline count."""
        return self.digits.shape[1]

    # ------------------------------------------------------------------
    # Analog evaluation
    # ------------------------------------------------------------------
    def column_currents(self, pulses: np.ndarray) -> np.ndarray:
        """Column currents (amperes) for one binary wordline pulse vector."""
        pulses = np.asarray(pulses)
        if pulses.shape != (self.rows,):
            raise ShapeError(
                f"pulse vector must be ({self.rows},), got {pulses.shape}"
            )
        voltages = pulses.astype(np.float64) * self.device.read_voltage
        effective_g = self.conductance
        if self.noise is not None and self.noise.ir_drop:
            effective_g = self._ir_drop_conductance(pulses)
        currents = voltages @ effective_g
        if self.noise is not None:
            currents = self.noise.apply_read(currents)
        return currents

    def _ir_drop_conductance(self, pulses: np.ndarray) -> np.ndarray:
        """First-order IR-drop attenuation.

        The voltage reaching cell ``(r, c)`` sags with the cumulative wire
        resistance of its row/column path and the current drawn by cells
        closer to the drivers.  We use the standard first-order bound: an
        attenuation factor per cell of
        ``1 / (1 + R_wire * (r + c) * G_cell_mean * n_active)`` — cheap,
        monotone in distance and load, and adequate for sensitivity studies
        (the paper itself evaluates ideal arrays via NeuroSim+).
        """
        n_active = max(int(np.sum(pulses != 0)), 1)
        r_idx = np.arange(self.rows)[:, None]
        c_idx = np.arange(self.cols)[None, :]
        g_mean = float(self.conductance.mean())
        atten = 1.0 / (
            1.0 + self.wire_resistance * (r_idx + c_idx) * g_mean * n_active
        )
        return self.conductance * atten

    # ------------------------------------------------------------------
    # Digital interpretation
    # ------------------------------------------------------------------
    def digit_sums(self, pulses: np.ndarray) -> np.ndarray:
        """Recover integer column sums from analog currents.

        With the uniform conductance grid, the current of column ``c`` for
        binary pulses ``b`` is ``V*(g_min * sum(b) + dG * sum(b * digit))``,
        so the integer partial sum is an exact affine readback.  This models
        the ideal integrate-and-fire read circuit; quantization/saturation
        is applied separately by :mod:`repro.reram.adc`.
        """
        currents = self.column_currents(pulses)
        grid = conductance_grid(self.device)
        delta_g = grid[1] - grid[0] if self.device.num_levels > 1 else 1.0
        active = float(np.sum(np.asarray(pulses) != 0))
        base = self.device.read_voltage * self.device.g_min * active
        sums = (currents - base) / (self.device.read_voltage * delta_g)
        return np.rint(sums).astype(np.int64)

    def ideal_digit_sums(self, pulses: np.ndarray) -> np.ndarray:
        """Integer column sums computed digitally (no analog path)."""
        pulses = np.asarray(pulses)
        if pulses.shape != (self.rows,):
            raise ShapeError(
                f"pulse vector must be ({self.rows},), got {pulses.shape}"
            )
        return pulses.astype(np.int64) @ self.digits

    def max_column_sum(self) -> int:
        """Worst-case digit sum (all rows active, max digits) for ADC sizing."""
        return int(self.rows * (self.device.num_levels - 1))
