"""Write-verify programming of crossbar conductances.

Multi-level cells are programmed iteratively: apply a write pulse, read
back, and re-pulse cells whose quantized level missed the target.  The
model perturbs each attempt with the noise model's programming variation
and reports convergence statistics — used by the endurance/variation
sensitivity studies and to cost programming energy in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.reram.device import (
    ReRAMDeviceParams,
    conductance_to_digits,
    digits_to_conductance,
)
from repro.reram.noise import NoiseModel
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of a write-verify programming session.

    Attributes:
        conductance: final programmed conductance matrix.
        iterations: verify rounds executed.
        total_pulses: cumulative write pulses over all cells and rounds.
        converged_fraction: cells whose readback level matches the target.
    """

    conductance: np.ndarray
    iterations: int
    total_pulses: int
    converged_fraction: float


class WriteVerifyProgrammer:
    """Iterative write-verify loop.

    Args:
        device: cell parameters.
        noise: variation model applied to each write attempt; ``None``
            converges in one round.
        max_iterations: verify-round budget before giving up on stragglers.
    """

    def __init__(
        self,
        device: ReRAMDeviceParams | None = None,
        noise: NoiseModel | None = None,
        max_iterations: int = 10,
    ) -> None:
        check_positive_int(max_iterations, "max_iterations")
        self.device = device or ReRAMDeviceParams()
        self.noise = noise
        self.max_iterations = max_iterations

    def program(self, target_digits: np.ndarray) -> ProgramResult:
        """Program a digit matrix, returning conductances and statistics."""
        target = np.asarray(target_digits)
        if target.size == 0:
            raise DeviceError("cannot program an empty digit matrix")
        ideal = digits_to_conductance(target, self.device)
        conductance = np.zeros_like(ideal)
        needs_write = np.ones(target.shape, dtype=bool)
        total_pulses = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            attempts = ideal.copy()
            if self.noise is not None:
                attempts = self.noise.apply_programming(attempts, self.device)
            conductance = np.where(needs_write, attempts, conductance)
            total_pulses += int(needs_write.sum())
            readback = conductance_to_digits(conductance, self.device)
            needs_write = readback != target
            if not needs_write.any():
                break
        converged = 1.0 - float(needs_write.mean())
        return ProgramResult(
            conductance=conductance,
            iterations=iterations,
            total_pulses=total_pulses,
            converged_fraction=converged,
        )
