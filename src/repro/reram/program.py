"""Write-verify programming of crossbar conductances.

Multi-level cells are programmed iteratively: apply a write pulse, read
back, and re-pulse cells whose quantized level missed the target.  The
model perturbs each attempt with the noise model's programming variation
and reports convergence statistics — used by the endurance/variation
sensitivity studies and to cost programming energy in the ablations.

Stuck-at faults are a *physical* property of the array, not of a write
attempt: the defect pattern is sampled once per session (from the noise
model's dedicated fault stream) and held fixed across verify rounds, so
a cell pinned to the wrong extreme re-pulses every round and is reported
unconverged instead of "recovering" on a lucky re-roll.  Each round's
write variation draws from its own stream, so a whole programming
session is a pure function of ``(noise.seed, stream, target)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.reram.device import (
    ReRAMDeviceParams,
    conductance_to_digits,
    digits_to_conductance,
)
from repro.reram.noise import NoiseModel
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of a write-verify programming session.

    Attributes:
        conductance: final programmed conductance matrix.
        iterations: verify rounds executed.
        total_pulses: cumulative write pulses over all cells and rounds.
        converged_fraction: cells whose readback level matches the target.
        stuck_cells: cells the sampled fault pattern pinned to an extreme
            conductance (converged or not).
    """

    conductance: np.ndarray
    iterations: int
    total_pulses: int
    converged_fraction: float
    stuck_cells: int = 0


class WriteVerifyProgrammer:
    """Iterative write-verify loop.

    Args:
        device: cell parameters.
        noise: variation model applied to each write attempt; ``None``
            converges in one round.
        max_iterations: verify-round budget before giving up on stragglers.
    """

    def __init__(
        self,
        device: ReRAMDeviceParams | None = None,
        noise: NoiseModel | None = None,
        max_iterations: int = 10,
    ) -> None:
        check_positive_int(max_iterations, "max_iterations")
        self.device = device or ReRAMDeviceParams()
        self.noise = noise
        self.max_iterations = max_iterations

    def program(self, target_digits: np.ndarray, *, stream: int = 0) -> ProgramResult:
        """Program a digit matrix, returning conductances and statistics.

        ``stream`` namespaces the session's RNG streams, so distinct
        sessions on one programmer can draw independent variation while
        repeating a session reproduces it bit-for-bit.
        """
        target = np.asarray(target_digits)
        if target.size == 0:
            raise DeviceError("cannot program an empty digit matrix")
        ideal = digits_to_conductance(target, self.device)
        stuck_mask = None
        stuck_extremes = None
        if self.noise is not None and self.noise.stuck_at_rate > 0.0:
            # Once per array: the defect pattern persists across rounds.
            stuck_mask, stuck_extremes = self.noise.stuck_faults(
                target.shape, self.device, stream=stream
            )
        conductance = np.zeros_like(ideal)
        needs_write = np.ones(target.shape, dtype=bool)
        total_pulses = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            if self.noise is not None and self.noise.programming_sigma > 0.0:
                attempts = ideal * self.noise.programming_factors(
                    target.shape, stream=stream * self.max_iterations + iterations - 1
                )
            else:
                attempts = ideal.copy()
            if stuck_mask is not None:
                attempts = np.where(stuck_mask, stuck_extremes, attempts)
            attempts = np.clip(attempts, self.device.g_min, self.device.g_max)
            conductance = np.where(needs_write, attempts, conductance)
            total_pulses += int(needs_write.sum())
            readback = conductance_to_digits(conductance, self.device)
            needs_write = readback != target
            if not needs_write.any():
                break
        converged = 1.0 - float(needs_write.mean())
        return ProgramResult(
            conductance=conductance,
            iterations=iterations,
            total_pulses=total_pulses,
            converged_fraction=converged,
            stuck_cells=0 if stuck_mask is None else int(stuck_mask.sum()),
        )
