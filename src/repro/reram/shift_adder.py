"""Shift-and-add accumulation across input bits and weight slices.

The shift adder (paper Fig. 1) recombines partial sums: ADC outputs for
input-bit plane ``b`` are weighted ``2^b``, digit-slice ``d`` outputs are
weighted ``base^d``, and differential (negative) columns subtract.  The
class keeps operation counters so the performance model can charge
shift-add energy from measured activity rather than formulas.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative_int, check_positive_int


class ShiftAdder:
    """Accumulates weighted partial sums and counts the work done.

    Attributes:
        operations: number of scalar shift-add operations performed.
        accumulations: number of accumulate calls (vector granularity).
    """

    def __init__(self) -> None:
        self.operations = 0
        self.accumulations = 0
        self._acc: np.ndarray | None = None

    def reset(self) -> None:
        """Clear the accumulator (counters persist)."""
        self._acc = None

    def accumulate(self, partial: np.ndarray, shift: int) -> None:
        """Add ``partial << shift`` into the accumulator."""
        check_non_negative_int(shift, "shift")
        term = np.asarray(partial, dtype=np.int64) << shift
        if self._acc is None:
            self._acc = term.copy()
        else:
            self._acc = self._acc + term
        self.operations += int(term.size)
        self.accumulations += 1

    def accumulate_signed(self, pos: np.ndarray, neg: np.ndarray, shift: int) -> None:
        """Differential accumulate: ``(pos - neg) << shift``."""
        diff = np.asarray(pos, dtype=np.int64) - np.asarray(neg, dtype=np.int64)
        self.accumulate(diff, shift)

    @property
    def value(self) -> np.ndarray:
        """Current accumulator contents (zeros-like if nothing accumulated)."""
        if self._acc is None:
            return np.zeros(0, dtype=np.int64)
        return self._acc


def combine_bit_planes(partials: np.ndarray, radix_bits: int = 1) -> np.ndarray:
    """Pure-function shift-add over the leading axis.

    ``partials[k]`` is weighted ``2^(radix_bits * k)``; equivalent to what a
    :class:`ShiftAdder` computes but convenient for vectorized pipelines.
    """
    check_positive_int(radix_bits, "radix_bits")
    partials = np.asarray(partials, dtype=np.int64)
    out = np.zeros(partials.shape[1:], dtype=np.int64)
    for k in range(partials.shape[0]):
        out += partials[k] << (radix_bits * k)
    return out
