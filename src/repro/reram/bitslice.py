"""Weight bit-slicing and input bit-serial encoding.

A ``bits_weight``-bit signed weight cannot fit one multi-level cell, so it
is split into ``ceil(bits_weight / bits_per_cell)`` base-``2^bits_per_cell``
digits, each programmed into its own physical column; negative values use a
differential pair (separate positive and negative column groups whose ADC
results are subtracted).  Activations stream in bit-serially: one binary
wordline pulse per activation bit, recombined by the shift-adder.

This is the ISAAC/PipeLayer-style arithmetic all three designs in the paper
share; RED changes only the *mapping* and *dataflow*, never this number
format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, ParameterError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class WeightSlicing:
    """Slicing configuration.

    Attributes:
        bits_weight: signed weight precision (two's-complement range).
        bits_per_cell: bits stored per physical cell.
    """

    bits_weight: int = 8
    bits_per_cell: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.bits_weight, "bits_weight")
        check_positive_int(self.bits_per_cell, "bits_per_cell")

    @property
    def num_slices(self) -> int:
        """Digit columns per logical weight column."""
        return -(-self.bits_weight // self.bits_per_cell)

    @property
    def base(self) -> int:
        """Digit radix, ``2^bits_per_cell``."""
        return 1 << self.bits_per_cell

    @property
    def magnitude_max(self) -> int:
        """Largest representable weight magnitude, ``2^(bits_weight-1) - 1``."""
        return (1 << (self.bits_weight - 1)) - 1


def slice_weights(
    weights: np.ndarray, slicing: WeightSlicing
) -> tuple[np.ndarray, np.ndarray]:
    """Split signed integer weights into differential digit planes.

    Args:
        weights: integer array, any shape, values within the signed range.
        slicing: precision configuration.

    Returns:
        ``(pos_digits, neg_digits)`` of shape ``weights.shape + (num_slices,)``
        with digit ``d`` in position ``d`` (little-endian: slice 0 is the
        least-significant digit).  Positive weights populate ``pos_digits``,
        negative ones ``neg_digits``; the recombination is
        ``sum_d base^d * (pos_d - neg_d)``.
    """
    w = np.asarray(weights)
    if not np.issubdtype(w.dtype, np.integer):
        raise ParameterError("slice_weights expects integer weights; quantize first")
    limit = 1 << (slicing.bits_weight - 1)
    if w.size and (w.min() < -limit or w.max() > limit - 1):
        raise DeviceError(
            f"weights outside signed {slicing.bits_weight}-bit range: "
            f"[{w.min()}, {w.max()}]"
        )
    pos = np.where(w > 0, w, 0).astype(np.int64)
    neg = np.where(w < 0, -w, 0).astype(np.int64)

    def split(mag: np.ndarray) -> np.ndarray:
        digits = np.empty(mag.shape + (slicing.num_slices,), dtype=np.int64)
        rem = mag.copy()
        for d in range(slicing.num_slices):
            digits[..., d] = rem % slicing.base
            rem //= slicing.base
        return digits

    return split(pos), split(neg)


def reassemble_slices(
    pos_digits: np.ndarray, neg_digits: np.ndarray, slicing: WeightSlicing
) -> np.ndarray:
    """Inverse of :func:`slice_weights`."""
    weights = np.zeros(pos_digits.shape[:-1], dtype=np.int64)
    for d in range(slicing.num_slices):
        weights += (slicing.base ** d) * (
            pos_digits[..., d].astype(np.int64) - neg_digits[..., d].astype(np.int64)
        )
    return weights


def bit_serial_inputs(x: np.ndarray, bits_input: int) -> np.ndarray:
    """Decompose unsigned integer activations into binary pulse planes.

    Args:
        x: integer array of activations in ``[0, 2^bits_input)``.
        bits_input: activation precision.

    Returns:
        Array of shape ``(bits_input,) + x.shape`` of {0,1} pulses; plane
        ``b`` carries bit ``b`` (LSB first), so
        ``x = sum_b 2^b * planes[b]``.
    """
    check_positive_int(bits_input, "bits_input")
    xv = np.asarray(x)
    if not np.issubdtype(xv.dtype, np.integer):
        raise ParameterError("bit_serial_inputs expects integer activations")
    if xv.size and (xv.min() < 0 or xv.max() >= (1 << bits_input)):
        raise DeviceError(
            f"activations outside unsigned {bits_input}-bit range: "
            f"[{xv.min()}, {xv.max()}]"
        )
    planes = np.empty((bits_input,) + xv.shape, dtype=np.int64)
    for b in range(bits_input):
        planes[b] = (xv >> b) & 1
    return planes
