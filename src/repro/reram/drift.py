"""Conductance retention drift.

ReRAM cells lose conductance over time (filament relaxation); the usual
model is a power law ``G(t) = G0 * (t / t0) ^ (-nu)`` with a small drift
exponent ``nu``.  This module applies drift to programmed arrays and
measures the induced arithmetic error — the data for a retention-vs-
accuracy study the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.reram.device import ReRAMDeviceParams
from repro.utils.validation import check_positive_float


@dataclass(frozen=True)
class DriftModel:
    """Power-law retention drift.

    Attributes:
        nu: drift exponent (typical HfOx values 0.005-0.1).
        t0: reference time at which the programmed state is exact, seconds.
    """

    nu: float = 0.02
    t0: float = 1.0

    def __post_init__(self) -> None:
        if self.nu < 0.0:
            raise ParameterError(f"nu must be >= 0, got {self.nu}")
        check_positive_float(self.t0, "t0")

    def conductance_at(self, g0: np.ndarray, t: float, device: ReRAMDeviceParams) -> np.ndarray:
        """Drifted conductances at time ``t`` (clipped to the device window).

        Drift acts on the programmable window above HRS: the filament
        relaxes toward the high-resistance state, so ``G - g_min`` decays
        while fully-reset cells stay put.
        """
        check_positive_float(t, "t")
        if t <= self.t0:
            return np.asarray(g0, dtype=np.float64).copy()
        factor = (t / self.t0) ** (-self.nu)
        drifted = device.g_min + (np.asarray(g0, dtype=np.float64) - device.g_min) * factor
        return np.clip(drifted, device.g_min, device.g_max)


def drift_error_sweep(
    weights: np.ndarray,
    times: tuple[float, ...] = (1.0, 3600.0, 86400.0, 2.6e6, 3.2e7),
    nu: float = 0.02,
    bits_input: int = 8,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Relative matmul error vs retention time for a programmed array.

    Args:
        weights: signed integer weight matrix ``(rows, cols)``.
        times: evaluation times in seconds (default: 1 s .. ~1 year).
        nu: drift exponent.
        bits_input: activation precision for the probe vectors.
        seed: RNG seed for the probe activations.

    Returns:
        ``(time, relative_error)`` pairs, starting error-free at ``t0``.
    """
    from repro.reram.bitslice import WeightSlicing, bit_serial_inputs, slice_weights
    from repro.reram.device import conductance_grid, digits_to_conductance

    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ParameterError("weights must be 2-D")
    slicing = WeightSlicing()
    device = ReRAMDeviceParams(bits_per_cell=slicing.bits_per_cell)
    model = DriftModel(nu=nu)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1 << bits_input, size=(8, weights.shape[0]))
    exact = x @ weights

    pos, neg = slice_weights(weights, slicing)
    grid = conductance_grid(device)
    delta_g = grid[1] - grid[0]

    def evaluate_at(t: float) -> float:
        out = np.zeros_like(exact, dtype=np.float64)
        planes = [bit_serial_inputs(row, bits_input) for row in x]
        for d in range(slicing.num_slices):
            for sign, digit_plane in ((1.0, pos[..., d]), (-1.0, neg[..., d])):
                g0 = digits_to_conductance(digit_plane, device)
                g_t = model.conductance_at(g0, t, device)
                # Analog readback of the drifted array, per input bit.
                for i in range(x.shape[0]):
                    for b in range(bits_input):
                        pulses = planes[i][b].astype(np.float64)
                        currents = pulses @ (g_t * device.read_voltage)
                        active = pulses.sum()
                        sums = (currents - device.read_voltage * device.g_min * active) / (
                            device.read_voltage * delta_g
                        )
                        out[i] += sign * np.rint(sums) * (1 << (b + 2 * d))
        denom = np.abs(exact).mean() + 1e-300
        return float(np.abs(out - exact).mean() / denom)

    return [(t, evaluate_at(t)) for t in times]
