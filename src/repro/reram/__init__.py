"""ReRAM device and crossbar circuit models.

Functional (value-level) simulation of the PIM fabric all three designs
share (paper Fig. 1):

* :mod:`repro.reram.device` — 1T1R cell: conductance range, multi-level
  programming grid.
* :mod:`repro.reram.bitslice` — weight bit-slicing across cells and input
  bit-serial streaming, with differential (positive/negative) columns.
* :mod:`repro.reram.crossbar` — analog vector-matrix multiply with optional
  conductance variation, read noise and a first-order IR-drop model.
* :mod:`repro.reram.adc` — read circuit / integrate-and-fire quantization.
* :mod:`repro.reram.shift_adder` — shift-and-add accumulation across input
  bits and weight slices.
* :mod:`repro.reram.program` — write-verify programming loop.
* :mod:`repro.reram.pipeline` — the composed bit-accurate VMM used by the
  accelerator designs; exactly reproduces integer matmul when the ADC has
  full resolution.
* :mod:`repro.reram.drift` — power-law conductance retention drift.
* :mod:`repro.reram.batch` — vectorized Monte-Carlo fidelity sampling
  over (seed, time) grids, bit-identical to the scalar modules.

Seeding contract
----------------
All randomness in this package derives from
``np.random.SeedSequence`` spawning — there is no shared mutable
generator state.  :class:`~repro.reram.noise.NoiseModel` derives one
child generator per operation from ``SeedSequence(seed,
spawn_key=(domain, stream))``, where the *domain* separates operation
types (programming variation, stuck-at faults, read noise) and the
*stream* separates operations within a type.  Consequences callers can
rely on:

* identical ``(seed, domain, stream)`` -> bit-identical draws, in any
  process, at any point of any call sequence;
* operations of one type never shift the draws of another (enabling
  read noise cannot change a stuck-at pattern, and vice versa);
* the write-verify programmer samples its stuck-at pattern **once** per
  session and holds it fixed across verify rounds — defective cells
  stay defective;
* the batched fidelity sampler keys every stream by values (the seed,
  the bit pattern of the time), so its results are independent of
  batch order and sharding, and bit-identical to the scalar oracle.

Callers that omit ``stream`` consume a per-model monotone counter per
domain: repeated calls draw fresh (but reproducible) variates — the
behaviour the crossbar pipeline wants for per-tile programming and
per-read noise.
"""

from repro.reram.adc import ADCParams, exact_adc_bits, quantize_readout
from repro.reram.batch import (
    FidelityProfile,
    fidelity_point,
    profile_for_design,
    sample_fidelity_grid,
)
from repro.reram.bitslice import (
    WeightSlicing,
    bit_serial_inputs,
    reassemble_slices,
    slice_weights,
)
from repro.reram.crossbar import CrossbarArray
from repro.reram.device import ReRAMDeviceParams, conductance_grid
from repro.reram.drift import DriftModel
from repro.reram.noise import NoiseModel
from repro.reram.pipeline import CrossbarPipeline, PipelineResult
from repro.reram.program import ProgramResult, WriteVerifyProgrammer
from repro.reram.shift_adder import ShiftAdder

__all__ = [
    "ReRAMDeviceParams",
    "conductance_grid",
    "WeightSlicing",
    "slice_weights",
    "reassemble_slices",
    "bit_serial_inputs",
    "CrossbarArray",
    "ADCParams",
    "quantize_readout",
    "exact_adc_bits",
    "ShiftAdder",
    "NoiseModel",
    "WriteVerifyProgrammer",
    "ProgramResult",
    "CrossbarPipeline",
    "PipelineResult",
    "DriftModel",
    "FidelityProfile",
    "fidelity_point",
    "profile_for_design",
    "sample_fidelity_grid",
]
