"""ReRAM device and crossbar circuit models.

Functional (value-level) simulation of the PIM fabric all three designs
share (paper Fig. 1):

* :mod:`repro.reram.device` — 1T1R cell: conductance range, multi-level
  programming grid.
* :mod:`repro.reram.bitslice` — weight bit-slicing across cells and input
  bit-serial streaming, with differential (positive/negative) columns.
* :mod:`repro.reram.crossbar` — analog vector-matrix multiply with optional
  conductance variation, read noise and a first-order IR-drop model.
* :mod:`repro.reram.adc` — read circuit / integrate-and-fire quantization.
* :mod:`repro.reram.shift_adder` — shift-and-add accumulation across input
  bits and weight slices.
* :mod:`repro.reram.program` — write-verify programming loop.
* :mod:`repro.reram.pipeline` — the composed bit-accurate VMM used by the
  accelerator designs; exactly reproduces integer matmul when the ADC has
  full resolution.
"""

from repro.reram.device import ReRAMDeviceParams, conductance_grid
from repro.reram.bitslice import (
    WeightSlicing,
    slice_weights,
    reassemble_slices,
    bit_serial_inputs,
)
from repro.reram.crossbar import CrossbarArray
from repro.reram.adc import ADCParams, quantize_readout, exact_adc_bits
from repro.reram.shift_adder import ShiftAdder
from repro.reram.noise import NoiseModel
from repro.reram.program import WriteVerifyProgrammer, ProgramResult
from repro.reram.pipeline import CrossbarPipeline, PipelineResult

__all__ = [
    "ReRAMDeviceParams",
    "conductance_grid",
    "WeightSlicing",
    "slice_weights",
    "reassemble_slices",
    "bit_serial_inputs",
    "CrossbarArray",
    "ADCParams",
    "quantize_readout",
    "exact_adc_bits",
    "ShiftAdder",
    "NoiseModel",
    "WriteVerifyProgrammer",
    "ProgramResult",
    "CrossbarPipeline",
    "PipelineResult",
]
