"""Vectorized Monte-Carlo fidelity sampling over (seed, time) grids.

The scalar modules in this package model one non-ideality at a time:
:class:`~repro.reram.noise.NoiseModel` perturbs one array,
:class:`~repro.reram.drift.DriftModel` drifts it to one time,
:func:`~repro.reram.adc.quantize_readout` quantizes one readout.  A
sensitivity study wants the cross product — many seeds, many retention
times, per design — and looping the scalar path redraws the programming
variation and rebuilds models for every point.  This module draws the
whole grid struct-of-arrays:

* :class:`FidelityProfile` — the representative crossbar a design
  exposes to the fidelity plane (shape, device, ADC), derived from the
  design's registered hook or from its perf-model geometry.
* :func:`fidelity_point` — the scalar oracle: one ``(seed, time)``
  sample composed *only* from the scalar module APIs.
* :func:`sample_fidelity_grid` — the batched sampler: programming
  variation and fault patterns drawn once per seed, drift applied once
  per unique time across the whole seed stack, readout/ADC/metrics
  vectorized over the grid.

Bit-reproducibility contract
----------------------------
Batched results are **bit-identical** to the scalar oracle and
**invariant to batch order and sharding** (property-tested in
``tests/reram/test_batch.py``).  Both hold because every random draw is
keyed by *values*, never by batch position: programming variation and
stuck faults come from ``SeedSequence(seed, spawn_key=(domain, 0))``
(the :mod:`repro.reram.noise` seeding contract), and read noise is
keyed by the bit pattern of the time value itself
(:func:`read_noise_stream`).  The arithmetic is elementwise apart from
the row-sum and per-point metric reductions, which reduce the same
contiguous data in the same order in both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.eval.parallel import FidelityStats
from repro.reram.adc import ADCParams, adc_for_crossbar, quantize_readout
from repro.reram.device import (
    ReRAMDeviceParams,
    conductance_grid,
    digits_to_conductance,
)
from repro.reram.drift import DriftModel
from repro.reram.noise import NoiseModel
from repro.utils.validation import check_positive_float, check_positive_int

#: Root entropy of the fixed probe-digit pattern.  Deliberately not part
#: of the Monte-Carlo seed axis: the probe weights are a property of the
#: profile, the non-idealities are the random variables.
_DIGITS_SEED = 0xF1DE17


@dataclass(frozen=True)
class FidelityProfile:
    """The representative crossbar one design exposes to the plane.

    Attributes:
        design: canonical design name.
        rows: wordlines of the probe array.
        cols: bitlines of the probe array.
        device: cell parameters (levels, conductance window, voltage).
        adc: read-circuit quantizer; ``None`` models a lossless readout.
    """

    design: str
    rows: int
    cols: int
    device: ReRAMDeviceParams
    adc: ADCParams | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")


@lru_cache(maxsize=256)
def profile_digits(profile: FidelityProfile) -> np.ndarray:
    """The profile's fixed probe digit matrix ``(rows, cols)``.

    A deterministic function of the probe shape and level count only —
    every seed and time of a grid reads the same programmed weights, so
    the error metrics isolate the non-idealities.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(
            _DIGITS_SEED,
            spawn_key=(profile.rows, profile.cols, profile.device.num_levels),
        )
    )
    digits = rng.integers(
        0, profile.device.num_levels, size=(profile.rows, profile.cols)
    )
    digits.setflags(write=False)
    return digits


def derived_fidelity_profile(
    name: str,
    spec,
    tech=None,
    *,
    adc_bits: int | None = None,
    max_rows: int = 128,
    max_cols: int = 128,
) -> FidelityProfile:
    """The default profile derivation from a design's perf geometry.

    Builds the design, reads its
    :class:`~repro.arch.perf_input.DesignPerfInput` and probes a
    ``min(bitline_rows, max_rows) x min(wordline_cols, max_cols)``
    array on a device with the technology's ``bits_per_cell``; the ADC
    is sized for that array (``adc_bits=None`` -> lossless).  This is
    what makes every registered design appear in the fidelity frontier
    automatically — a design only needs a registry hook when its
    representative array is *not* what its perf model implies.
    """
    from repro.api.registry import build_design, get_design
    from repro.arch.tech import default_tech

    entry = get_design(name)
    if tech is None:
        tech = default_tech()
    check_positive_int(max_rows, "max_rows")
    check_positive_int(max_cols, "max_cols")
    perf = build_design(entry.name, spec, tech).perf_input()
    rows = min(int(perf.bitline_rows), max_rows)
    cols = min(int(perf.wordline_cols), max_cols)
    device = ReRAMDeviceParams(bits_per_cell=tech.bits_per_cell)
    adc = adc_for_crossbar(rows, device.num_levels, adc_bits)
    return FidelityProfile(
        design=entry.name, rows=rows, cols=cols, device=device, adc=adc
    )


def profile_for_design(
    name: str,
    spec,
    tech=None,
    *,
    adc_bits: int | None = None,
    max_rows: int = 128,
    max_cols: int = 128,
) -> FidelityProfile:
    """The fidelity profile for one design: registry hook or derivation.

    Designs registered with a ``fidelity_profile`` hook
    (:class:`~repro.api.registry.DesignEntry`) control their probe array
    explicitly; everything else falls back to
    :func:`derived_fidelity_profile`.
    """
    from repro.api.registry import get_design

    entry = get_design(name)
    if entry.fidelity_profile is not None:
        return entry.fidelity_profile(
            spec, tech, adc_bits=adc_bits, max_rows=max_rows, max_cols=max_cols
        )
    return derived_fidelity_profile(
        entry.name, spec, tech,
        adc_bits=adc_bits, max_rows=max_rows, max_cols=max_cols,
    )


def read_noise_stream(time_s: float) -> int:
    """The read-noise stream id for a retention time.

    The packed IEEE-754 bits of the (positive) time value — a pure
    value key, so a grid point draws identical read noise no matter
    where it sits in a batch or which shard it lands in.
    """
    return int(np.float64(time_s).view(np.uint64))


def _reconstructed_sums(
    currents: np.ndarray, rows: int, device: ReRAMDeviceParams, adc: ADCParams | None
) -> np.ndarray:
    """ADC-reconstructed integer column sums from column currents.

    The affine readback the crossbar's integrate-and-fire circuit
    performs (:meth:`~repro.reram.crossbar.CrossbarArray.digit_sums`)
    followed by the ADC transfer function — elementwise, so the scalar
    and batched paths share it verbatim.
    """
    grid = conductance_grid(device)
    delta_g = grid[1] - grid[0] if device.num_levels > 1 else 1.0
    base = device.read_voltage * device.g_min * rows
    sums = (currents - base) / (device.read_voltage * delta_g)
    return quantize_readout(np.rint(sums).astype(np.int64), adc)


def _point_stats(
    profile: FidelityProfile,
    layer: str,
    seed: int,
    time_s: float,
    recon: np.ndarray,
    exact: np.ndarray,
    stuck_fraction: float,
) -> FidelityStats:
    """Metrics of one reconstructed readout vs the exact column sums."""
    err = recon - exact
    denom = float(np.abs(exact).mean()) or 1.0
    return FidelityStats(
        design=profile.design,
        layer=layer,
        seed=int(seed),
        time_s=float(time_s),
        rms_error=float(np.sqrt(np.mean(err**2))) / denom,
        mean_abs_error=float(np.abs(err).mean()) / denom,
        max_abs_error=float(np.abs(err).max()) / denom,
        stuck_fraction=stuck_fraction,
    )


def fidelity_point(
    profile: FidelityProfile,
    seed: int,
    time_s: float,
    *,
    nu: float = 0.02,
    programming_sigma: float = 0.05,
    read_noise_sigma: float = 0.0,
    stuck_at_rate: float = 0.0,
    layer: str = "",
) -> FidelityStats:
    """The scalar oracle: one ``(seed, time)`` fidelity sample.

    Composed entirely from the scalar module APIs — programming through
    :meth:`NoiseModel.apply_programming` (explicit streams), drift
    through :meth:`DriftModel.conductance_at`, read noise through
    :meth:`NoiseModel.apply_read` keyed by :func:`read_noise_stream`,
    quantization through :func:`quantize_readout`.  The batched sampler
    is property-tested bit-identical against this function.
    """
    device = profile.device
    digits = profile_digits(profile)
    model = NoiseModel(
        programming_sigma=programming_sigma,
        read_noise_sigma=read_noise_sigma,
        stuck_at_rate=stuck_at_rate,
        seed=seed,
    )
    ideal = digits_to_conductance(digits, device)
    programmed = model.apply_programming(ideal, device, stream=0, stuck_stream=0)
    mask, _ = model.stuck_faults(digits.shape, device, stream=0)
    drifted = DriftModel(nu=nu).conductance_at(programmed, time_s, device)
    currents = device.read_voltage * drifted.sum(axis=0)
    currents = model.apply_read(currents, stream=read_noise_stream(time_s))
    recon = _reconstructed_sums(currents, profile.rows, device, profile.adc)
    exact = digits.sum(axis=0)
    return _point_stats(
        profile, layer, seed, time_s, recon, exact, float(mask.mean())
    )


def sample_fidelity_grid(
    profile: FidelityProfile,
    points: Sequence[tuple[int, float]],
    *,
    nu: float = 0.02,
    programming_sigma: float = 0.05,
    read_noise_sigma: float = 0.0,
    stuck_at_rate: float = 0.0,
    layer: str = "",
) -> list[FidelityStats]:
    """Draw a whole ``(seed, time)`` grid in one struct-of-arrays pass.

    Args:
        profile: the probe array (see :func:`profile_for_design`).
        points: ``(seed, time_s)`` pairs; duplicates allowed (each
            occurrence returns the identical stats object content).
        nu: drift exponent.
        programming_sigma / read_noise_sigma / stuck_at_rate: the
            :class:`NoiseModel` knobs, shared by every point.
        layer: label stamped on every returned stats record.

    Returns:
        One :class:`FidelityStats` per point, in point order —
        bit-identical to ``[fidelity_point(profile, s, t, ...) for
        (s, t) in points]`` and therefore invariant to the order and
        sharding of ``points``.

    The work is factored by value: programming variation and the fault
    pattern are drawn once per *unique seed* (the scalar path redraws
    them for every time), drift is applied once per *unique time* over
    the whole ``(seeds, rows, cols)`` stack, and the readback, ADC and
    error metrics run vectorized over the full grid.
    """
    points = [(seed, time_s) for seed, time_s in points]
    if not points:
        return []
    device = profile.device
    digits = profile_digits(profile)
    rows, cols = digits.shape
    ideal = digits_to_conductance(digits, device)
    exact = digits.sum(axis=0)

    seed_slots: dict[int, int] = {}
    time_slots: dict[float, int] = {}
    for seed, time_s in points:
        seed_slots.setdefault(seed, len(seed_slots))
        time_slots.setdefault(time_s, len(time_slots))
    for time_s in time_slots:
        check_positive_float(time_s, "t")

    # Programming + faults: one draw per unique seed (value-keyed).
    num_seeds = len(seed_slots)
    models: list[NoiseModel] = [None] * num_seeds  # type: ignore[list-item]
    programmed = np.empty((num_seeds, rows, cols), dtype=np.float64)
    stuck_fractions: list[float] = [0.0] * num_seeds
    for seed, slot in seed_slots.items():
        model = NoiseModel(
            programming_sigma=programming_sigma,
            read_noise_sigma=read_noise_sigma,
            stuck_at_rate=stuck_at_rate,
            seed=seed,
        )
        models[slot] = model
        programmed[slot] = model.apply_programming(
            ideal, device, stream=0, stuck_stream=0
        )
        mask, _ = model.stuck_faults(digits.shape, device, stream=0)
        stuck_fractions[slot] = float(mask.mean())

    # Drift + readback: one pass per unique time over the seed stack.
    drift = DriftModel(nu=nu)
    currents = np.empty((len(time_slots), num_seeds, cols), dtype=np.float64)
    for time_s, time_slot in time_slots.items():
        if time_s <= drift.t0:
            drifted = programmed
        else:
            factor = (time_s / drift.t0) ** (-drift.nu)
            drifted = np.clip(
                device.g_min + (programmed - device.g_min) * factor,
                device.g_min,
                device.g_max,
            )
        currents[time_slot] = device.read_voltage * drifted.sum(axis=1)
    if read_noise_sigma > 0.0:
        # Same generator and draw as the scalar path: keyed by the
        # (seed, time-bits) values, one row at a time so the per-call
        # RMS matches apply_read exactly.
        for time_s, time_slot in time_slots.items():
            stream = read_noise_stream(time_s)
            for slot in range(num_seeds):
                currents[time_slot, slot] = models[slot].apply_read(
                    currents[time_slot, slot], stream=stream
                )

    # ADC + metrics: vectorized over the whole (time, seed, col) grid.
    recon = _reconstructed_sums(currents, rows, device, profile.adc)
    err = recon - exact
    denom = float(np.abs(exact).mean()) or 1.0
    rms = np.sqrt(np.mean(err**2, axis=-1)) / denom
    mean_abs = np.mean(np.abs(err), axis=-1) / denom
    max_abs = np.abs(err).max(axis=-1) / denom
    return [
        FidelityStats(
            design=profile.design,
            layer=layer,
            seed=int(seed),
            time_s=float(time_s),
            rms_error=float(rms[time_slots[time_s], seed_slots[seed]]),
            mean_abs_error=float(mean_abs[time_slots[time_s], seed_slots[seed]]),
            max_abs_error=float(max_abs[time_slots[time_s], seed_slots[seed]]),
            stuck_fraction=stuck_fractions[seed_slots[seed]],
        )
        for seed, time_s in points
    ]
