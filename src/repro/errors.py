"""Exception hierarchy for the RED reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one type at the API boundary.  Specific subclasses separate user
input problems (shapes, parameters) from internal modelling errors.

Failure taxonomy
----------------
The reliability plane (:mod:`repro.reliability`) splits failures into
*transient* errors, which the retrying runners and the store absorb per
:class:`~repro.reliability.policy.RetryPolicy`, and *permanent* errors,
which surface to the caller immediately (the CLI maps every surfaced
:class:`ReproError` to exit code 2).  The split is decided by
:func:`repro.reliability.policy.is_retryable`:

===========================  =========  =====================================
Error                        Handling   Rationale
===========================  =========  =====================================
``OSError`` (incl. injected  retried    transient I/O: a later attempt can
``InjectedFaultError``)                 succeed; the store degrades to
                                        read-only once retries exhaust
``WorkerCrashError`` /       retried    a pool worker died (OOM-kill
``BrokenProcessPool``                   analogue); the runner respawns the
                                        pool once, then degrades to
                                        in-process scalar execution
``ShardUnavailableError``    retried    a serving shard is down, mid-restart
                                        or circuit-broken; the supervisor
                                        respawns it and the front door
                                        reroutes its key range to the
                                        degraded in-process fallback — a
                                        later attempt can succeed
``OverloadedError``          retried    the admission queue shed the request
                                        deterministically; the envelope
                                        carries a ``retry_after_s`` hint the
                                        client should honour before resending
``EvaluationTimeoutError``   surfaced   the caller's per-batch ``timeout=``
                                        budget is final — retrying cannot
                                        create time
``DrainingError``            surfaced   the server is shutting down
                                        gracefully; resend to another
                                        replica, not to this one
``ShapeError`` /             surfaced   invalid input: deterministic, every
``ParameterError`` /                    retry fails identically
``MappingError`` / ...
``ServiceClosedError``       surfaced   programming error in the caller's
                                        lifecycle management
``SchemaError`` /            surfaced   malformed wire payload; the sender
``CacheError``                          must fix it, not resend it
===========================  =========  =====================================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """A tensor or layer shape is inconsistent or unsupported."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is out of its valid range."""


class MappingError(ReproError):
    """A crossbar mapping is malformed (wrong geometry, bad fold, ...)."""


class ScheduleError(ReproError):
    """A dataflow schedule is inconsistent with its layer specification."""


class DeviceError(ReproError):
    """A ReRAM device/array model was configured or driven incorrectly."""


class CalibrationError(ReproError):
    """The architecture model constants are inconsistent."""


class RegistryError(ReproError):
    """The design registry was used inconsistently."""


class CacheError(ReproError):
    """A sweep result store was driven with malformed keys or state."""


class DuplicateDesignError(RegistryError, ValueError):
    """A design name or alias is already registered."""


class UnknownDesignError(RegistryError, KeyError):
    """A design name does not resolve to any registered design.

    Subclasses :class:`KeyError` so pre-registry callers that caught the
    old hard-coded dispatch error keep working.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


class SchemaError(ReproError, ValueError):
    """An API request/response payload failed strict schema validation."""


class ReliabilityError(ReproError):
    """Base class for the fault-injection / retry plane's own errors."""


class InjectedFaultError(ReliabilityError, OSError):
    """A deterministic failpoint fired in ``io_error`` mode.

    Subclasses :class:`OSError` so every retry/degrade path treats an
    injected fault exactly like the real transient it stands in for.
    """


class WorkerCrashError(ReliabilityError):
    """A pool worker died (or a ``crash`` failpoint fired in-process)."""


class EvaluationTimeoutError(ReliabilityError, TimeoutError):
    """A runner exceeded its per-batch ``timeout=`` budget.

    Subclasses :class:`TimeoutError` for callers that catch the builtin;
    deliberately *not* retryable — the budget is final.
    """


class ServiceClosedError(ReliabilityError):
    """A request was submitted to a :class:`RedService` after ``close()``."""


class ServingError(ReproError):
    """Base class for the sharded serving plane's own failures."""


class ShardUnavailableError(ServingError):
    """A serving shard is dead, restarting, or circuit-broken.

    Transient by taxonomy: the shard supervisor respawns crashed
    workers (respawn-budget, frozen backoff) and the front door
    reroutes the shard's key range to the degraded in-process fallback
    while its circuit is open — a retried request can succeed.
    """


class OverloadedError(ServingError):
    """The admission queue shed a request under deterministic overload.

    Transient with a hint: :attr:`retry_after_s` tells the client how
    long to back off before resending; the wire
    :class:`~repro.api.schema.ErrorInfo` envelope carries it.
    """

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(ServingError):
    """The server is draining (SIGTERM): no new work is admitted.

    Permanent for *this* server by taxonomy — retrying against a
    draining process cannot succeed; send the request elsewhere.
    """
