"""Exception hierarchy for the RED reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one type at the API boundary.  Specific subclasses separate user
input problems (shapes, parameters) from internal modelling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """A tensor or layer shape is inconsistent or unsupported."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is out of its valid range."""


class MappingError(ReproError):
    """A crossbar mapping is malformed (wrong geometry, bad fold, ...)."""


class ScheduleError(ReproError):
    """A dataflow schedule is inconsistent with its layer specification."""


class DeviceError(ReproError):
    """A ReRAM device/array model was configured or driven incorrectly."""


class CalibrationError(ReproError):
    """The architecture model constants are inconsistent."""


class RegistryError(ReproError):
    """The design registry was used inconsistently."""


class CacheError(ReproError):
    """A sweep result store was driven with malformed keys or state."""


class DuplicateDesignError(RegistryError, ValueError):
    """A design name or alias is already registered."""


class UnknownDesignError(RegistryError, KeyError):
    """A design name does not resolve to any registered design.

    Subclasses :class:`KeyError` so pre-registry callers that caught the
    old hard-coded dispatch error keep working.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


class SchemaError(ReproError, ValueError):
    """An API request/response payload failed strict schema validation."""
