"""Exception hierarchy for the RED reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one type at the API boundary.  Specific subclasses separate user
input problems (shapes, parameters) from internal modelling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """A tensor or layer shape is inconsistent or unsupported."""


class ParameterError(ReproError, ValueError):
    """A configuration parameter is out of its valid range."""


class MappingError(ReproError):
    """A crossbar mapping is malformed (wrong geometry, bad fold, ...)."""


class ScheduleError(ReproError):
    """A dataflow schedule is inconsistent with its layer specification."""


class DeviceError(ReproError):
    """A ReRAM device/array model was configured or driven incorrectly."""


class CalibrationError(ReproError):
    """The architecture model constants are inconsistent."""
