"""Uniform quantization used by the bit-accurate crossbar pipeline.

The ReRAM simulators (:mod:`repro.reram`) operate on integers: weights are
quantized symmetrically to ``bits`` signed levels (then bit-sliced across
cells) and activations to unsigned levels (then bit-serialized onto the
wordlines).  These helpers provide the quantize/dequantize algebra and its
exactness guarantees, property-tested in ``tests/nn``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters: ``real = scale * (q - zero_point)``.

    Attributes:
        scale: positive real step size.
        zero_point: integer offset.
        bits: total bit width.
        signed: whether the integer domain is two's-complement style
            (``[-2^(b-1), 2^(b-1) - 1]``) or unsigned (``[0, 2^b - 1]``).
    """

    scale: float
    zero_point: int
    bits: int
    signed: bool

    def __post_init__(self) -> None:
        check_positive_int(self.bits, "bits")
        if self.scale <= 0.0:
            raise ParameterError(f"scale must be positive, got {self.scale}")

    @property
    def qmin(self) -> int:
        """Smallest representable integer."""
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        """Largest representable integer."""
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1


def symmetric_quant_params(x: np.ndarray, bits: int, signed: bool = True) -> QuantParams:
    """Pick a symmetric (zero_point = 0) scale covering ``max |x|``.

    A zero tensor gets scale 1.0 (any scale represents it exactly).
    """
    check_positive_int(bits, "bits")
    peak = float(np.max(np.abs(x))) if x.size else 0.0
    qmax = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    scale = peak / qmax if peak > 0.0 else 1.0
    if scale == 0.0:
        # A subnormal peak can underflow the division to exactly zero;
        # the smallest positive float still bounds the round-trip error
        # at one step.
        scale = float(np.finfo(np.float64).smallest_subnormal)
    return QuantParams(scale=scale, zero_point=0, bits=bits, signed=signed)


def quantize_tensor(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize to the integer grid with round-half-even and saturation."""
    q = np.rint(x / params.scale) + params.zero_point
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize_tensor(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integers back to real values."""
    return (q.astype(np.float64) - params.zero_point) * params.scale


def quantization_error(x: np.ndarray, params: QuantParams) -> float:
    """RMS error of the quantize/dequantize round trip."""
    round_trip = dequantize_tensor(quantize_tensor(x, params), params)
    if x.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((round_trip - x) ** 2)))
