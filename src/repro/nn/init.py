"""Weight initializers for the synthetic workload networks.

Real trained checkpoints are unavailable offline; these initializers give
the networks realistic weight *statistics* (DCGAN's N(0, 0.02), FCN's
bilinear-upsampling deconvolution kernels), which is all the accelerator
evaluation observes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.modules import Module


def normal_init(module: Module, std: float = 0.02, rng: np.random.Generator | None = None) -> Module:
    """Re-draw every weight parameter from N(0, std); zero the biases."""
    rng = rng or np.random.default_rng(0)
    for name, param in module.named_parameters():
        leaf = name.rsplit(".", 1)[-1]
        if leaf == "weight":
            param[...] = rng.normal(0.0, std, size=param.shape)
        elif leaf == "beta" or leaf == "bias":
            param[...] = 0.0
    return module


def dcgan_init(module: Module, rng: np.random.Generator | None = None) -> Module:
    """The DCGAN paper's initialization: weights ~ N(0, 0.02)."""
    return normal_init(module, std=0.02, rng=rng)


def kaiming_init(module: Module, rng: np.random.Generator | None = None) -> Module:
    """He-normal initialization for conv-style weights."""
    rng = rng or np.random.default_rng(0)
    for name, param in module.named_parameters():
        if name.rsplit(".", 1)[-1] == "weight" and param.ndim == 4:
            fan_in = param.shape[0] * param.shape[1] * param.shape[2]
            param[...] = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=param.shape)
    return module


def xavier_init(module: Module, rng: np.random.Generator | None = None) -> Module:
    """Glorot-uniform initialization for conv-style weights."""
    rng = rng or np.random.default_rng(0)
    for name, param in module.named_parameters():
        if name.rsplit(".", 1)[-1] == "weight" and param.ndim == 4:
            fan_in = param.shape[0] * param.shape[1] * param.shape[2]
            fan_out = param.shape[0] * param.shape[1] * param.shape[3]
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            param[...] = rng.uniform(-bound, bound, size=param.shape)
    return module


def bilinear_upsampling_kernel(kernel_size: int, in_channels: int, out_channels: int) -> np.ndarray:
    """Bilinear-interpolation deconvolution kernel, FCN-style.

    The FCN paper initializes its up-sampling (deconvolution) layers to
    perform bilinear interpolation; channel ``c`` maps to output channel
    ``c`` only.  Returns ``(K, K, C_in, C_out)``.
    """
    if in_channels != out_channels:
        raise ShapeError(
            "bilinear upsampling requires in_channels == out_channels, got "
            f"{in_channels} != {out_channels}"
        )
    factor = (kernel_size + 1) // 2
    center = factor - 1.0 if kernel_size % 2 == 1 else factor - 0.5
    og = np.arange(kernel_size, dtype=np.float64)
    filt_1d = 1.0 - np.abs(og - center) / factor
    filt = np.outer(filt_1d, filt_1d)
    weight = np.zeros((kernel_size, kernel_size, in_channels, out_channels))
    for c in range(in_channels):
        weight[:, :, c, c] = filt
    return weight
