"""Functional (stateless) NN operations on ``(N, C, H, W)`` tensors.

Spatial kernels use the paper layout ``(KH, KW, C_in, C_out)``.  The
convolution primitives delegate to :mod:`repro.deconv.reference`, which is
the same code path the accelerator simulators validate against — so a
network forward pass and a crossbar-mapped forward pass share one numeric
ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.deconv import reference as _ref
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError


def _check_nchw(x: np.ndarray, name: str = "input") -> None:
    if x.ndim != 4:
        raise ShapeError(f"{name} must be (N, C, H, W), got ndim={x.ndim}")


def conv2d(
    x: np.ndarray, w: np.ndarray, bias: np.ndarray | None = None,
    stride: int = 1, padding: int = 0,
) -> np.ndarray:
    """Batched strided convolution (cross-correlation)."""
    _check_nchw(x)
    outs = []
    for sample in x:
        hwc = np.transpose(sample, (1, 2, 0))
        out = _ref.conv2d(hwc, w, stride=stride, padding=padding)
        outs.append(np.transpose(out, (2, 0, 1)))
    result = np.stack(outs)
    if bias is not None:
        result = result + bias.reshape(1, -1, 1, 1)
    return result


def conv_transpose2d(
    x: np.ndarray, w: np.ndarray, bias: np.ndarray | None = None,
    stride: int = 1, padding: int = 0, output_padding: int = 0,
) -> np.ndarray:
    """Batched transposed convolution, the up-sampling op RED accelerates."""
    _check_nchw(x)
    n, c, ih, iw = x.shape
    kh, kw, wc, m = w.shape
    if wc != c:
        raise ShapeError(f"channel mismatch: input C={c}, kernel C_in={wc}")
    spec = DeconvSpec(
        input_height=ih, input_width=iw, in_channels=c,
        kernel_height=kh, kernel_width=kw, out_channels=m,
        stride=stride, padding=padding, output_padding=output_padding,
    )
    outs = []
    for sample in x:
        hwc = np.transpose(sample, (1, 2, 0))
        out = _ref.conv_transpose2d(hwc, w, spec)
        outs.append(np.transpose(out, (2, 0, 1)))
    result = np.stack(outs)
    if bias is not None:
        result = result + bias.reshape(1, -1, 1, 1)
    return result


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    """Leaky ReLU (DCGAN discriminator default slope 0.2)."""
    return np.where(x >= 0.0, x, negative_slope * x)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (GAN generator output activation)."""
    return np.tanh(x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-x))


def batch_norm(
    x: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalization over the channel axis."""
    _check_nchw(x)
    shape = (1, -1, 1, 1)
    scale = gamma / np.sqrt(running_var + eps)
    return x * scale.reshape(shape) + (beta - running_mean * scale).reshape(shape)


def max_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling with square window (FCN encoder)."""
    _check_nchw(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    return windows[:, :, ::stride, ::stride, :, :][:, :, :oh, :ow].max(axis=(4, 5))


def avg_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Average pooling with square window."""
    _check_nchw(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    return windows[:, :, ::stride, ::stride, :, :][:, :, :oh, :ow].mean(axis=(4, 5))


def softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically-stable softmax (FCN per-pixel class scores)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def center_crop(x: np.ndarray, target_h: int, target_w: int) -> np.ndarray:
    """Center-crop spatial dims (FCN skip-connection alignment)."""
    _check_nchw(x)
    h, w = x.shape[2], x.shape[3]
    if target_h > h or target_w > w:
        raise ShapeError(f"cannot crop ({h},{w}) to larger ({target_h},{target_w})")
    top = (h - target_h) // 2
    left = (w - target_w) // 2
    return x[:, :, top : top + target_h, left : left + target_w]
