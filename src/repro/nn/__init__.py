"""Minimal NumPy neural-network substrate.

The paper's workloads (DCGAN, Improved GAN, SNGAN generators; FCN-8s
upsampling heads) are normally expressed in PyTorch; this package provides
the needed subset — convolution, transposed convolution, batch-norm,
activations, pooling — as pure NumPy so the whole reproduction runs
offline.  Layer weight layout follows the paper: ``(KH, KW, C_in, C_out)``;
activations are batched ``(N, C, H, W)``.

Modules intentionally implement inference only: the accelerator study
evaluates forward passes of pre-trained-shaped networks, and weights are
seeded synthetically (see DESIGN.md, substitutions).
"""

from repro.nn import functional
from repro.nn.init import (
    bilinear_upsampling_kernel,
    dcgan_init,
    kaiming_init,
    normal_init,
    xavier_init,
)
from repro.nn.modules import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Flatten,
    Identity,
    LeakyReLU,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.quantize import (
    QuantParams,
    dequantize_tensor,
    quantize_tensor,
    symmetric_quant_params,
)

__all__ = [
    "functional",
    "Module",
    "Sequential",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "normal_init",
    "dcgan_init",
    "kaiming_init",
    "xavier_init",
    "bilinear_upsampling_kernel",
    "QuantParams",
    "quantize_tensor",
    "dequantize_tensor",
    "symmetric_quant_params",
]
