"""Module system: composable inference-mode layers.

A :class:`Module` owns named parameters (NumPy arrays) and child modules,
supports ``state_dict`` round-trips, and is callable.  Only the layers the
paper's workloads need are provided; everything runs on ``(N, C, H, W)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ParameterError, ShapeError
from repro.nn import functional as F
from repro.utils.validation import check_non_negative_int, check_positive_int


class Module:
    """Base class: parameter/children registry plus ``forward`` dispatch."""

    def __init__(self) -> None:
        self._parameters: dict[str, np.ndarray] = {}
        self._children: dict[str, "Module"] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, value: np.ndarray) -> None:
        """Attach a named parameter array to this module."""
        if not isinstance(value, np.ndarray):
            raise ParameterError(f"parameter {name!r} must be an ndarray")
        self._parameters[name] = value

    def add_module(self, name: str, module: "Module") -> None:
        """Attach a named child module."""
        if not isinstance(module, Module):
            raise ParameterError(f"child {name!r} must be a Module")
        self._children[name] = module

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Module) and name not in ("_parameters", "_children"):
            object.__setattr__(self, name, value)
            if hasattr(self, "_children"):
                self._children[name] = value
            return
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[np.ndarray]:
        """Yield all parameter arrays, depth-first."""
        yield from self._parameters.values()
        for child in self._children.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, array)`` pairs, depth-first."""
        for name, value in self._parameters.items():
            yield (f"{prefix}{name}", value)
        for child_name, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed by dotted name."""
        return {name: value.copy() for name, value in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`state_dict` (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ParameterError(
                f"state_dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for name, value in state.items():
            target = own[name]
            if target.shape != value.shape:
                raise ShapeError(
                    f"parameter {name!r}: shape {value.shape} != {target.shape}"
                )
            target[...] = value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self.add_module(str(index), layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class Conv2d(Module):
    """Strided convolution layer; weight layout ``(KH, KW, C_in, C_out)``."""

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int,
        stride: int = 1, padding: int = 0, bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        check_positive_int(in_channels, "in_channels")
        check_positive_int(out_channels, "out_channels")
        check_positive_int(kernel_size, "kernel_size")
        check_positive_int(stride, "stride")
        check_non_negative_int(padding, "padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in),
            size=(kernel_size, kernel_size, in_channels, out_channels),
        )
        self.register_parameter("weight", weight)
        if bias:
            self.register_parameter("bias", np.zeros(out_channels))

    @property
    def weight(self) -> np.ndarray:
        return self._parameters["weight"]

    @property
    def bias(self) -> np.ndarray | None:
        return self._parameters.get("bias")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class ConvTranspose2d(Module):
    """Transposed-convolution layer — the op RED accelerates.

    Weight layout ``(KH, KW, C_in, C_out)`` matches
    :class:`repro.deconv.shapes.DeconvSpec`, so a layer instance can be
    mapped onto any of the accelerator designs without reshaping.
    """

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int,
        stride: int = 1, padding: int = 0, output_padding: int = 0,
        bias: bool = True, rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        check_positive_int(in_channels, "in_channels")
        check_positive_int(out_channels, "out_channels")
        check_positive_int(kernel_size, "kernel_size")
        check_positive_int(stride, "stride")
        check_non_negative_int(padding, "padding")
        check_non_negative_int(output_padding, "output_padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.output_padding = output_padding
        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in),
            size=(kernel_size, kernel_size, in_channels, out_channels),
        )
        self.register_parameter("weight", weight)
        if bias:
            self.register_parameter("bias", np.zeros(out_channels))

    @property
    def weight(self) -> np.ndarray:
        return self._parameters["weight"]

    @property
    def bias(self) -> np.ndarray | None:
        return self._parameters.get("bias")

    def deconv_spec(self, input_height: int, input_width: int):
        """Build the :class:`DeconvSpec` for a given input size."""
        from repro.deconv.shapes import DeconvSpec

        return DeconvSpec(
            input_height=input_height, input_width=input_width,
            in_channels=self.in_channels,
            kernel_height=self.kernel_size, kernel_width=self.kernel_size,
            out_channels=self.out_channels,
            stride=self.stride, padding=self.padding,
            output_padding=self.output_padding,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.conv_transpose2d(
            x, self.weight, self.bias, self.stride, self.padding, self.output_padding
        )


class BatchNorm2d(Module):
    """Inference-mode batch normalization."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        check_positive_int(num_features, "num_features")
        self.num_features = num_features
        self.eps = eps
        self.register_parameter("gamma", np.ones(num_features))
        self.register_parameter("beta", np.zeros(num_features))
        self.register_parameter("running_mean", np.zeros(num_features))
        self.register_parameter("running_var", np.ones(num_features))

    def forward(self, x: np.ndarray) -> np.ndarray:
        p = self._parameters
        return F.batch_norm(
            x, p["running_mean"], p["running_var"], p["gamma"], p["beta"], self.eps
        )


class ReLU(Module):
    """Elementwise ReLU."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


class LeakyReLU(Module):
    """Elementwise leaky ReLU."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    """Elementwise tanh."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.tanh(x)


class Sigmoid(Module):
    """Elementwise sigmoid."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.sigmoid(x)


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)
