"""Command-line interface: regenerate the paper's artefacts from a shell.

Usage::

    python -m repro report            # everything (Tables I-II, Figs. 4-9)
    python -m repro table1            # benchmark table
    python -m repro table2            # component taxonomy
    python -m repro fig4              # redundancy curves
    python -m repro fig7              # latency comparison
    python -m repro fig8              # energy comparison
    python -m repro fig9              # area comparison
    python -m repro tradeoff          # Sec. III-C fold sweep (FCN_Deconv2)
    python -m repro network SNGAN     # whole-generator evaluation
    python -m repro sweep --jobs 4 --cache ~/.cache/red-sweeps
                                      # stride sweep on the parallel runner
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.harness import run_grid
from repro.eval.report import (
    format_fig4,
    format_fig7,
    format_fig8,
    format_fig9,
    full_report,
)
from repro.eval.tables import render_table1, render_table2


def _cmd_tradeoff() -> str:
    from repro.core.tradeoff import explore_fold_tradeoff
    from repro.utils.formatting import (
        format_area,
        format_joules,
        format_seconds,
        render_ascii_table,
    )
    from repro.workloads.specs import get_layer

    spec = get_layer("FCN_Deconv2").spec
    rows = [
        (
            p.fold,
            p.num_physical_scs,
            p.cycles,
            format_seconds(p.latency),
            format_joules(p.energy),
            format_area(p.area),
        )
        for p in explore_fold_tradeoff(spec, folds=(1, 2, 4, 8, 16))
    ]
    return render_ascii_table(
        ("fold", "physical SCs", "cycles", "latency", "energy", "area"),
        rows,
        title="Sec. III-C fold trade-off on FCN_Deconv2",
    )


def _cmd_sweep(args) -> str:
    from repro.errors import ParameterError
    from repro.eval.sweeps import quadratic_fit_exponent, stride_speedup_sweep
    from repro.utils.formatting import render_ascii_table

    try:
        strides = tuple(int(s) for s in args.strides.split(","))
    except ValueError:
        raise ParameterError(
            f"--strides must be comma-separated integers, got {args.strides!r}"
        ) from None
    points = stride_speedup_sweep(
        strides=strides, jobs=args.jobs, cache=args.cache
    )
    rows = [
        (p.stride, p.modes, p.cycles_zp, p.cycles_red, f"{p.speedup:.2f}x")
        for p in points
    ]
    table = render_ascii_table(
        ("stride", "modes (s^2)", "ZP cycles", "RED cycles", "speedup"),
        rows,
        title=f"Sec. III-C stride sweep (jobs={args.jobs})",
    )
    if len([p for p in points if p.stride > 1]) >= 2:
        exponent = quadratic_fit_exponent(points)
        table += f"\nfitted exponent: speedup ~ stride^{exponent:.2f}"
    return table


def _cmd_network(name: str, jobs: int = 1, cache: str | None = None) -> str:
    import numpy as np

    from repro.system import evaluate_network, pipeline_network, provision_chip
    from repro.utils.formatting import (
        format_joules,
        format_seconds,
        render_ascii_table,
    )
    from repro.workloads.networks import build_network

    network = build_network(name, rng=np.random.default_rng(0))
    evaluation = evaluate_network(network, 1, 1, jobs=jobs, cache=cache)
    rows = []
    for design in ("zero-padding", "padding-free", "RED"):
        report = pipeline_network(evaluation, design, batch=16)
        chip = provision_chip(evaluation, design)
        rows.append(
            (
                design,
                format_seconds(evaluation.total_latency(design)),
                f"{evaluation.speedup(design):.2f}x",
                f"{evaluation.energy_saving(design) * 100:.1f}%",
                format_seconds(report.bottleneck_latency),
                f"{chip.total_area * 1e6:.4g} mm^2",
            )
        )
    return render_ascii_table(
        ("design", "latency", "speedup", "energy saving", "pipeline II", "chip area"),
        rows,
        title=f"{name}: whole-network deconvolution evaluation",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RED (DATE 2019) reproduction: regenerate paper artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "report", "table1", "table2", "fig4", "fig7", "fig8", "fig9",
        "tradeoff", "compare", "mechanism",
    ):
        sub.add_parser(name)
    network = sub.add_parser("network")
    network.add_argument(
        "name",
        nargs="?",
        default="SNGAN",
        help="workload network (DCGAN, 'Improved GAN', SNGAN, 'voc-fcn8s 8x')",
    )
    sweep = sub.add_parser(
        "sweep", help="stride-speedup sweep on the parallel runner"
    )
    sweep.add_argument(
        "--strides", default="1,2,4,8", help="comma-separated strides"
    )
    for cmd in (network, sweep):
        cmd.add_argument(
            "--jobs", type=int, default=1, help="process-pool workers (1 = inline)"
        )
        cmd.add_argument(
            "--cache", default=None, help="on-disk sweep result cache directory"
        )
    args = parser.parse_args(argv)

    if args.command == "report":
        print(full_report())
    elif args.command == "table1":
        print(render_table1())
    elif args.command == "table2":
        print(render_table2())
    elif args.command == "fig4":
        print(format_fig4())
    elif args.command in ("fig7", "fig8", "fig9"):
        grid = run_grid()
        formatter = {"fig7": format_fig7, "fig8": format_fig8, "fig9": format_fig9}
        print(formatter[args.command](grid))
    elif args.command == "tradeoff":
        print(_cmd_tradeoff())
    elif args.command == "compare":
        from repro.eval.comparison import render_comparison

        print(render_comparison())
    elif args.command == "mechanism":
        from repro.core.visualize import (
            render_cycle_table,
            render_modes,
            render_padded_map,
        )
        from repro.deconv.shapes import DeconvSpec

        example = DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)
        print("Fig. 6 computation modes (3x3 kernel, stride 2):\n")
        print(render_modes(example))
        print()
        print(render_padded_map(DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)))
        print()
        print(render_cycle_table(example, num_cycles=2))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "network":
        print(_cmd_network(args.name, jobs=args.jobs, cache=args.cache))
    return 0


if __name__ == "__main__":
    sys.exit(main())
