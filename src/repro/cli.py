"""Command-line interface: a thin adapter over :class:`RedService`.

Each subcommand parses its arguments into a typed request from
:mod:`repro.api.schema`, calls the service, and renders the result —
as the familiar ASCII tables by default, or as a versioned JSON payload
with ``--json`` (every payload carries ``schema_version`` and
round-trips through :func:`repro.api.schema.payload_from_dict`).

Usage::

    python -m repro report            # everything (Tables I-II, Figs. 4-9)
    python -m repro table1            # benchmark table
    python -m repro table2            # component taxonomy
    python -m repro fig4              # redundancy curves
    python -m repro fig7              # latency comparison
    python -m repro fig8              # energy comparison
    python -m repro fig9              # area comparison
    python -m repro tradeoff          # Sec. III-C fold sweep (FCN_Deconv2)
    python -m repro network SNGAN     # whole-generator evaluation
    python -m repro sweep --jobs 4 --cache ~/.cache/red-sweeps
                                      # stride sweep on the parallel runner
    python -m repro serve --shards 2  # sharded serving plane (SIGTERM drains)
    python -m repro ping              # health/readiness probe (exit 0/1/2)
    python -m repro report --json     # any subcommand, machine-readable
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api.registry import available_designs
from repro.api.schema import (
    CommandPayload,
    ErrorInfo,
    EvaluationResult,
    NetworkRequest,
    SweepRequest,
)
from repro.api.service import RedService
from repro.errors import ReproError


def _grid_results(grid) -> tuple[EvaluationResult, ...]:
    """The grid as schema results, one per layer."""
    designs = available_designs()
    return tuple(
        EvaluationResult(
            layer=layer.name,
            designs=designs,
            metrics=tuple(grid.get(layer.name, design) for design in designs),
        )
        for layer in grid.layers
    )


def _cmd_table1() -> tuple[str, CommandPayload]:
    from repro.eval.tables import render_table1
    from repro.workloads.specs import TABLE_I_LAYERS

    text = render_table1()
    data = {"layers": [list(layer.table_row()) for layer in TABLE_I_LAYERS]}
    return text, CommandPayload(command="table1", data=data, text=text)


def _cmd_table2() -> tuple[str, CommandPayload]:
    from repro.arch.breakdown import TABLE_II_COMPONENTS
    from repro.eval.tables import render_table2

    text = render_table2()
    data = {"components": [list(row) for row in TABLE_II_COMPONENTS]}
    return text, CommandPayload(command="table2", data=data, text=text)


def _cmd_fig4() -> tuple[str, CommandPayload]:
    from repro.eval.figures import fig4_redundancy_curves
    from repro.eval.report import format_fig4

    text = format_fig4()
    data = {
        "curves": {
            name: [[stride, value] for stride, value in points]
            for name, points in fig4_redundancy_curves().items()
        }
    }
    return text, CommandPayload(command="fig4", data=data, text=text)


def _cmd_grid_figure(command: str, service: RedService) -> tuple[str, CommandPayload]:
    from repro.eval.report import format_fig7, format_fig8, format_fig9, full_report

    formatter = {
        "fig7": format_fig7,
        "fig8": format_fig8,
        "fig9": format_fig9,
        "report": full_report,
    }[command]
    grid = service.grid()
    text = formatter(grid)
    return text, CommandPayload(
        command=command, results=_grid_results(grid), text=text
    )


def _cmd_tradeoff() -> tuple[str, CommandPayload]:
    from repro.core.tradeoff import explore_fold_tradeoff
    from repro.utils.formatting import (
        format_area,
        format_joules,
        format_seconds,
        render_ascii_table,
    )
    from repro.workloads.specs import get_layer

    spec = get_layer("FCN_Deconv2").spec
    points = explore_fold_tradeoff(spec, folds=(1, 2, 4, 8, 16))
    rows = [
        (
            p.fold,
            p.num_physical_scs,
            p.cycles,
            format_seconds(p.latency),
            format_joules(p.energy),
            format_area(p.area),
        )
        for p in points
    ]
    text = render_ascii_table(
        ("fold", "physical SCs", "cycles", "latency", "energy", "area"),
        rows,
        title="Sec. III-C fold trade-off on FCN_Deconv2",
    )
    data = {
        "layer": "FCN_Deconv2",
        "points": [
            {
                "fold": p.fold,
                "physical_scs": p.num_physical_scs,
                "cycles": p.cycles,
                "latency_s": p.latency,
                "energy_j": p.energy,
                "area_m2": p.area,
            }
            for p in points
        ],
    }
    return text, CommandPayload(command="tradeoff", data=data, text=text)


def _cmd_compare() -> tuple[str, CommandPayload]:
    from repro.eval.comparison import render_comparison

    text = render_comparison()
    return text, CommandPayload(command="compare", text=text)


def _cmd_mechanism() -> tuple[str, CommandPayload]:
    from repro.core.visualize import (
        render_cycle_table,
        render_modes,
        render_padded_map,
    )
    from repro.deconv.shapes import DeconvSpec

    example = DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)
    text = "\n".join(
        (
            "Fig. 6 computation modes (3x3 kernel, stride 2):\n",
            render_modes(example),
            "",
            render_padded_map(DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)),
            "",
            render_cycle_table(example, num_cycles=2),
        )
    )
    return text, CommandPayload(command="mechanism", text=text)


def _cmd_sweep(args, service: RedService) -> tuple[str, object]:
    from repro.errors import ParameterError
    from repro.utils.formatting import render_ascii_table

    try:
        strides = tuple(int(s) for s in args.strides.split(","))
    except ValueError:
        raise ParameterError(
            f"--strides must be comma-separated integers, got {args.strides!r}"
        ) from None
    result = service.sweep(SweepRequest(strides=strides))
    rows = [
        (p.stride, p.modes, p.cycles_zp, p.cycles_red, f"{p.speedup:.2f}x")
        for p in result.points
    ]
    text = render_ascii_table(
        ("stride", "modes (s^2)", "ZP cycles", "RED cycles", "speedup"),
        rows,
        title=f"Sec. III-C stride sweep (jobs={args.jobs})",
    )
    if result.fitted_exponent is not None:
        text += f"\nfitted exponent: speedup ~ stride^{result.fitted_exponent:.2f}"
    return text, result


def _cmd_serve(args) -> int:
    """Run the sharded serving front door until SIGTERM/SIGINT drains it."""
    import threading

    from repro.serving.server import ServingServer

    server = ServingServer(
        host=args.host,
        port=args.port,
        num_shards=args.shards,
        cache_dir=args.cache,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
    )

    def _announce() -> None:
        if server.ready.wait(30.0):
            print(
                f"repro serve: listening on {server.host}:{server.port} "
                f"({args.shards} shards); SIGTERM drains gracefully",
                file=sys.stderr,
            )

    threading.Thread(target=_announce, daemon=True).start()
    return server.run()


def _cmd_ping(args) -> tuple[str, CommandPayload, int]:
    """Probe ``/healthz`` + ``/readyz``; exit 0 healthy, 1 not ready.

    Unreachable endpoints raise through the standard CLI error boundary
    (exit 2, ``--json`` gets the :class:`ErrorInfo` envelope).
    """
    from repro.serving.client import ServingClient

    with ServingClient(args.host, args.port, timeout=args.timeout) as client:
        health_status, health = client.healthz()
        ready_status, ready = client.readyz()
    ok = health_status == 200 and ready_status == 200
    text = (
        f"{args.host}:{args.port} healthz={health_status} "
        f"readyz={ready_status} status={health.get('status', '?')} "
        f"shards={health.get('shards', {})}"
    )
    payload = CommandPayload(
        command="ping",
        data={
            "host": args.host,
            "port": args.port,
            "healthz_status": health_status,
            "readyz_status": ready_status,
            "healthz": health,
            "readyz": ready,
        },
        text=text,
    )
    return text, payload, 0 if ok else 1


def _cmd_network(args, service: RedService) -> tuple[str, object]:
    from repro.utils.formatting import format_seconds, render_ascii_table

    result = service.evaluate_network(NetworkRequest(network=args.name))
    rows = [
        (
            summary.design,
            format_seconds(summary.total_latency_s),
            f"{summary.speedup:.2f}x",
            f"{summary.energy_saving * 100:.1f}%",
            format_seconds(summary.bottleneck_latency_s),
            f"{summary.chip_area_m2 * 1e6:.4g} mm^2",
        )
        for summary in result.summaries
    ]
    text = render_ascii_table(
        ("design", "latency", "speedup", "energy saving", "pipeline II", "chip area"),
        rows,
        title=f"{args.name}: whole-network deconvolution evaluation",
    )
    return text, result


def _make_service(args) -> RedService:
    return RedService(
        num_workers=getattr(args, "jobs", 1), cache=getattr(args, "cache", None)
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RED (DATE 2019) reproduction: regenerate paper artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    subparsers = {}
    for name in (
        "report", "table1", "table2", "fig4", "fig7", "fig8", "fig9",
        "tradeoff", "compare", "mechanism",
    ):
        subparsers[name] = sub.add_parser(name)
    network = sub.add_parser("network")
    network.add_argument(
        "name",
        nargs="?",
        default="SNGAN",
        help="workload network (DCGAN, 'Improved GAN', SNGAN, 'voc-fcn8s 8x')",
    )
    sweep = sub.add_parser(
        "sweep", help="stride-speedup sweep on the parallel runner"
    )
    sweep.add_argument(
        "--strides", default="1,2,4,8", help="comma-separated strides"
    )
    serve = sub.add_parser(
        "serve", help="run the resilient sharded serving plane"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 = ephemeral")
    serve.add_argument(
        "--shards", type=int, default=2, help="supervised shard processes"
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="concurrent requests before queueing",
    )
    serve.add_argument(
        "--max-queue", type=int, default=32,
        help="queued requests before deterministic shedding (429)",
    )
    serve.add_argument(
        "--cache", default=None,
        help="per-shard packed store root (shard-<i> subdirectories)",
    )
    ping = sub.add_parser(
        "ping", help="probe a serving plane: exit 0 ready, 1 degraded, 2 down"
    )
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, default=8765)
    ping.add_argument(
        "--timeout", type=float, default=5.0, help="socket timeout, seconds"
    )
    subparsers["network"] = network
    subparsers["sweep"] = sweep
    subparsers["serve"] = serve
    subparsers["ping"] = ping
    # Every subcommand gets machine-readable output; the evaluation-grid
    # commands additionally accept parallel/cache tuning.
    for name, cmd in subparsers.items():
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit a schema_version-tagged JSON payload instead of a table",
        )
        if name in ("report", "fig7", "fig8", "fig9", "network", "sweep"):
            cmd.add_argument(
                "--jobs", type=int, default=1,
                help="process-pool workers (1 = inline)",
            )
            cmd.add_argument(
                "--cache", default=None,
                help=(
                    "sweep result store directory (packed segment/index "
                    "layout; legacy per-pickle directories are migrated "
                    "in place)"
                ),
            )
    args = parser.parse_args(argv)

    service = None
    code = 0
    try:
        if args.command == "serve":
            # The serving plane owns its own RedService (wired to the
            # sharded runner); no eager service here.
            return _cmd_serve(args)
        if args.command == "ping":
            text, payload, code = _cmd_ping(args)
        elif args.command == "table1":
            text, payload = _cmd_table1()
        elif args.command == "table2":
            text, payload = _cmd_table2()
        elif args.command == "fig4":
            text, payload = _cmd_fig4()
        elif args.command in ("fig7", "fig8", "fig9", "report"):
            service = _make_service(args)
            text, payload = _cmd_grid_figure(args.command, service)
        elif args.command == "tradeoff":
            text, payload = _cmd_tradeoff()
        elif args.command == "compare":
            text, payload = _cmd_compare()
        elif args.command == "mechanism":
            text, payload = _cmd_mechanism()
        elif args.command == "sweep":
            service = _make_service(args)
            text, payload = _cmd_sweep(args, service)
        else:  # network
            service = _make_service(args)
            text, payload = _cmd_network(args, service)
    except ReproError as exc:
        # Error boundary: library failures are user-facing outcomes,
        # not tracebacks.  Humans get one line on stderr; --json gets
        # the same versioned ErrorInfo envelope the wire schema uses.
        if args.json:
            print(
                json.dumps(
                    ErrorInfo.from_exception(exc, source=args.command).to_dict(),
                    indent=2,
                )
            )
        else:
            print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if service is not None:
            service.close()

    if args.json:
        print(json.dumps(payload.to_dict(), indent=2))
    else:
        print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
