"""Command-line interface: regenerate the paper's artefacts from a shell.

Usage::

    python -m repro report            # everything (Tables I-II, Figs. 4-9)
    python -m repro table1            # benchmark table
    python -m repro table2            # component taxonomy
    python -m repro fig4              # redundancy curves
    python -m repro fig7              # latency comparison
    python -m repro fig8              # energy comparison
    python -m repro fig9              # area comparison
    python -m repro tradeoff          # Sec. III-C fold sweep (FCN_Deconv2)
    python -m repro network SNGAN     # whole-generator evaluation
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.harness import run_grid
from repro.eval.report import (
    format_fig4,
    format_fig7,
    format_fig8,
    format_fig9,
    full_report,
)
from repro.eval.tables import render_table1, render_table2


def _cmd_tradeoff() -> str:
    from repro.core.tradeoff import explore_fold_tradeoff
    from repro.utils.formatting import (
        format_area,
        format_joules,
        format_seconds,
        render_ascii_table,
    )
    from repro.workloads.specs import get_layer

    spec = get_layer("FCN_Deconv2").spec
    rows = [
        (
            p.fold,
            p.num_physical_scs,
            p.cycles,
            format_seconds(p.latency),
            format_joules(p.energy),
            format_area(p.area),
        )
        for p in explore_fold_tradeoff(spec, folds=(1, 2, 4, 8, 16))
    ]
    return render_ascii_table(
        ("fold", "physical SCs", "cycles", "latency", "energy", "area"),
        rows,
        title="Sec. III-C fold trade-off on FCN_Deconv2",
    )


def _cmd_network(name: str) -> str:
    import numpy as np

    from repro.system import evaluate_network, pipeline_network, provision_chip
    from repro.utils.formatting import (
        format_joules,
        format_seconds,
        render_ascii_table,
    )
    from repro.workloads.networks import build_network

    network = build_network(name, rng=np.random.default_rng(0))
    evaluation = evaluate_network(network, 1, 1)
    rows = []
    for design in ("zero-padding", "padding-free", "RED"):
        report = pipeline_network(evaluation, design, batch=16)
        chip = provision_chip(evaluation, design)
        rows.append(
            (
                design,
                format_seconds(evaluation.total_latency(design)),
                f"{evaluation.speedup(design):.2f}x",
                f"{evaluation.energy_saving(design) * 100:.1f}%",
                format_seconds(report.bottleneck_latency),
                f"{chip.total_area * 1e6:.4g} mm^2",
            )
        )
    return render_ascii_table(
        ("design", "latency", "speedup", "energy saving", "pipeline II", "chip area"),
        rows,
        title=f"{name}: whole-network deconvolution evaluation",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RED (DATE 2019) reproduction: regenerate paper artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "report", "table1", "table2", "fig4", "fig7", "fig8", "fig9",
        "tradeoff", "compare", "mechanism",
    ):
        sub.add_parser(name)
    network = sub.add_parser("network")
    network.add_argument(
        "name",
        nargs="?",
        default="SNGAN",
        help="workload network (DCGAN, 'Improved GAN', SNGAN, 'voc-fcn8s 8x')",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        print(full_report())
    elif args.command == "table1":
        print(render_table1())
    elif args.command == "table2":
        print(render_table2())
    elif args.command == "fig4":
        print(format_fig4())
    elif args.command in ("fig7", "fig8", "fig9"):
        grid = run_grid()
        formatter = {"fig7": format_fig7, "fig8": format_fig8, "fig9": format_fig9}
        print(formatter[args.command](grid))
    elif args.command == "tradeoff":
        print(_cmd_tradeoff())
    elif args.command == "compare":
        from repro.eval.comparison import render_comparison

        print(render_comparison())
    elif args.command == "mechanism":
        from repro.core.visualize import (
            render_cycle_table,
            render_modes,
            render_padded_map,
        )
        from repro.deconv.shapes import DeconvSpec

        example = DeconvSpec(4, 4, 2, 3, 3, 2, stride=2, padding=1)
        print("Fig. 6 computation modes (3x3 kernel, stride 2):\n")
        print(render_modes(example))
        print()
        print(render_padded_map(DeconvSpec(4, 4, 1, 4, 4, 1, stride=2, padding=1)))
        print()
        print(render_cycle_table(example, num_cycles=2))
    elif args.command == "network":
        print(_cmd_network(args.name))
    return 0


if __name__ == "__main__":
    sys.exit(main())
