"""Computation-mode decomposition (paper Fig. 6).

Sliding the kernel over the zero-inserted map, the set of kernel taps that
line up with non-zero pixels depends only on the output pixel's *phase*
``(oy mod s, ox mod s)``.  There are therefore exactly ``stride^2``
computation modes; tap ``(kh, kw)`` belongs to the mode whose phase is

    ``phi_y = (kh - p) mod s``,  ``phi_x = (kw - p) mod s``

because tap ``kh`` contributes to output row ``oy`` iff
``(oy + p - kh) mod s == 0``.  The modes partition the kernel exclusively
and exhaustively — the property that lets RED map each tap to its own
sub-crossbar and run all modes of an output block concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError


@dataclass(frozen=True)
class ComputationMode:
    """One of the ``stride^2`` modes: an output phase plus its kernel taps.

    Attributes:
        phase_y / phase_x: output-pixel residues ``oy mod s`` / ``ox mod s``.
        taps: tuple of ``(kh, kw)`` kernel positions active in this mode.
    """

    phase_y: int
    phase_x: int
    taps: tuple[tuple[int, int], ...]

    @property
    def num_taps(self) -> int:
        """Number of kernel taps (sub-crossbars summed) in this mode."""
        return len(self.taps)


def mode_of_tap(kh: int, kw: int, spec: DeconvSpec) -> tuple[int, int]:
    """Return the output phase ``(phi_y, phi_x)`` that tap ``(kh, kw)`` serves."""
    if not (0 <= kh < spec.kernel_height and 0 <= kw < spec.kernel_width):
        raise ShapeError(
            f"tap ({kh}, {kw}) outside kernel "
            f"{spec.kernel_height}x{spec.kernel_width}"
        )
    s, p = spec.stride, spec.padding
    return ((kh - p) % s, (kw - p) % s)


def decompose_modes(spec: DeconvSpec) -> list[ComputationMode]:
    """Partition the kernel taps into the ``stride^2`` computation modes.

    Modes are ordered row-major by phase ``(phi_y, phi_x)``.  Phases with no
    taps (possible when ``K < s``) yield empty modes — those output pixels
    are identically zero.
    """
    s = spec.stride
    buckets: dict[tuple[int, int], list[tuple[int, int]]] = {
        (py, px): [] for py in range(s) for px in range(s)
    }
    for kh in range(spec.kernel_height):
        for kw in range(spec.kernel_width):
            buckets[mode_of_tap(kh, kw, spec)].append((kh, kw))
    return [
        ComputationMode(phase_y=py, phase_x=px, taps=tuple(buckets[(py, px)]))
        for py in range(s)
        for px in range(s)
    ]


def num_nonempty_modes(spec: DeconvSpec) -> int:
    """Closed-form count of modes owning at least one tap.

    The phases ``(kh - p) mod s`` of ``kh in [0, KH)`` are ``KH``
    consecutive residues, so ``min(KH, s)`` of them are distinct (the
    padding only rotates the set); H and W factorize, giving
    ``min(KH, s) * min(KW, s)`` nonempty modes.  Property-tested against
    :func:`decompose_modes` and used by the vectorized analytic plane,
    which cannot afford the full decomposition per job.
    """
    return min(spec.kernel_height, spec.stride) * min(spec.kernel_width, spec.stride)


def max_taps_per_mode(spec: DeconvSpec) -> int:
    """Largest tap count over all modes: ``ceil(K/s)`` per dimension squared.

    This bounds the depth of the cross-sub-crossbar adder tree RED needs.
    """
    modes = decompose_modes(spec)
    return max((mode.num_taps for mode in modes), default=0)


def check_mode_partition(spec: DeconvSpec) -> None:
    """Raise if the modes do not exactly partition the kernel taps."""
    modes = decompose_modes(spec)
    seen: set[tuple[int, int]] = set()
    total = 0
    for mode in modes:
        for tap in mode.taps:
            if tap in seen:
                raise ShapeError(f"tap {tap} appears in two computation modes")
            seen.add(tap)
        total += mode.num_taps
    if total != spec.num_kernel_taps:
        raise ShapeError(
            f"modes cover {total} taps, kernel has {spec.num_kernel_taps}"
        )
