"""Gold-standard deconvolution and convolution reference implementations.

:func:`conv_transpose2d` is the *scatter* formulation — the literal
definition of transposed convolution as the gradient of convolution:

    ``out[s*ih + kh - p, s*iw + kw - p, m] += x[ih, iw, c] * w[kh, kw, c, m]``

Every other implementation in the library (Algorithm 1, Algorithm 2, the
RED zero-skipping dataflow, and the bit-accurate crossbar pipelines) is
property-tested for exact agreement with this function.
"""

from __future__ import annotations

import numpy as np

from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError


def _check_operands(x: np.ndarray, w: np.ndarray, spec: DeconvSpec) -> None:
    """Validate activation/kernel arrays against ``spec``."""
    if x.ndim != 3:
        raise ShapeError(f"input must be (H, W, C), got ndim={x.ndim}")
    if w.ndim != 4:
        raise ShapeError(f"kernel must be (KH, KW, C, M), got ndim={w.ndim}")
    if tuple(x.shape) != spec.input_shape:
        raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
    if tuple(w.shape) != spec.kernel_shape:
        raise ShapeError(f"kernel shape {w.shape} != spec {spec.kernel_shape}")


def rotate_kernel_180(w: np.ndarray) -> np.ndarray:
    """Rotate a ``(KH, KW, C, M)`` kernel by 180 degrees in its spatial dims.

    This is the "Rotation" step of the paper's padding-free Algorithm 2 and
    also relates Algorithm 1's convolution to the scatter definition.
    """
    if w.ndim != 4:
        raise ShapeError(f"kernel must be (KH, KW, C, M), got ndim={w.ndim}")
    return w[::-1, ::-1, :, :]


def conv_transpose2d(x: np.ndarray, w: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Transposed convolution by direct scatter (the reference semantics).

    Args:
        x: input activations, ``(IH, IW, C)``.
        w: kernel, ``(KH, KW, C, M)``.
        spec: layer specification; shapes must match exactly.

    Returns:
        Output activations, ``(OH, OW, M)``, dtype ``float64``.
    """
    _check_operands(x, w, spec)
    s, p = spec.stride, spec.padding
    oh, ow, m = spec.output_shape
    out = np.zeros((oh, ow, m), dtype=np.float64)
    # Scatter each kernel tap as a strided block write: for tap (kh, kw) the
    # input grid lands on output rows s*ih + kh - p clipped to [0, OH).
    for kh in range(spec.kernel_height):
        ys = np.arange(spec.input_height) * s + kh - p
        y_mask = (ys >= 0) & (ys < oh)
        if not y_mask.any():
            continue
        for kw in range(spec.kernel_width):
            xs = np.arange(spec.input_width) * s + kw - p
            x_mask = (xs >= 0) & (xs < ow)
            if not x_mask.any():
                continue
            contrib = np.tensordot(
                x[y_mask][:, x_mask, :], w[kh, kw], axes=([2], [0])
            )
            out[np.ix_(ys[y_mask], xs[x_mask])] += contrib
    return out


def conv2d_valid(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Stride-1 *valid* cross-correlation of ``(H, W, C)`` with ``(KH, KW, C, M)``.

    This is the convolution primitive Algorithm 1 runs on the zero-inserted
    map.  Implemented with ``stride_tricks`` windows + one einsum, so it is
    fast enough for the FCN-scale maps (568x568) used in the benchmarks.
    """
    if x.ndim != 3 or w.ndim != 4:
        raise ShapeError("conv2d_valid expects (H, W, C) input and (KH, KW, C, M) kernel")
    h, width, c = x.shape
    kh, kw, wc, m = w.shape
    if wc != c:
        raise ShapeError(f"channel mismatch: input C={c}, kernel C={wc}")
    if kh > h or kw > width:
        raise ShapeError(
            f"kernel ({kh}x{kw}) larger than input ({h}x{width}); "
            "valid convolution is empty"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(0, 1))
    # windows: (OH, OW, C, KH, KW); kernel: (KH, KW, C, M)
    return np.einsum("yxcij,ijcm->yxm", windows, w, optimize=True)


def conv2d(
    x: np.ndarray,
    w: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Strided cross-correlation with symmetric zero padding.

    General forward-convolution helper used by the NumPy NN substrate (the
    non-deconv layers of the FCN / GAN discriminators).
    """
    if padding:
        x = np.pad(x, ((padding, padding), (padding, padding), (0, 0)))
    full = conv2d_valid(x, w)
    if stride != 1:
        full = full[::stride, ::stride, :]
    return full


def deconv_output_reference(
    x: np.ndarray, w: np.ndarray, spec: DeconvSpec
) -> np.ndarray:
    """Alias of :func:`conv_transpose2d` kept for API clarity in tests."""
    return conv_transpose2d(x, w, spec)
