"""Deconvolution (transposed convolution) algebra.

This package implements the computation the paper accelerates:

* :mod:`repro.deconv.shapes` — shape algebra for stride / padding /
  output-padding and the zero-inserted ("padded") geometry.
* :mod:`repro.deconv.reference` — gold-standard scatter implementation plus
  dense convolution helpers.
* :mod:`repro.deconv.zero_padding` — the paper's Algorithm 1.
* :mod:`repro.deconv.padding_free` — the paper's Algorithm 2
  (rotate / MAC / overlap-add / crop).
* :mod:`repro.deconv.modes` — the stride^2 computation-mode decomposition of
  Fig. 6 that pixel-wise mapping exploits.
* :mod:`repro.deconv.analysis` — zero-redundancy analytics behind Fig. 4.

Tensor conventions follow the paper: activations are ``(H, W, C)`` and
kernels are ``(KH, KW, C, M)``.
"""

from repro.deconv.analysis import (
    dense_mac_count,
    padded_zero_fraction,
    redundancy_vs_stride,
    redundant_mac_fraction,
    useful_mac_count,
)
from repro.deconv.modes import (
    ComputationMode,
    decompose_modes,
    mode_of_tap,
)
from repro.deconv.padding_free import (
    overlap_add,
    padding_free_deconv,
    pixel_kernel_products,
)
from repro.deconv.reference import (
    conv2d_valid,
    conv_transpose2d,
    rotate_kernel_180,
)
from repro.deconv.shapes import DeconvSpec, PaddedGeometry
from repro.deconv.zero_padding import (
    zero_insert_input,
    zero_padding_deconv,
)

__all__ = [
    "DeconvSpec",
    "PaddedGeometry",
    "conv2d_valid",
    "conv_transpose2d",
    "rotate_kernel_180",
    "zero_insert_input",
    "zero_padding_deconv",
    "padding_free_deconv",
    "pixel_kernel_products",
    "overlap_add",
    "ComputationMode",
    "decompose_modes",
    "mode_of_tap",
    "padded_zero_fraction",
    "redundant_mac_fraction",
    "useful_mac_count",
    "dense_mac_count",
    "redundancy_vs_stride",
]
