"""Shape algebra for deconvolution layers.

A deconvolution (transposed convolution) with input ``IH x IW x C``, kernel
``KH x KW x C x M``, stride ``s``, padding ``p`` and output padding ``op``
produces output

    ``OH = (IH - 1) * s - 2 * p + KH + op``        (same for width)

which matches the PyTorch ``conv_transpose2d`` convention the GAN/FCN
models in Table I follow.  The equivalent *zero-padding* view (the paper's
Algorithm 1) stretches the input by inserting ``s - 1`` zeros between
pixels, adds a border of ``K - 1 - p`` zeros (plus ``op`` extra rows/columns
at the bottom/right), and then runs a stride-1 valid convolution with the
180-degree-rotated kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.utils.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class PaddedGeometry:
    """Geometry of the zero-inserted ("padded") input map of Algorithm 1.

    Attributes:
        height / width: full padded map size.
        border_top / border_left: leading zero border, ``K - 1 - p``.
        border_bottom / border_right: trailing zero border,
            ``K - 1 - p + output_padding``.
        stretched_height / stretched_width: size after zero insertion but
            before adding borders, ``(I - 1) * s + 1``.
    """

    height: int
    width: int
    border_top: int
    border_left: int
    border_bottom: int
    border_right: int
    stretched_height: int
    stretched_width: int

    @property
    def num_pixels(self) -> int:
        """Total pixel positions in the padded map (per channel)."""
        return self.height * self.width


@dataclass(frozen=True)
class DeconvSpec:
    """Complete shape specification of one deconvolution layer.

    Attributes mirror Table I of the paper: input ``(IH, IW, C)``, kernel
    ``(KH, KW, C, M)``, ``stride``, ``padding`` and ``output_padding``
    (all symmetric in H/W unless stated otherwise via the ``*_w`` fields).
    """

    input_height: int
    input_width: int
    in_channels: int
    kernel_height: int
    kernel_width: int
    out_channels: int
    stride: int
    padding: int = 0
    output_padding: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.input_height, "input_height")
        check_positive_int(self.input_width, "input_width")
        check_positive_int(self.in_channels, "in_channels")
        check_positive_int(self.kernel_height, "kernel_height")
        check_positive_int(self.kernel_width, "kernel_width")
        check_positive_int(self.out_channels, "out_channels")
        check_positive_int(self.stride, "stride")
        check_non_negative_int(self.padding, "padding")
        check_non_negative_int(self.output_padding, "output_padding")
        if self.padding >= self.kernel_height or self.padding >= self.kernel_width:
            raise ShapeError(
                f"padding {self.padding} must be smaller than the kernel "
                f"({self.kernel_height}x{self.kernel_width}); the zero-padding "
                "view would otherwise have a negative border"
            )
        if self.output_padding >= self.stride:
            raise ShapeError(
                f"output_padding {self.output_padding} must be < stride "
                f"{self.stride} (transposed-convolution convention)"
            )
        if self.output_height < 1 or self.output_width < 1:
            raise ShapeError(
                f"spec {self} produces a non-positive output size "
                f"({self.output_height}x{self.output_width})"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def output_height(self) -> int:
        """``OH = (IH - 1) * s - 2p + KH + op``."""
        return (
            (self.input_height - 1) * self.stride
            - 2 * self.padding
            + self.kernel_height
            + self.output_padding
        )

    @property
    def output_width(self) -> int:
        """``OW = (IW - 1) * s - 2p + KW + op``."""
        return (
            (self.input_width - 1) * self.stride
            - 2 * self.padding
            + self.kernel_width
            + self.output_padding
        )

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """``(IH, IW, C)``."""
        return (self.input_height, self.input_width, self.in_channels)

    @property
    def kernel_shape(self) -> tuple[int, int, int, int]:
        """``(KH, KW, C, M)``."""
        return (
            self.kernel_height,
            self.kernel_width,
            self.in_channels,
            self.out_channels,
        )

    @property
    def output_shape(self) -> tuple[int, int, int]:
        """``(OH, OW, M)``."""
        return (self.output_height, self.output_width, self.out_channels)

    @property
    def num_input_pixels(self) -> int:
        """``IH * IW`` (pixel positions, channel dimension excluded)."""
        return self.input_height * self.input_width

    @property
    def num_output_pixels(self) -> int:
        """``OH * OW``."""
        return self.output_height * self.output_width

    @property
    def num_kernel_taps(self) -> int:
        """``KH * KW``."""
        return self.kernel_height * self.kernel_width

    @property
    def num_weights(self) -> int:
        """Total scalar weights, ``KH * KW * C * M``."""
        return self.num_kernel_taps * self.in_channels * self.out_channels

    # ------------------------------------------------------------------
    # Zero-padding (Algorithm 1) geometry
    # ------------------------------------------------------------------
    def padded_geometry(self) -> PaddedGeometry:
        """Geometry of the zero-inserted map convolved in Algorithm 1."""
        border_top = self.kernel_height - 1 - self.padding
        border_left = self.kernel_width - 1 - self.padding
        stretched_h = (self.input_height - 1) * self.stride + 1
        stretched_w = (self.input_width - 1) * self.stride + 1
        height = stretched_h + border_top * 2 + self.output_padding
        width = stretched_w + border_left * 2 + self.output_padding
        return PaddedGeometry(
            height=height,
            width=width,
            border_top=border_top,
            border_left=border_left,
            border_bottom=border_top + self.output_padding,
            border_right=border_left + self.output_padding,
            stretched_height=stretched_h,
            stretched_width=stretched_w,
        )

    def contributing_taps(self, out_y: int, out_x: int) -> list[tuple[int, int, int, int]]:
        """Kernel taps contributing to output pixel ``(out_y, out_x)``.

        Returns tuples ``(kh, kw, ih, iw)``: tap position and the *original*
        (pre-insertion) input pixel it multiplies.  This is the gather view
        of the scatter relation ``oy = s * ih + kh - p``.
        """
        taps = []
        for kh in range(self.kernel_height):
            num_y = out_y + self.padding - kh
            if num_y % self.stride != 0:
                continue
            ih = num_y // self.stride
            if not 0 <= ih < self.input_height:
                continue
            for kw in range(self.kernel_width):
                num_x = out_x + self.padding - kw
                if num_x % self.stride != 0:
                    continue
                iw = num_x // self.stride
                if not 0 <= iw < self.input_width:
                    continue
                taps.append((kh, kw, ih, iw))
        return taps

    def describe(self) -> str:
        """One-line human-readable summary, Table I style."""
        return (
            f"in=({self.input_height},{self.input_width},{self.in_channels}) "
            f"out=({self.output_height},{self.output_width},{self.out_channels}) "
            f"kernel=({self.kernel_height},{self.kernel_width},"
            f"{self.in_channels},{self.out_channels}) stride={self.stride} "
            f"pad={self.padding} out_pad={self.output_padding}"
        )


#: The nine constructor fields of :class:`DeconvSpec`, in declaration order.
_SPEC_FIELDS = attrgetter(
    "input_height",
    "input_width",
    "in_channels",
    "kernel_height",
    "kernel_width",
    "out_channels",
    "stride",
    "padding",
    "output_padding",
)


@dataclass(frozen=True, eq=False)
class SpecArrays:
    """Struct-of-arrays view of many :class:`DeconvSpec` instances.

    Every field is a flat ``int64`` array of length ``len(specs)``; the
    derived-size properties mirror the scalar spec's properties
    elementwise.  This is the packing layer the vectorized analytic
    evaluation plane (:mod:`repro.arch.metrics_batch`) computes over —
    one array op instead of one Python attribute walk per job.
    """

    input_height: np.ndarray
    input_width: np.ndarray
    in_channels: np.ndarray
    kernel_height: np.ndarray
    kernel_width: np.ndarray
    out_channels: np.ndarray
    stride: np.ndarray
    padding: np.ndarray
    output_padding: np.ndarray

    @classmethod
    def from_specs(cls, specs: Sequence[DeconvSpec]) -> "SpecArrays":
        """Pack already-validated specs into column arrays."""
        if len(specs) == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(*([empty] * 9))
        table = np.asarray([_SPEC_FIELDS(spec) for spec in specs], dtype=np.int64)
        return cls(*table.T)

    def __len__(self) -> int:
        return self.input_height.shape[0]

    # ------------------------------------------------------------------
    # Derived sizes (elementwise mirrors of the DeconvSpec properties)
    # ------------------------------------------------------------------
    @property
    def output_height(self) -> np.ndarray:
        """``OH = (IH - 1) * s - 2p + KH + op`` per spec."""
        return (
            (self.input_height - 1) * self.stride
            - 2 * self.padding
            + self.kernel_height
            + self.output_padding
        )

    @property
    def output_width(self) -> np.ndarray:
        """``OW = (IW - 1) * s - 2p + KW + op`` per spec."""
        return (
            (self.input_width - 1) * self.stride
            - 2 * self.padding
            + self.kernel_width
            + self.output_padding
        )

    @property
    def num_input_pixels(self) -> np.ndarray:
        """``IH * IW`` per spec."""
        return self.input_height * self.input_width

    @property
    def num_output_pixels(self) -> np.ndarray:
        """``OH * OW`` per spec."""
        return self.output_height * self.output_width

    @property
    def num_kernel_taps(self) -> np.ndarray:
        """``KH * KW`` per spec."""
        return self.kernel_height * self.kernel_width

    @property
    def num_weights(self) -> np.ndarray:
        """``KH * KW * C * M`` per spec."""
        return self.num_kernel_taps * self.in_channels * self.out_channels


def solve_padding(
    input_size: int,
    output_size: int,
    kernel: int,
    stride: int,
) -> tuple[int, int]:
    """Solve for ``(padding, output_padding)`` matching a target output size.

    Table I gives input/output/kernel/stride but omits padding; this inverts
    ``O = (I - 1) s - 2p + K + op`` choosing the smallest ``op`` in
    ``[0, s)`` that admits an integer ``p >= 0``.
    """
    for output_padding in range(stride):
        numerator = (input_size - 1) * stride + kernel + output_padding - output_size
        if numerator < 0 or numerator % 2 != 0:
            continue
        padding = numerator // 2
        if padding < kernel:
            return padding, output_padding
    raise ShapeError(
        f"no (padding, output_padding) reproduces output {output_size} from "
        f"input {input_size}, kernel {kernel}, stride {stride}"
    )
