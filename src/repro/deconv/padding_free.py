"""Algorithm 2: padding-free deconvolution.

Steps (paper Sec. II-B):

a) *Rotation* — rotate the kernel 180 degrees.
b) *Convolution* — for every input pixel, MAC it against the whole rotated
   kernel along the channel direction, producing a ``KH x KW x M`` patch.
c) *Addition* — overlap-add the patches at ``stride`` offsets.
d) *Cropping* — crop the borders to the final output size.

The paper presents steps (a)-(b) relative to *its* convolution convention;
composed with our scatter reference convention the two 180-degree flips
cancel, so the patch for input pixel ``(ih, iw)`` lands at output rows
``s*ih + kh - p`` — i.e. the overlap-add runs on the kernel as stored and
the crop removes ``p`` leading rows/columns.  The functions below expose the
intermediate products because the padding-free *accelerator* design needs
their counts (extra adders + crop circuitry are its area/energy overhead).
"""

from __future__ import annotations

import numpy as np

from repro.deconv.reference import _check_operands, rotate_kernel_180
from repro.deconv.shapes import DeconvSpec

__all__ = [
    "pixel_kernel_products",
    "overlap_add",
    "crop_to_output",
    "padding_free_deconv",
    "full_overlap_shape",
]


def full_overlap_shape(spec: DeconvSpec) -> tuple[int, int]:
    """Size of the uncropped overlap-add canvas: ``((I-1)s + K, ...)``."""
    fh = (spec.input_height - 1) * spec.stride + spec.kernel_height
    fw = (spec.input_width - 1) * spec.stride + spec.kernel_width
    return fh, fw


def pixel_kernel_products(x: np.ndarray, w: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Step (b): per-input-pixel kernel products.

    Returns ``(IH, IW, KH, KW, M)`` where entry ``[ih, iw, kh, kw, m]`` is
    ``sum_c x[ih, iw, c] * w[kh, kw, c, m]`` — exactly the ``KH*KW*M``-wide
    crossbar output vector the padding-free accelerator reads per cycle.
    """
    _check_operands(x, w, spec)
    return np.einsum("yxc,ijcm->yxijm", x.astype(np.float64, copy=False), w, optimize=True)


def overlap_add(products: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Step (c): scatter the per-pixel patches onto the full canvas."""
    fh, fw = full_overlap_shape(spec)
    m = spec.out_channels
    full = np.zeros((fh, fw, m), dtype=np.float64)
    s = spec.stride
    for kh in range(spec.kernel_height):
        for kw in range(spec.kernel_width):
            full[
                kh : kh + (spec.input_height - 1) * s + 1 : s,
                kw : kw + (spec.input_width - 1) * s + 1 : s,
                :,
            ] += products[:, :, kh, kw, :]
    return full


def crop_to_output(full: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Step (d): crop ``p`` leading rows/cols and trim to ``(OH, OW)``.

    With output padding the canvas is short by ``op`` rows/columns at the
    bottom/right; the missing positions receive no contributions and are
    zero by the transposed-convolution definition, so we zero-extend.
    """
    p = spec.padding
    oh, ow = spec.output_height, spec.output_width
    cropped = full[p:, p:, :]
    if cropped.shape[0] < oh or cropped.shape[1] < ow:
        padded = np.zeros((oh, ow, spec.out_channels), dtype=cropped.dtype)
        padded[: cropped.shape[0], : cropped.shape[1], :] = cropped[:oh, :ow, :]
        return padded
    return cropped[:oh, :ow, :]


def padding_free_deconv(
    x: np.ndarray, w: np.ndarray, spec: DeconvSpec, paper_rotation: bool = True
) -> np.ndarray:
    """Run Algorithm 2 end to end and return the ``(OH, OW, M)`` output.

    Args:
        paper_rotation: when True, apply the paper's explicit rotate step to
            a pre-flipped copy of the kernel (the two flips cancel); when
            False, skip both.  The flag exists purely to document the
            convention equivalence — both paths are bit-identical.
    """
    _check_operands(x, w, spec)
    kernel = rotate_kernel_180(rotate_kernel_180(w)) if paper_rotation else w
    products = pixel_kernel_products(x, kernel, spec)
    full = overlap_add(products, spec)
    return crop_to_output(full, spec)
