"""Algorithm 1: zero-padding deconvolution.

Steps (paper Sec. II-B):

a) *Padding* — insert ``stride - 1`` zeros between input pixels and add a
   zero border of ``K - 1 - p`` (plus ``output_padding`` at bottom/right).
b) *Convolution* — run a stride-1 valid convolution of the padded map with
   the 180-degree-rotated kernel.

The rotation makes the result agree exactly with the scatter reference
(:func:`repro.deconv.reference.conv_transpose2d`); the padded map is what
the conventional ReRAM accelerator streams through its crossbar, and its
overwhelming zero fraction (Fig. 4) is the redundancy RED removes.
"""

from __future__ import annotations

import numpy as np

from repro.deconv.reference import _check_operands, conv2d_valid, rotate_kernel_180
from repro.deconv.shapes import DeconvSpec


def zero_insert_input(x: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Build the zero-inserted, zero-bordered input map ``Ipad``.

    Args:
        x: input activations ``(IH, IW, C)``.
        spec: layer specification (shapes must match).

    Returns:
        ``(PH, PW, C)`` padded map whose geometry is
        ``spec.padded_geometry()``.
    """
    if tuple(x.shape) != spec.input_shape:
        from repro.errors import ShapeError

        raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
    geom = spec.padded_geometry()
    out = np.zeros((geom.height, geom.width, spec.in_channels), dtype=x.dtype)
    top, left = geom.border_top, geom.border_left
    out[
        top : top + geom.stretched_height : spec.stride,
        left : left + geom.stretched_width : spec.stride,
        :,
    ] = x
    return out


def zero_padding_deconv(x: np.ndarray, w: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Run Algorithm 1 end to end and return the ``(OH, OW, M)`` output."""
    _check_operands(x, w, spec)
    padded = zero_insert_input(x.astype(np.float64, copy=False), spec)
    return conv2d_valid(padded, rotate_kernel_180(w))


def padded_input_vectors(x: np.ndarray, spec: DeconvSpec) -> np.ndarray:
    """Per-cycle input vectors of the zero-padding *accelerator* dataflow.

    The conventional design feeds one im2col window of the padded map per
    cycle: cycle ``t = oy * OW + ox`` supplies the flattened
    ``KH * KW * C`` window at output position ``(oy, ox)``.  Returns an
    ``(OH * OW, KH * KW * C)`` array — mostly zeros, which is exactly the
    wasted work Fig. 4 quantifies.
    """
    padded = zero_insert_input(x, spec)
    kh, kw = spec.kernel_height, spec.kernel_width
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw), axis=(0, 1))
    # windows: (OH, OW, C, KH, KW) -> (OH*OW, KH*KW*C) with (kh, kw, c) order
    # matching the row ordering used by the kernel-mapping convention.
    oh, ow = spec.output_height, spec.output_width
    vecs = windows.transpose(0, 1, 3, 4, 2).reshape(oh * ow, kh * kw * spec.in_channels)
    return vecs
