"""Zero-redundancy analytics (paper Fig. 4) and operation counting.

The paper's *zero redundancy ratio* is the fraction of zero pixels in the
zero-inserted ("padded") input map — the share of crossbar input slots the
conventional zero-padding design wastes.  For the SNGAN layer (4x4 input,
kernel 4, stride 2) the padded map is 11x11 with 16 live pixels:
``1 - 16/121 = 86.8%``, matching the figure; at stride 32 (FCN convention,
kernel ``2s``) it reaches 99.8%+.

We also provide the MAC-level view (fraction of multiply-accumulates whose
input operand is an inserted zero), which is what actually scales energy.
"""

from __future__ import annotations

import numpy as np

from repro.deconv.shapes import DeconvSpec, SpecArrays
from repro.errors import ParameterError


def padded_zero_fraction(spec: DeconvSpec) -> float:
    """Fraction of zero pixels in the padded map (Fig. 4's metric)."""
    geom = spec.padded_geometry()
    live = spec.num_input_pixels
    return 1.0 - live / geom.num_pixels


def dense_mac_count(spec: DeconvSpec) -> int:
    """MACs the zero-padding design schedules: ``OH*OW*KH*KW*C*M``."""
    return (
        spec.num_output_pixels
        * spec.num_kernel_taps
        * spec.in_channels
        * spec.out_channels
    )


def useful_mac_count(spec: DeconvSpec) -> int:
    """MACs with a live (non-inserted-zero) input operand.

    Every (input pixel, kernel tap) pair whose scatter target lands inside
    the output contributes ``C*M`` MACs; equivalently this is the number of
    in-bounds gather taps summed over output pixels.  Computed in closed
    form per dimension and multiplied, since H and W separate.
    """
    def taps_1d(in_size: int, k: int) -> int:
        s, p = spec.stride, spec.padding
        out_size = (in_size - 1) * s - 2 * p + k + spec.output_padding
        # Input index i contributes via tap kk iff 0 <= s*i + kk - p < out.
        return sum(
            1
            for kk in range(k)
            for i in range(in_size)
            if 0 <= s * i + kk - p < out_size
        )

    rows = taps_1d(spec.input_height, spec.kernel_height)
    cols = taps_1d(spec.input_width, spec.kernel_width)
    return rows * cols * spec.in_channels * spec.out_channels


def _taps_1d_batch(
    in_size: np.ndarray,
    kernel: np.ndarray,
    stride: np.ndarray,
    padding: np.ndarray,
    output_padding: np.ndarray,
) -> np.ndarray:
    """Vectorized one-dimensional live-tap count, one value per spec.

    For each spec, counts the ``(kk, i)`` pairs with
    ``0 <= s*i + kk - p < out`` — the same set the scalar
    :func:`useful_mac_count` enumerates — but closed-form over ``i``:
    the valid input indices for tap ``kk`` form the integer interval
    ``[ceil((p - kk)/s), ceil((out + p - kk)/s))`` clipped to
    ``[0, in_size)``.  The per-tap interval lengths are evaluated for
    all specs' taps at once (one flat array over ``sum(K_j)`` entries)
    and segment-summed back per spec.
    """
    out = (in_size - 1) * stride - 2 * padding + kernel + output_padding
    starts = np.cumsum(kernel) - kernel
    job = np.repeat(np.arange(kernel.shape[0]), kernel)
    kk = np.arange(int(kernel.sum()), dtype=np.int64) - starts[job]
    s = stride[job]
    p = padding[job]
    # ceil(a / s) for positive s, via floor division: -((-a) // s).
    lo = np.maximum(0, -((-(p - kk)) // s))
    hi = np.minimum(in_size[job], -((-(out[job] + p - kk)) // s))
    counts = np.maximum(hi - lo, 0)
    return np.add.reduceat(counts, starts)


def useful_mac_count_batch(arrays: SpecArrays) -> np.ndarray:
    """Vectorized :func:`useful_mac_count`: one ``int64`` per spec.

    Exact integer arithmetic throughout, so the result is identical to
    the scalar count (property-tested in
    ``tests/deconv/test_analysis.py``).
    """
    if len(arrays) == 0:
        return np.empty(0, dtype=np.int64)
    rows = _taps_1d_batch(
        arrays.input_height,
        arrays.kernel_height,
        arrays.stride,
        arrays.padding,
        arrays.output_padding,
    )
    cols = _taps_1d_batch(
        arrays.input_width,
        arrays.kernel_width,
        arrays.stride,
        arrays.padding,
        arrays.output_padding,
    )
    return rows * cols * arrays.in_channels * arrays.out_channels


def redundant_mac_fraction(spec: DeconvSpec) -> float:
    """Fraction of scheduled MACs wasted on inserted zeros (MAC-level view)."""
    dense = dense_mac_count(spec)
    if dense == 0:
        raise ParameterError("spec schedules zero MACs")
    return 1.0 - useful_mac_count(spec) / dense


def redundancy_vs_stride(
    input_size: int,
    strides: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    kernel_rule: str = "fixed",
    kernel_size: int = 4,
) -> list[tuple[int, float]]:
    """Reproduce one curve of Fig. 4.

    Args:
        input_size: square input feature-map side (4 for SNGAN, 16 for FCN).
        strides: stride sweep (the figure uses 1..32 in octaves).
        kernel_rule: ``"fixed"`` keeps ``kernel_size`` constant (SNGAN-style
            curve); ``"fcn"`` uses the FCN bilinear-upsampling convention
            ``K = 2s`` with ``p = s // 2``.
        kernel_size: kernel side for the ``"fixed"`` rule.

    Returns:
        List of ``(stride, zero_redundancy_ratio)`` pairs.
    """
    if kernel_rule not in ("fixed", "fcn"):
        raise ParameterError(f"unknown kernel_rule {kernel_rule!r}")
    points = []
    for s in strides:
        if kernel_rule == "fcn":
            k = max(2 * s, 2)
            p = s // 2
        else:
            k = kernel_size
            p = min(1, k - 1) if s > 1 else 0
        # Padding must stay < kernel; clamp for the degenerate stride-1 case.
        p = min(p, k - 1)
        spec = DeconvSpec(
            input_height=input_size,
            input_width=input_size,
            in_channels=1,
            kernel_height=k,
            kernel_width=k,
            out_channels=1,
            stride=s,
            padding=p,
        )
        points.append((s, padded_zero_fraction(spec)))
    return points


def input_vector_sparsity(spec: DeconvSpec) -> float:
    """Average zero fraction of the zero-padding design's per-cycle vectors.

    Each cycle the conventional design feeds a ``KH*KW*C`` im2col window of
    the padded map; averaged over all ``OH*OW`` windows this equals the
    MAC-level redundancy, reported here under the dataflow-centric name the
    accelerator analysis uses.
    """
    return redundant_mac_fraction(spec)
