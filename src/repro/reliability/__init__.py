"""Deterministic fault injection and retry policies.

The reliability plane applies the repo's signature move — seed-derived,
value-keyed determinism (see the seeding contract in
:mod:`repro.reram`) — to failures themselves:

- :mod:`repro.reliability.failpoints` — a process-wide registry of
  named failure sites (``RED_FAILPOINTS=store.put_many:io_error@0.3``)
  whose trigger draws derive from ``SeedSequence(seed, spawn_key=...)``
  so an injected fault schedule is a pure function of configuration,
  never of batch order, worker count or wall clock.
- :mod:`repro.reliability.policy` — the frozen :class:`RetryPolicy`
  (deterministic exponential backoff, injectable sleeper) plus the
  :func:`is_retryable` transient/permanent split and the
  :class:`Deadline` helper behind every runner ``timeout=``.

This package is deliberately *outside* the RED006 deterministic
subpackage set: all wall-clock access (``time.monotonic``, sleeping
between retries) lives here and is injected into ``repro.eval`` /
``repro.api``, which stay clock-free.

See ``README.md`` next to this file for the failpoint catalogue.
"""

from repro.reliability.failpoints import (
    Failpoint,
    active_failpoints,
    clear_failpoints,
    configure_failpoints,
    configured_failpoints,
    parse_failpoints,
)
from repro.reliability.policy import Deadline, RetryPolicy, is_retryable, no_sleep

__all__ = [
    "Deadline",
    "Failpoint",
    "RetryPolicy",
    "active_failpoints",
    "clear_failpoints",
    "configure_failpoints",
    "configured_failpoints",
    "is_retryable",
    "no_sleep",
    "parse_failpoints",
]
