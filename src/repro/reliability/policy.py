"""Retry policies, the transient/permanent split, and deadlines.

This module owns every wall-clock primitive the substrate needs —
sleeping between retries, ``time.monotonic`` deadlines — so the
deterministic packages (``repro.eval``, ``repro.api``, ...; RED006)
never touch the clock themselves: they receive a
:class:`RetryPolicy`/:class:`Deadline` and call through it.  Tests
inject :func:`no_sleep` (and a fake clock) so no test ever wall-clock
sleeps.

The failure taxonomy — which errors retry and which surface — is
documented in :mod:`repro.errors` and implemented by
:func:`is_retryable`.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    DrainingError,
    EvaluationTimeoutError,
    OverloadedError,
    ParameterError,
    ShardUnavailableError,
    WorkerCrashError,
)


def no_sleep(_delay: float) -> None:
    """The injectable sleeper tests use: returns immediately."""
    return None


def is_retryable(exc: BaseException, *, follow_cause: bool = False) -> bool:
    """True for transient failures a retry can plausibly cure.

    Transient: ``OSError`` (real or injected I/O faults), worker
    crashes (:class:`~repro.errors.WorkerCrashError`,
    :class:`BrokenProcessPool`), unavailable serving shards
    (:class:`~repro.errors.ShardUnavailableError`) and deterministic
    load shedding (:class:`~repro.errors.OverloadedError`).  Permanent:
    :class:`~repro.errors.EvaluationTimeoutError` (the budget is
    final), :class:`~repro.errors.DrainingError` (this server is going
    away) and everything else — invalid input fails identically on
    every attempt and must surface (see the taxonomy table in
    :mod:`repro.errors`).

    ``follow_cause=True`` additionally classifies a permanent-looking
    wrapper by its direct ``__cause__``: the service tier re-raises
    transient pool/store failures wrapped in richer types
    (``raise X from BrokenProcessPool``), and the wire envelope and the
    serving circuit breaker must not lose the transient bit in that
    wrapping.  Exactly one level is followed, and the
    explicitly-permanent classifications above (timeout, draining)
    never flip — their budgets are final regardless of what caused
    them.
    """
    if isinstance(exc, (EvaluationTimeoutError, DrainingError)):
        return False
    if isinstance(
        exc,
        (
            OSError,
            WorkerCrashError,
            BrokenProcessPool,
            ShardUnavailableError,
            OverloadedError,
        ),
    ):
        return True
    if follow_cause and exc.__cause__ is not None:
        return is_retryable(exc.__cause__)
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with exponential backoff.

    ``delay_for(attempt)`` is a pure function of the policy — no
    jitter — so retry schedules are as reproducible as everything else
    in the repo.  The ``sleeper`` field is the only side effect and is
    injectable (:func:`no_sleep` in tests).

    Attributes:
        max_attempts: total tries, including the first (``>= 1``).
        base_delay_s: backoff before the second attempt, seconds.
        multiplier: backoff growth per subsequent attempt (``>= 1``).
        max_delay_s: backoff cap, seconds.
        sleeper: ``callable(delay_seconds)`` invoked between attempts.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    sleeper: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ParameterError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < 0:
            raise ParameterError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )

    def delay_for(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ParameterError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )

    def delays(self) -> tuple[float, ...]:
        """Every backoff the policy can sleep, in order."""
        return tuple(
            self.delay_for(attempt)
            for attempt in range(1, self.max_attempts)
        )

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: Callable[[BaseException], bool] = is_retryable,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` with up to ``max_attempts`` tries.

        Retries only failures ``retry_on`` accepts; the final failure
        (or any permanent one) re-raises unchanged, preserving its
        type.  ``on_retry(attempt, exc)`` observes each absorbed
        failure (counters, logging).
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:
                if attempt >= self.max_attempts or not retry_on(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleeper(self.delay_for(attempt))
        raise AssertionError("unreachable")  # pragma: no cover


#: Policy tests use everywhere a real policy shape matters but a real
#: sleep never should.
NO_SLEEP_POLICY = RetryPolicy(sleeper=no_sleep)


class Deadline:
    """A monotonic-clock budget behind every runner ``timeout=``.

    ``Deadline(None)`` never expires (the default); a positive
    ``seconds`` budget starts counting at construction.  The clock is
    injectable for tests.
    """

    __slots__ = ("_budget", "_clock", "_expires_at")

    def __init__(
        self,
        seconds: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and not seconds > 0:
            raise ParameterError(f"timeout must be > 0 seconds, got {seconds!r}")
        self._budget = seconds
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + float(seconds)

    def remaining(self) -> float | None:
        """Seconds left (may be negative), or ``None`` for no budget."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, what: str) -> None:
        """Raise :class:`~repro.errors.EvaluationTimeoutError` if expired."""
        if self.expired():
            raise EvaluationTimeoutError(
                f"{what} exceeded its {self._budget!r}s timeout budget"
            )
