"""Process-wide deterministic failpoint registry.

A *failpoint* is a named site in the substrate where a fault can be
injected: ``pool.worker`` (a sweep worker job), ``store.put_many`` (a
batch publish), ``store.index.publish`` (the index ``os.replace``),
``store.get_many`` (a payload read).  Sites are armed with a spec
string, either programmatically::

    configure_failpoints("store.put_many:io_error@0.3;pool.worker:crash@0.1",
                         seed=7)

or through the environment (``RED_FAILPOINTS`` / ``RED_FAILPOINT_SEED``,
read at import so forked *and* spawned pool workers arm themselves).

Determinism contract (PR 6, :mod:`repro.reram`)
-----------------------------------------------
Whether an armed site fires is a **pure function of values**: the draw
comes from ``default_rng(SeedSequence(seed, spawn_key=(site_id,
*tokens)))`` where ``tokens`` are caller-supplied values identifying
the attempt (a job key, a retry attempt number) — never a call counter,
never wall clock, never process identity.  Two runs with the same
configuration and the same work produce the same fault schedule, in any
process topology; a retried attempt passes a fresh attempt token and so
draws fresh.  This is what makes the chaos suite's byte-identical
recovery gate (``tests/reliability/``) meaningful.

Modes
-----
``io_error``
    :func:`inject` raises :class:`~repro.errors.InjectedFaultError`
    (an ``OSError`` — the retry plane treats it as the transient it
    stands in for).
``crash``
    In a marked pool worker process (:func:`mark_worker_process`, set by
    the runner's pool initializer) the process hard-exits, producing a
    real ``BrokenProcessPool`` in the parent.  Anywhere else it raises
    :class:`~repro.errors.WorkerCrashError` so tests never kill pytest.
``corrupt``
    :func:`corrupted` returns a deterministically bit-flipped copy of
    the payload (decode fails downstream and the store's quarantine
    path runs); :func:`inject` ignores corrupt-mode sites.

Hot-path cost
-------------
Call sites go through the module attributes (``failpoints.inject``),
and the unarmed fast path is one global check.  The bench gate
(``benchmarks/bench_resilience.py``) holds the disabled hooks to <= 2%
on the ~10k-job grid, measured against :func:`hooks_bypassed`, which
rebinds the hooks to literal no-ops.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import InjectedFaultError, ParameterError, WorkerCrashError

ENV_VAR = "RED_FAILPOINTS"
ENV_SEED_VAR = "RED_FAILPOINT_SEED"

IO_ERROR = "io_error"
CRASH = "crash"
CORRUPT = "corrupt"
MODES = (IO_ERROR, CRASH, CORRUPT)

#: Exit status a ``crash``-mode failpoint kills a marked worker with.
#: Distinctive on purpose: a pool that died with this status died by
#: injection, not by a real fault.
CRASH_EXIT_STATUS = 86


@dataclass(frozen=True)
class Failpoint:
    """One armed failure site.

    Attributes:
        site: the site name (see the catalogue in ``README.md``).
        mode: one of :data:`MODES`.
        rate: trigger probability in ``[0, 1]``; ``1.0`` always fires.
    """

    site: str
    mode: str
    rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.site or any(c in self.site for c in ":;@ \t\n"):
            raise ParameterError(f"invalid failpoint site {self.site!r}")
        if self.mode not in MODES:
            raise ParameterError(
                f"failpoint mode must be one of {MODES}, got {self.mode!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ParameterError(
                f"failpoint rate must be in [0, 1], got {self.rate!r}"
            )


def parse_failpoints(spec: str) -> tuple[Failpoint, ...]:
    """``"site:mode@rate;..."`` as :class:`Failpoint` instances.

    The ``@rate`` suffix is optional (defaults to ``1.0``); empty
    clauses are skipped so trailing ``;`` is harmless.  Malformed specs
    raise :class:`~repro.errors.ParameterError`.
    """
    points: list[Failpoint] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, sep, mode = clause.partition(":")
        if not sep or not mode:
            raise ParameterError(
                f"failpoint clause must be 'site:mode[@rate]', got {clause!r}"
            )
        mode, _, rate_text = mode.partition("@")
        try:
            rate = float(rate_text) if rate_text else 1.0
        except ValueError as exc:
            raise ParameterError(
                f"failpoint rate must be a float, got {rate_text!r}"
            ) from exc
        points.append(Failpoint(site=site.strip(), mode=mode.strip(), rate=rate))
    return tuple(points)


def format_failpoints(points: Iterable[Failpoint]) -> str:
    """The spec string round-tripping :func:`parse_failpoints`."""
    return ";".join(f"{p.site}:{p.mode}@{p.rate!r}" for p in points)


_lock = threading.Lock()
_points: dict[str, Failpoint] = {}
_seed: int = 0
_armed: bool = False
_in_worker: bool = False


def configure_failpoints(
    spec: str | Iterable[Failpoint] | None, *, seed: int = 0
) -> tuple[Failpoint, ...]:
    """Arm the process-wide registry (replacing any prior config).

    ``spec`` is a spec string, an iterable of :class:`Failpoint`, or
    ``None``/empty to disarm.  Returns the armed points.
    """
    if isinstance(spec, str):
        points = parse_failpoints(spec)
    elif spec is None:
        points = ()
    else:
        points = tuple(spec)
        for point in points:
            if not isinstance(point, Failpoint):
                raise ParameterError(
                    f"expected Failpoint instances, got {type(point).__name__}"
                )
    if not isinstance(seed, int) or seed < 0:
        raise ParameterError(f"failpoint seed must be an int >= 0, got {seed!r}")
    global _points, _seed, _armed
    with _lock:
        _points = {point.site: point for point in points}
        _seed = seed
        _armed = bool(_points)
    return points


def clear_failpoints() -> None:
    """Disarm every failpoint (the unarmed fast path is restored)."""
    configure_failpoints(None)


def active_failpoints() -> tuple[Failpoint, ...]:
    """Snapshot of the armed points (empty when disarmed)."""
    with _lock:
        return tuple(_points.values())


def active_seed() -> int:
    """The seed the armed registry draws from."""
    with _lock:
        return _seed


def is_armed() -> bool:
    """True when at least one failpoint is armed."""
    return _armed


@contextmanager
def configured_failpoints(
    spec: str | Iterable[Failpoint] | None, *, seed: int = 0
):
    """Arm ``spec`` for the duration of a ``with`` block, then restore.

    The test-suite idiom: chaos tests arm their scenario without
    leaking configuration into the next test.
    """
    with _lock:
        saved_points = tuple(_points.values())
        saved_seed = _seed
    configure_failpoints(spec, seed=seed)
    try:
        yield
    finally:
        configure_failpoints(saved_points, seed=saved_seed)


def configure_from_env(environ=os.environ) -> bool:
    """Arm from ``RED_FAILPOINTS`` / ``RED_FAILPOINT_SEED`` if present.

    Returns True when a spec was found and armed.  Called at import so
    spawned pool workers (which re-import this module) inherit the
    environment-armed configuration; forked workers inherit the module
    state directly.
    """
    spec = environ.get(ENV_VAR)
    if not spec:
        return False
    seed_text = environ.get(ENV_SEED_VAR, "0")
    try:
        seed = int(seed_text)
    except ValueError as exc:
        raise ParameterError(
            f"{ENV_SEED_VAR} must be an int, got {seed_text!r}"
        ) from exc
    configure_failpoints(spec, seed=seed)
    return True


def mark_worker_process() -> None:
    """Mark this process as a disposable pool worker.

    Only marked processes hard-exit on ``crash``-mode failpoints;
    everywhere else ``crash`` raises
    :class:`~repro.errors.WorkerCrashError`.
    """
    global _in_worker
    _in_worker = True


def in_worker_process() -> bool:
    """True in a process marked by :func:`mark_worker_process`."""
    return _in_worker


def _normalize_token(token) -> int:
    """A token value as a non-negative int spawn-key component."""
    if isinstance(token, bool):
        return int(token)
    if isinstance(token, int):
        if token < 0:
            raise ParameterError(f"failpoint tokens must be >= 0, got {token}")
        return token
    if isinstance(token, str):
        return zlib.crc32(token.encode("utf-8"))
    if isinstance(token, bytes):
        return int.from_bytes(token, "big")
    raise ParameterError(
        f"failpoint tokens must be int/str/bytes, got {type(token).__name__}"
    )


def _should_trigger(point: Failpoint, tokens: tuple) -> bool:
    """The deterministic draw: pure function of (seed, site, tokens)."""
    if point.rate >= 1.0:
        return True
    if point.rate <= 0.0:
        return False
    site_id = zlib.crc32(point.site.encode("utf-8"))
    spawn_key = (site_id, *(_normalize_token(token) for token in tokens))
    draw = np.random.default_rng(
        np.random.SeedSequence(_seed, spawn_key=spawn_key)
    ).random()
    return bool(draw < point.rate)


def _check_impl(site: str, *tokens) -> Failpoint | None:
    """The armed point firing at ``site`` for these tokens, if any."""
    if not _armed:
        return None
    point = _points.get(site)
    if point is None or not _should_trigger(point, tokens):
        return None
    return point


def _inject_impl(site: str, *tokens) -> None:
    """Raise (or kill the worker) if ``site`` fires for these tokens.

    ``corrupt``-mode points are read-path-only and ignored here.
    """
    point = _check_impl(site, *tokens)
    if point is None or point.mode == CORRUPT:
        return
    if point.mode == CRASH:
        if _in_worker:
            os._exit(CRASH_EXIT_STATUS)
        raise WorkerCrashError(
            f"injected worker crash at failpoint {site!r}"
        )
    raise InjectedFaultError(f"injected I/O fault at failpoint {site!r}")


def _corrupted_impl(site: str, payload: bytes, *tokens) -> bytes:
    """``payload``, bit-flipped when a ``corrupt`` point fires here."""
    if not _armed:
        return payload
    point = _points.get(site)
    if point is None or point.mode != CORRUPT:
        return payload
    if not _should_trigger(point, tokens):
        return payload
    if not payload:
        return b"\xff"
    body = bytearray(payload)
    body[0] ^= 0xFF
    body[-1] ^= 0xFF
    return bytes(body)


def _noop_inject(site: str, *tokens) -> None:
    return None


def _noop_corrupted(site: str, payload: bytes, *tokens) -> bytes:
    return payload


def _noop_check(site: str, *tokens) -> None:
    return None


#: The live hooks.  Call sites resolve these through the module
#: (``failpoints.inject(...)``) so :func:`hooks_bypassed` can swap in
#: the no-ops for benchmark baselines.
check = _check_impl
inject = _inject_impl
corrupted = _corrupted_impl


@contextmanager
def hooks_bypassed():
    """Rebind the hooks to literal no-ops for the duration of the block.

    The benchmark baseline: the difference between a run under
    ``hooks_bypassed()`` and a normal (unarmed) run is the full cost of
    having failpoint hooks compiled into the hot path at all —
    ``bench_resilience.py`` gates it at <= 2%.
    """
    global check, inject, corrupted
    saved = (check, inject, corrupted)
    check, inject, corrupted = _noop_check, _noop_inject, _noop_corrupted
    try:
        yield
    finally:
        check, inject, corrupted = saved


configure_from_env()
