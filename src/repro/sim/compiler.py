"""Analytic (closed-form) compilation of the zero-skipping schedule.

The scalar schedule walk (:func:`walk_events`) replays every fire/idle/
fetch/write event of :class:`~repro.core.dataflow.ZeroSkippingSchedule`
one Python iteration at a time — O(fires) interpreter work per cold
``(spec, fold)`` pair.  This module derives the same
:class:`CompiledSchedule` *analytically* from the block decomposition:

* Tap ``(kh, kw)`` serves computation mode ``((kh-p) mod s, (kw-p) mod s)``
  (:mod:`repro.deconv.modes`), so in output block ``(by, bx)`` it touches
  output pixel ``(by*s + phase_y, bx*s + phase_x)`` and input pixel
  ``(by - shift_y, bx - shift_x)`` with ``shift = floor((k - p) / s)``.
  Both the in-range conditions and the pixel indices are separable in
  ``y``/``x``, so each tap fires exactly on a *rectangle* of blocks and
  its :class:`TapGroup` index arrays are a row-major meshgrid — no event
  walk needed.
* The counters factorize the same way: per-tap fire counts are products
  of per-axis block counts, write events cover each output pixel exactly
  once, and the per-block distinct-input count (buffer reads) is the
  product of per-axis distinct ``shift`` counts over the live taps.

:func:`compile_schedule` is the cached front door (LRU, capacity from
``RED_SCHEDULE_CACHE`` or :func:`configure_schedule_cache`);
:func:`compile_schedule_via_walk` keeps the scalar walk as the oracle the
analytic path is tested against (``tests/sim/test_compiler.py``), and
the trace replay in :class:`~repro.sim.engine.CycleEngine` still streams
:func:`walk_events` directly.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import ZeroSkippingSchedule
from repro.core.fold import fold_tap_slots
from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError
from repro.utils.validation import check_positive_int

#: Default LRU capacity when ``RED_SCHEDULE_CACHE`` is unset.
DEFAULT_SCHEDULE_CACHE_CAPACITY = 64


@dataclass(frozen=True)
class TapGroup:
    """All fire events of one kernel tap, batched for vector execution.

    Attributes:
        tap: flat tap index ``kh * KW + kw``.
        phys: physical sub-crossbar holding the tap.
        slot: Eq. 2 fold slot of the tap within ``phys``.
        pixels: flat input-pixel index (``ih * IW + iw``) per event.
        outputs: flat output-pixel index (``oy * OW + ox``) per event;
            unique within a group (one block writes one pixel per mode).
    """

    tap: int
    phys: int
    slot: int
    pixels: np.ndarray
    outputs: np.ndarray

    @property
    def nbytes(self) -> int:
        """Memory held by this group's index arrays."""
        return self.pixels.nbytes + self.outputs.nbytes


@dataclass(frozen=True)
class CompiledSchedule:
    """The zero-skipping schedule lowered to flat event arrays.

    Weight-independent: depends only on ``(spec, fold)``, so one compiled
    schedule serves every run over the same layer shape.  Holds only what
    the math and counters need; per-event trace data is never stored here
    — traced runs stream :func:`walk_events` straight into the bounded
    trace ring instead.
    """

    spec: DeconvSpec
    fold: int
    num_slots: int
    cycles: int
    tap_groups: tuple[TapGroup, ...]
    num_fires: int
    sc_idle: int
    buffer_reads: int
    output_pixels: int

    @property
    def nbytes(self) -> int:
        """Memory held by the index arrays (the cache-dominant part)."""
        return sum(group.nbytes for group in self.tap_groups)

    def same_events(self, other: "CompiledSchedule") -> bool:
        """Event-for-event equality: counts, tap-group ordering and the
        row-major pixel/output ordering within every group.

        The canonical analytic-vs-oracle identity check, shared by
        ``tests/sim/test_compiler.py`` and
        ``benchmarks/bench_cycle_compile.py``.
        """
        if (
            self.spec != other.spec
            or self.fold != other.fold
            or self.num_slots != other.num_slots
            or self.cycles != other.cycles
            or self.num_fires != other.num_fires
            or self.sc_idle != other.sc_idle
            or self.buffer_reads != other.buffer_reads
            or self.output_pixels != other.output_pixels
            or len(self.tap_groups) != len(other.tap_groups)
        ):
            return False
        return all(
            mine.tap == theirs.tap
            and mine.phys == theirs.phys
            and mine.slot == theirs.slot
            and np.array_equal(mine.pixels, theirs.pixels)
            and np.array_equal(mine.outputs, theirs.outputs)
            for mine, theirs in zip(self.tap_groups, other.tap_groups)
        )


def walk_events(spec: DeconvSpec, fold: int):
    """Generate the scalar walk's events, one at a time, in exact order.

    Yields ``('fetch', slot, pixel)``, ``('idle', slot, f)``,
    ``('fire', slot, f, n, tap, pixel, target)`` and
    ``('write', slot, (oy, ox, mode))`` — the trace-replay path and the
    oracle the analytic compiler is validated against, without ever
    materializing the full event list.
    """
    schedule = ZeroSkippingSchedule(spec)
    tap_slots = fold_tap_slots(spec, fold)
    tap_mode = {
        kh * spec.kernel_width + kw: idx
        for idx, mode in enumerate(decompose_modes(spec))
        for kh, kw in mode.taps
    }
    for slot_index, slot in enumerate(schedule.cycles()):
        mode_target = {mode: (oy, ox) for oy, ox, mode in slot.outputs}
        for pixel in slot.distinct_inputs:
            yield ("fetch", slot_index, pixel)
        for f in range(fold):
            for n, slots in enumerate(tap_slots):
                tap = slots[f]
                if tap is None:
                    continue
                kh, kw = divmod(tap, spec.kernel_width)
                pixel = slot.assignments.get((kh, kw))
                if pixel is None:
                    yield ("idle", slot_index, f)
                    continue
                target = mode_target.get(tap_mode[tap])
                if target is None:
                    yield ("idle", slot_index, f)
                    continue
                yield ("fire", slot_index, f, n, tap, pixel, target)
        for out in slot.outputs:
            yield ("write", slot_index, out)


def compile_schedule_via_walk(spec: DeconvSpec, fold: int) -> CompiledSchedule:
    """Lower the schedule by replaying the scalar event walk (the oracle).

    O(fires) Python iterations — kept uncached as the reference the
    analytic :func:`compile_schedule` path is gated against, both in
    ``tests/sim/test_compiler.py`` and in
    ``benchmarks/bench_cycle_compile.py``.
    """
    iw, ow = spec.input_width, spec.output_width
    per_tap: dict[int, tuple[int, int, list[int], list[int]]] = {}
    num_fires = 0
    buffer_reads = 0
    output_pixels = 0
    sc_idle = 0
    for event in walk_events(spec, fold):
        kind = event[0]
        if kind == "fire":
            _, _slot, f, n, tap, pixel, target = event
            entry = per_tap.setdefault(tap, (n, f, [], []))
            entry[2].append(pixel[0] * iw + pixel[1])
            entry[3].append(target[0] * ow + target[1])
            num_fires += 1
        elif kind == "fetch":
            buffer_reads += 1
        elif kind == "idle":
            sc_idle += 1
        else:
            output_pixels += 1
    blocks_y, blocks_x = ZeroSkippingSchedule(spec).num_blocks
    num_slots = blocks_y * blocks_x
    return CompiledSchedule(
        spec=spec,
        fold=fold,
        num_slots=num_slots,
        cycles=num_slots * fold,
        tap_groups=tuple(
            TapGroup(
                tap=tap,
                phys=n,
                slot=f,
                pixels=np.asarray(pixels, dtype=np.intp),
                outputs=np.asarray(outputs, dtype=np.intp),
            )
            for tap, (n, f, pixels, outputs) in sorted(per_tap.items())
        ),
        num_fires=num_fires,
        sc_idle=sc_idle,
        buffer_reads=buffer_reads,
        output_pixels=output_pixels,
    )


@dataclass(frozen=True)
class _AxisGeometry:
    """Per-axis (y or x) tap geometry of the block decomposition.

    For kernel coordinate ``k`` along one axis: ``phase[k]`` is the output
    residue the tap serves, ``shift[k] = floor((k - p) / s)`` maps block
    index ``b`` to input coordinate ``b - shift[k]``, and
    ``[lo[k], hi[k])`` is the (possibly empty) live block range where both
    the output pixel and the input pixel are in bounds.  ``reads_total``
    is ``sum_b |{shift[k] : k live at b}|`` — the per-axis factor of the
    distinct-input (buffer read) count.
    """

    phase: np.ndarray
    shift: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    counts: np.ndarray
    num_blocks: int
    reads_total: int


def _axis_geometry(kernel: int, pad: int, stride: int, in_size: int, out_size: int) -> _AxisGeometry:
    """Solve one axis of the block decomposition in closed form."""
    num_blocks = -(-out_size // stride)
    k = np.arange(kernel)
    phase = (k - pad) % stride
    shift = (k - pad) // stride
    # Output in range: b * s + phase <= out_size - 1.
    out_hi = np.where(phase < out_size, (out_size - 1 - phase) // stride + 1, 0)
    # Input in range: 0 <= b - shift < in_size.
    lo = np.maximum(0, shift)
    hi = np.minimum(np.minimum(num_blocks, shift + in_size), out_hi)
    counts = np.maximum(0, hi - lo)
    # Distinct shift values over the live taps of each block, summed over
    # blocks: the axis factor of the buffer-read count (live taps — and
    # hence live input coordinates — form a product set across axes).
    blocks = np.arange(num_blocks)
    live = (blocks[:, None] >= lo[None, :]) & (blocks[:, None] < hi[None, :])
    reads = np.zeros(num_blocks, dtype=np.int64)
    for value in np.unique(shift):
        reads += live[:, shift == value].any(axis=1)
    return _AxisGeometry(
        phase=phase,
        shift=shift,
        lo=lo,
        hi=hi,
        counts=counts,
        num_blocks=num_blocks,
        reads_total=int(reads.sum()),
    )


def build_compiled_schedule(spec: DeconvSpec, fold: int) -> CompiledSchedule:
    """Derive the compiled schedule analytically (uncached).

    Event-for-event identical to :func:`compile_schedule_via_walk` —
    same tap-group ordering, same row-major pixel/output ordering within
    each group, same counter values — but built from meshgrid index
    arithmetic in O(taps) NumPy calls instead of O(fires) Python
    iterations.
    """
    check_positive_int(fold, "fold")
    s = spec.stride
    iw, ow = spec.input_width, spec.output_width
    ys = _axis_geometry(spec.kernel_height, spec.padding, s, spec.input_height, spec.output_height)
    xs = _axis_geometry(spec.kernel_width, spec.padding, s, spec.input_width, spec.output_width)

    tap_place = {
        tap: (n, f)
        for n, slots in enumerate(fold_tap_slots(spec, fold))
        for f, tap in enumerate(slots)
        if tap is not None
    }
    groups: list[TapGroup] = []
    for kh in range(spec.kernel_height):
        ny = int(ys.counts[kh])
        if ny == 0:
            continue
        by = np.arange(ys.lo[kh], ys.hi[kh])
        ih_rows = ((by - ys.shift[kh]) * iw)[:, None]
        oy_rows = ((by * s + ys.phase[kh]) * ow)[:, None]
        for kw in range(spec.kernel_width):
            if xs.counts[kw] == 0:
                continue
            tap = kh * spec.kernel_width + kw
            bx = np.arange(xs.lo[kw], xs.hi[kw])
            n, f = tap_place[tap]
            groups.append(
                TapGroup(
                    tap=tap,
                    phys=n,
                    slot=f,
                    pixels=(ih_rows + (bx - xs.shift[kw])[None, :]).ravel().astype(np.intp, copy=False),
                    outputs=(oy_rows + (bx * s + xs.phase[kw])[None, :]).ravel().astype(np.intp, copy=False),
                )
            )
    num_slots = ys.num_blocks * xs.num_blocks
    num_fires = int(ys.counts.sum() * xs.counts.sum())
    return CompiledSchedule(
        spec=spec,
        fold=fold,
        num_slots=num_slots,
        cycles=num_slots * fold,
        tap_groups=tuple(groups),
        num_fires=num_fires,
        # Every (slot, occupied fold-slot) pair either fires or idles.
        sc_idle=num_slots * spec.num_kernel_taps - num_fires,
        buffer_reads=ys.reads_total * xs.reads_total,
        # The schedule writes each output pixel exactly once
        # (ZeroSkippingSchedule.coverage_check).
        output_pixels=spec.num_output_pixels,
    )


# ----------------------------------------------------------------------
# Cached front door
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleCacheEntry:
    """One resident compiled schedule: its key plus memory footprint."""

    spec: DeconvSpec
    fold: int
    nbytes: int


@dataclass(frozen=True)
class ScheduleCacheInfo:
    """Snapshot of the compiled-schedule LRU (hits/misses/footprint).

    ``entries`` are ordered least- to most-recently used, each carrying
    the index-array footprint of its schedule, so long-lived sweep
    processes can see exactly what :func:`clear_compiled_schedules`
    would release.
    """

    hits: int
    misses: int
    capacity: int
    entries: tuple[ScheduleCacheEntry, ...]

    @property
    def size(self) -> int:
        """Resident entry count."""
        return len(self.entries)

    @property
    def total_nbytes(self) -> int:
        """Total index-array memory held by the cache."""
        return sum(entry.nbytes for entry in self.entries)


_cache_lock = threading.Lock()
_cache: OrderedDict[tuple[DeconvSpec, int], CompiledSchedule] = OrderedDict()
_cache_hits = 0
_cache_misses = 0
_cache_capacity: int | None = None  # lazily resolved from the environment


def _resolve_capacity() -> int:
    """Capacity from ``RED_SCHEDULE_CACHE`` (default 64); validated."""
    raw = os.environ.get("RED_SCHEDULE_CACHE", "").strip()
    if not raw:
        return DEFAULT_SCHEDULE_CACHE_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ParameterError(
            f"RED_SCHEDULE_CACHE must be a positive integer, got {raw!r}"
        ) from None
    check_positive_int(capacity, "RED_SCHEDULE_CACHE")
    return capacity


def configure_schedule_cache(capacity: int | None = None) -> int:
    """Set the compiled-schedule LRU capacity (keyword path).

    Args:
        capacity: new capacity (>= 1), or ``None`` to re-read the
            ``RED_SCHEDULE_CACHE`` environment variable (default
            ``64``).  Shrinking evicts least-recently-used entries.

    Returns:
        The capacity now in effect.
    """
    global _cache_capacity
    if capacity is not None:
        check_positive_int(capacity, "capacity")
    with _cache_lock:
        _cache_capacity = capacity if capacity is not None else _resolve_capacity()
        while len(_cache) > _cache_capacity:
            _cache.popitem(last=False)
        return _cache_capacity


def compile_schedule(spec: DeconvSpec, fold: int) -> CompiledSchedule:
    """Analytically compile (LRU-cached per ``(spec, fold)``).

    A compiled schedule's index arrays scale with the layer's fire-event
    count, so long-lived processes sweeping many large distinct shapes
    can bound residency via ``RED_SCHEDULE_CACHE`` /
    :func:`configure_schedule_cache` or release everything with
    :func:`clear_compiled_schedules`; :func:`schedule_cache_info` shows
    the per-entry footprint.
    """
    global _cache_hits, _cache_misses, _cache_capacity
    key = (spec, fold)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return cached
        _cache_misses += 1
        if _cache_capacity is None:
            _cache_capacity = _resolve_capacity()
    compiled = build_compiled_schedule(spec, fold)
    with _cache_lock:
        _cache[key] = compiled
        _cache.move_to_end(key)
        while len(_cache) > _cache_capacity:
            _cache.popitem(last=False)
    return compiled


def schedule_cache_info() -> ScheduleCacheInfo:
    """Hits, misses, capacity and per-entry memory of the schedule LRU."""
    with _cache_lock:
        capacity = _cache_capacity if _cache_capacity is not None else _resolve_capacity()
        return ScheduleCacheInfo(
            hits=_cache_hits,
            misses=_cache_misses,
            capacity=capacity,
            entries=tuple(
                ScheduleCacheEntry(spec=spec, fold=fold, nbytes=compiled.nbytes)
                for (spec, fold), compiled in _cache.items()
            ),
        )


def clear_compiled_schedules() -> None:
    """Release every cached compiled schedule (memory pressure valve)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0
