"""Instrumented cycle-level execution of the RED schedule.

:class:`CycleEngine` replays the zero-skipping schedule against a (folded)
sub-crossbar tensor while recording a :class:`Trace` and a
:class:`CounterSet` — the observable the performance model's closed-form
counts are validated against (``tests/integration``).  The arithmetic is
identical to :meth:`repro.core.red_design.REDDesign.run_cycle_accurate`;
this engine adds observability rather than a second semantics.

The schedule is *compiled* once per ``(spec, fold)`` pair into flat NumPy
index arrays by the analytic compiler (:mod:`repro.sim.compiler` —
closed-form meshgrid construction, LRU-cached, no Python event walk) and
the MAC accumulation is executed as one batched matmul per kernel tap
instead of one Python-level matvec per (round, fold, sub-crossbar) event.
With tracing disabled (``trace_limit=0`` — the
:class:`~repro.sim.batch.BatchEngine` hot path), runs never touch the
scalar walk at all; a traced run still streams one scalar walk
(:func:`~repro.sim.compiler.walk_events`) per call into its bounded
event ring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fold import fold_sct
from repro.core.mapping import build_sct
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.sim.compiler import (  # noqa: F401  (re-exported compatibility surface)
    CompiledSchedule,
    TapGroup,
    clear_compiled_schedules,
    compile_schedule,
    configure_schedule_cache,
    schedule_cache_info,
    walk_events,
)
from repro.sim.counters import CounterSet
from repro.sim.trace import Trace


@dataclass
class InstrumentedRun:
    """Output of an engine run: values plus observability artifacts."""

    output: np.ndarray
    cycles: int
    counters: CounterSet
    trace: Trace


def counters_from_schedule(compiled: CompiledSchedule) -> CounterSet:
    """The activity counters a run over ``compiled`` tallies.

    Only counters that fired are materialized, matching the event-driven
    accounting (a key exists iff at least one event occurred).  Shared by
    :class:`CycleEngine` and the fused
    :class:`~repro.sim.batch.BatchEngine` executor.
    """
    c = compiled.spec.in_channels
    counters = CounterSet()
    for name, value in (
        ("buffer_reads", compiled.buffer_reads),
        ("sc_fire", compiled.num_fires),
        ("live_rows", compiled.num_fires * c),
        ("sc_idle", compiled.sc_idle),
        ("output_pixels", compiled.output_pixels),
    ):
        if value:
            counters.add(name, value)
    return counters


class CycleEngine:
    """Replays the RED schedule with tracing enabled.

    Args:
        spec: layer specification.
        fold: Eq. 2 interleave factor.
        trace_limit: maximum retained trace events; ``0`` disables trace
            replay entirely (counters are unaffected), which is what the
            batch engine uses on its hot path.  A non-zero limit replays
            one scalar schedule walk per ``run`` call to populate the
            ring — pass ``0`` when you don't read the trace.
    """

    def __init__(self, spec: DeconvSpec, fold: int = 1, trace_limit: int = 100_000) -> None:
        self.spec = spec
        self.fold = fold
        self.trace_limit = trace_limit

    def run(self, x: np.ndarray, w: np.ndarray) -> InstrumentedRun:
        """Execute the layer through the compiled, batched schedule."""
        spec = self.spec
        if tuple(x.shape) != spec.input_shape:
            raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
        if tuple(w.shape) != spec.kernel_shape:
            raise ShapeError(f"kernel shape {w.shape} != spec {spec.kernel_shape}")
        compiled = compile_schedule(spec, self.fold)
        folded = fold_sct(build_sct(w.astype(np.float64, copy=False), spec), self.fold)
        c = spec.in_channels
        oh, ow, m = spec.output_shape
        x_rows = np.ascontiguousarray(
            x.astype(np.float64, copy=False).reshape(-1, c)
        )
        out_flat = np.zeros((oh * ow, m), dtype=np.float64)
        for group in compiled.tap_groups:
            segment = folded.data[group.slot * c : (group.slot + 1) * c, :, group.phys]
            # Output pixels are unique within a tap group, so a fancy-index
            # accumulate is exact (no np.add.at needed).
            out_flat[group.outputs] += x_rows[group.pixels] @ segment
        trace = Trace(max_events=self.trace_limit)
        if self.trace_limit > 0:
            self._replay_trace(compiled, trace)
        return InstrumentedRun(
            output=out_flat.reshape(oh, ow, m),
            cycles=compiled.cycles,
            counters=counters_from_schedule(compiled),
            trace=trace,
        )

    def _replay_trace(self, compiled: CompiledSchedule, trace: Trace) -> None:
        """Re-emit the per-slot event interleaving of the scalar walk.

        Streams :func:`~repro.sim.compiler.walk_events` directly into the
        bounded trace ring, so memory stays capped at ``trace_limit``
        regardless of layer size (the old scalar engine's behavior).
        """
        fold = compiled.fold
        for event in walk_events(compiled.spec, fold):
            kind = event[0]
            base = event[1] * fold
            if kind == "fetch":
                trace.record(base, "input_fetch", event[2])
            elif kind == "fire":
                _, _slot, f, n, tap, pixel, _target = event
                trace.record(base + f, "sc_fire", (n, f, tap, pixel[0], pixel[1]))
            elif kind == "write":
                trace.record(base + fold - 1, "output_write", event[2])
