"""Instrumented cycle-level execution of the RED schedule.

:class:`CycleEngine` replays the zero-skipping schedule against a (folded)
sub-crossbar tensor while recording a :class:`Trace` and a
:class:`CounterSet` — the observable the performance model's closed-form
counts are validated against (``tests/integration``).  The arithmetic is
identical to :meth:`repro.core.red_design.REDDesign.run_cycle_accurate`;
this engine adds observability rather than a second semantics.

The schedule walk is *compiled* once per ``(spec, fold)`` pair into flat
NumPy index arrays (:func:`compile_schedule`, LRU-cached) and the MAC
accumulation is executed as one batched matmul per kernel tap instead of
one Python-level matvec per (round, fold, sub-crossbar) event.  With
tracing disabled (``trace_limit=0`` — the
:class:`~repro.sim.batch.BatchEngine` hot path), repeated runs over the
same layer shape skip the Python walk entirely; a traced run still
streams one scalar walk per call into its bounded event ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.dataflow import ZeroSkippingSchedule
from repro.core.fold import fold_sct, fold_tap_slots
from repro.core.mapping import build_sct
from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.sim.counters import CounterSet
from repro.sim.trace import Trace


@dataclass(frozen=True)
class TapGroup:
    """All fire events of one kernel tap, batched for vector execution.

    Attributes:
        tap: flat tap index ``kh * KW + kw``.
        phys: physical sub-crossbar holding the tap.
        slot: Eq. 2 fold slot of the tap within ``phys``.
        pixels: flat input-pixel index (``ih * IW + iw``) per event.
        outputs: flat output-pixel index (``oy * OW + ox``) per event;
            unique within a group (one block writes one pixel per mode).
    """

    tap: int
    phys: int
    slot: int
    pixels: np.ndarray
    outputs: np.ndarray


@dataclass(frozen=True)
class CompiledSchedule:
    """The zero-skipping schedule lowered to flat event arrays.

    Weight-independent: depends only on ``(spec, fold)``, so one compiled
    schedule serves every run over the same layer shape.  Holds only what
    the math and counters need; per-event trace data is never stored here
    — traced runs stream :func:`_walk_events` straight into the bounded
    trace ring instead.
    """

    spec: DeconvSpec
    fold: int
    num_slots: int
    cycles: int
    tap_groups: tuple[TapGroup, ...]
    num_fires: int
    sc_idle: int
    buffer_reads: int
    output_pixels: int


def _walk_events(spec: DeconvSpec, fold: int):
    """Generate the scalar walk's events, one at a time, in exact order.

    Yields ``('fetch', slot, pixel)``, ``('idle', slot, f)``,
    ``('fire', slot, f, n, tap, pixel, target)`` and
    ``('write', slot, (oy, ox, mode))`` — the single source of truth both
    for schedule compilation and for trace replay, without ever
    materializing the full event list.
    """
    schedule = ZeroSkippingSchedule(spec)
    tap_slots = fold_tap_slots(spec, fold)
    tap_mode = {
        kh * spec.kernel_width + kw: idx
        for idx, mode in enumerate(decompose_modes(spec))
        for kh, kw in mode.taps
    }
    for slot_index, slot in enumerate(schedule.cycles()):
        mode_target = {mode: (oy, ox) for oy, ox, mode in slot.outputs}
        for pixel in slot.distinct_inputs:
            yield ("fetch", slot_index, pixel)
        for f in range(fold):
            for n, slots in enumerate(tap_slots):
                tap = slots[f]
                if tap is None:
                    continue
                kh, kw = divmod(tap, spec.kernel_width)
                pixel = slot.assignments.get((kh, kw))
                if pixel is None:
                    yield ("idle", slot_index, f)
                    continue
                target = mode_target.get(tap_mode[tap])
                if target is None:
                    yield ("idle", slot_index, f)
                    continue
                yield ("fire", slot_index, f, n, tap, pixel, target)
        for out in slot.outputs:
            yield ("write", slot_index, out)


@lru_cache(maxsize=64)
def compile_schedule(spec: DeconvSpec, fold: int) -> CompiledSchedule:
    """Lower the schedule to batched index arrays (math + counters only).

    Cached per ``(spec, fold)``; a compiled schedule's index arrays scale
    with the layer's fire-event count, so long-lived processes sweeping
    many large distinct shapes can call :func:`clear_compiled_schedules`
    to release them.
    """
    iw, ow = spec.input_width, spec.output_width
    per_tap: dict[int, tuple[int, int, list[int], list[int]]] = {}
    num_fires = 0
    buffer_reads = 0
    output_pixels = 0
    sc_idle = 0
    for event in _walk_events(spec, fold):
        kind = event[0]
        if kind == "fire":
            _, _slot, f, n, tap, pixel, target = event
            entry = per_tap.setdefault(tap, (n, f, [], []))
            entry[2].append(pixel[0] * iw + pixel[1])
            entry[3].append(target[0] * ow + target[1])
            num_fires += 1
        elif kind == "fetch":
            buffer_reads += 1
        elif kind == "idle":
            sc_idle += 1
        else:
            output_pixels += 1
    blocks_y, blocks_x = ZeroSkippingSchedule(spec).num_blocks
    num_slots = blocks_y * blocks_x
    return CompiledSchedule(
        spec=spec,
        fold=fold,
        num_slots=num_slots,
        cycles=num_slots * fold,
        tap_groups=tuple(
            TapGroup(
                tap=tap,
                phys=n,
                slot=f,
                pixels=np.asarray(pixels, dtype=np.intp),
                outputs=np.asarray(outputs, dtype=np.intp),
            )
            for tap, (n, f, pixels, outputs) in sorted(per_tap.items())
        ),
        num_fires=num_fires,
        sc_idle=sc_idle,
        buffer_reads=buffer_reads,
        output_pixels=output_pixels,
    )


def clear_compiled_schedules() -> None:
    """Release every cached compiled schedule (memory pressure valve)."""
    compile_schedule.cache_clear()


@dataclass
class InstrumentedRun:
    """Output of an engine run: values plus observability artifacts."""

    output: np.ndarray
    cycles: int
    counters: CounterSet
    trace: Trace


class CycleEngine:
    """Replays the RED schedule with tracing enabled.

    Args:
        spec: layer specification.
        fold: Eq. 2 interleave factor.
        trace_limit: maximum retained trace events; ``0`` disables trace
            replay entirely (counters are unaffected), which is what the
            batch engine uses on its hot path.  A non-zero limit replays
            one scalar schedule walk per ``run`` call to populate the
            ring — pass ``0`` when you don't read the trace.
    """

    def __init__(self, spec: DeconvSpec, fold: int = 1, trace_limit: int = 100_000) -> None:
        self.spec = spec
        self.fold = fold
        self.trace_limit = trace_limit

    def run(self, x: np.ndarray, w: np.ndarray) -> InstrumentedRun:
        """Execute the layer through the compiled, batched schedule."""
        spec = self.spec
        if tuple(x.shape) != spec.input_shape:
            raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
        if tuple(w.shape) != spec.kernel_shape:
            raise ShapeError(f"kernel shape {w.shape} != spec {spec.kernel_shape}")
        compiled = compile_schedule(spec, self.fold)
        folded = fold_sct(build_sct(w.astype(np.float64, copy=False), spec), self.fold)
        c = spec.in_channels
        oh, ow, m = spec.output_shape
        x_rows = np.ascontiguousarray(
            x.astype(np.float64, copy=False).reshape(-1, c)
        )
        out_flat = np.zeros((oh * ow, m), dtype=np.float64)
        for group in compiled.tap_groups:
            segment = folded.data[group.slot * c : (group.slot + 1) * c, :, group.phys]
            # Output pixels are unique within a tap group, so a fancy-index
            # accumulate is exact (no np.add.at needed).
            out_flat[group.outputs] += x_rows[group.pixels] @ segment
        counters = CounterSet()
        # Only materialize counters that fired, matching the event-driven
        # accounting (a key exists iff at least one event occurred).
        for name, value in (
            ("buffer_reads", compiled.buffer_reads),
            ("sc_fire", compiled.num_fires),
            ("live_rows", compiled.num_fires * c),
            ("sc_idle", compiled.sc_idle),
            ("output_pixels", compiled.output_pixels),
        ):
            if value:
                counters.add(name, value)
        trace = Trace(max_events=self.trace_limit)
        if self.trace_limit > 0:
            self._replay_trace(compiled, trace)
        return InstrumentedRun(
            output=out_flat.reshape(oh, ow, m),
            cycles=compiled.cycles,
            counters=counters,
            trace=trace,
        )

    def _replay_trace(self, compiled: CompiledSchedule, trace: Trace) -> None:
        """Re-emit the per-slot event interleaving of the scalar walk.

        Streams :func:`_walk_events` directly into the bounded trace ring,
        so memory stays capped at ``trace_limit`` regardless of layer size
        (the old scalar engine's behavior).
        """
        fold = compiled.fold
        for event in _walk_events(compiled.spec, fold):
            kind = event[0]
            base = event[1] * fold
            if kind == "fetch":
                trace.record(base, "input_fetch", event[2])
            elif kind == "fire":
                _, _slot, f, n, tap, pixel, _target = event
                trace.record(base + f, "sc_fire", (n, f, tap, pixel[0], pixel[1]))
            elif kind == "write":
                trace.record(base + fold - 1, "output_write", event[2])
