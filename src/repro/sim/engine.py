"""Instrumented cycle-level execution of the RED schedule.

:class:`CycleEngine` replays the zero-skipping schedule against a (folded)
sub-crossbar tensor while recording a :class:`Trace` and a
:class:`CounterSet` — the observable the performance model's closed-form
counts are validated against (``tests/integration``).  The arithmetic is
identical to :meth:`repro.core.red_design.REDDesign.run_cycle_accurate`;
this engine adds observability rather than a second semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import ZeroSkippingSchedule
from repro.core.fold import fold_sct
from repro.core.mapping import build_sct
from repro.deconv.modes import decompose_modes
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.sim.counters import CounterSet
from repro.sim.trace import Trace


@dataclass
class InstrumentedRun:
    """Output of an engine run: values plus observability artifacts."""

    output: np.ndarray
    cycles: int
    counters: CounterSet
    trace: Trace


class CycleEngine:
    """Replays the RED schedule with tracing enabled.

    Args:
        spec: layer specification.
        fold: Eq. 2 interleave factor.
        trace_limit: maximum retained trace events.
    """

    def __init__(self, spec: DeconvSpec, fold: int = 1, trace_limit: int = 100_000) -> None:
        self.spec = spec
        self.fold = fold
        self.schedule = ZeroSkippingSchedule(spec)
        self.trace_limit = trace_limit

    def run(self, x: np.ndarray, w: np.ndarray) -> InstrumentedRun:
        """Execute the layer, recording per-cycle events."""
        spec = self.spec
        if tuple(x.shape) != spec.input_shape:
            raise ShapeError(f"input shape {x.shape} != spec {spec.input_shape}")
        if tuple(w.shape) != spec.kernel_shape:
            raise ShapeError(f"kernel shape {w.shape} != spec {spec.kernel_shape}")
        folded = fold_sct(build_sct(w.astype(np.float64, copy=False), spec), self.fold)
        modes = decompose_modes(spec)
        tap_mode = {
            kh * spec.kernel_width + kw: idx
            for idx, mode in enumerate(modes)
            for kh, kw in mode.taps
        }
        c = spec.in_channels
        out = np.zeros(spec.output_shape, dtype=np.float64)
        counters = CounterSet()
        trace = Trace(max_events=self.trace_limit)
        cycle_index = 0
        for slot in self.schedule.cycles():
            mode_target = {mode: (oy, ox) for oy, ox, mode in slot.outputs}
            for pixel in slot.distinct_inputs:
                trace.record(cycle_index, "input_fetch", pixel)
                counters.add("buffer_reads")
            for f in range(self.fold):
                for n, slots in enumerate(folded.tap_slots):
                    tap = slots[f]
                    if tap is None:
                        continue
                    kh, kw = divmod(tap, spec.kernel_width)
                    pixel = slot.assignments.get((kh, kw))
                    if pixel is None:
                        counters.add("sc_idle")
                        continue
                    target = mode_target.get(tap_mode[tap])
                    if target is None:
                        counters.add("sc_idle")
                        continue
                    vector = np.zeros(folded.rows_per_sc, dtype=np.float64)
                    vector[f * c : (f + 1) * c] = x[pixel[0], pixel[1], :]
                    out[target[0], target[1], :] += vector @ folded.data[:, :, n]
                    counters.add("sc_fire")
                    counters.add("live_rows", c)
                    trace.record(cycle_index, "sc_fire", (n, f, tap, *pixel))
                cycle_index += 1
            for oy, ox, mode in slot.outputs:
                trace.record(cycle_index - 1, "output_write", (oy, ox, mode))
                counters.add("output_pixels")
        return InstrumentedRun(
            output=out, cycles=cycle_index, counters=counters, trace=trace
        )
