"""Cycle-level simulation utilities: counters, traces, instrumented runs,
the analytic schedule compiler and the fused multi-job engine."""

from repro.sim.batch import BatchEngine, BatchJob, BatchJobResult, BatchResult
from repro.sim.compiler import (
    CompiledSchedule,
    ScheduleCacheEntry,
    ScheduleCacheInfo,
    TapGroup,
    build_compiled_schedule,
    clear_compiled_schedules,
    compile_schedule,
    compile_schedule_via_walk,
    configure_schedule_cache,
    schedule_cache_info,
    walk_events,
)
from repro.sim.counters import CounterSet
from repro.sim.engine import CycleEngine, InstrumentedRun, counters_from_schedule
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "CounterSet",
    "Trace",
    "TraceEvent",
    "CompiledSchedule",
    "TapGroup",
    "ScheduleCacheEntry",
    "ScheduleCacheInfo",
    "CycleEngine",
    "InstrumentedRun",
    "build_compiled_schedule",
    "clear_compiled_schedules",
    "compile_schedule",
    "compile_schedule_via_walk",
    "configure_schedule_cache",
    "counters_from_schedule",
    "schedule_cache_info",
    "walk_events",
    "BatchEngine",
    "BatchJob",
    "BatchJobResult",
    "BatchResult",
]
