"""Cycle-level simulation utilities: counters, traces, instrumented runs,
and the batched multi-job engine."""

from repro.sim.counters import CounterSet
from repro.sim.trace import Trace, TraceEvent
from repro.sim.engine import (
    CompiledSchedule,
    CycleEngine,
    InstrumentedRun,
    clear_compiled_schedules,
    compile_schedule,
)
from repro.sim.batch import BatchEngine, BatchJob, BatchJobResult, BatchResult

__all__ = [
    "CounterSet",
    "Trace",
    "TraceEvent",
    "CompiledSchedule",
    "CycleEngine",
    "InstrumentedRun",
    "clear_compiled_schedules",
    "compile_schedule",
    "BatchEngine",
    "BatchJob",
    "BatchJobResult",
    "BatchResult",
]
