"""Cycle-level simulation utilities: counters, traces, instrumented runs."""

from repro.sim.counters import CounterSet
from repro.sim.trace import Trace, TraceEvent
from repro.sim.engine import CycleEngine, InstrumentedRun

__all__ = ["CounterSet", "Trace", "TraceEvent", "CycleEngine", "InstrumentedRun"]
