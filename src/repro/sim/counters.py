"""Named activity counters shared by the simulators."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class CounterSet:
    """A bag of named monotonically-increasing integer counters.

    Used by the cycle engine to tally activity (sub-crossbar operations,
    buffer reads, conversions) that the performance model cross-checks
    against its closed-form counts.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def merge(self, other: "CounterSet") -> None:
        """Add every counter of ``other`` into this set."""
        for name, value in other._counts.items():
            self._counts[name] += value

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CounterSet({inner})"
