"""Execution tracing for cycle-level runs.

A :class:`Trace` records :class:`TraceEvent` entries (bounded, oldest
dropped) describing what happened each cycle — which sub-crossbars fired,
which input pixels were fetched, which outputs were produced.  Used by the
debugging example and the schedule-equivalence tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes:
        cycle: compute round index.
        kind: event category, e.g. ``"sc_fire"``, ``"input_fetch"``,
            ``"output_write"``.
        detail: free-form payload (tap indices, pixel coordinates, ...).
    """

    cycle: int
    kind: str
    detail: tuple

    def __str__(self) -> str:
        return f"[{self.cycle:>6}] {self.kind}: {self.detail}"


@dataclass
class Trace:
    """Bounded event log."""

    max_events: int = 100_000
    _events: deque = field(default_factory=deque, repr=False)

    def record(self, cycle: int, kind: str, detail: Iterable) -> None:
        """Append an event, evicting the oldest when full.

        A non-positive ``max_events`` disables recording entirely.
        """
        if self.max_events <= 0:
            return
        if len(self._events) >= self.max_events:
            self._events.popleft()
        self._events.append(TraceEvent(cycle=cycle, kind=kind, detail=tuple(detail)))

    def events(self, kind: str | None = None) -> Iterator[TraceEvent]:
        """Iterate events, optionally filtered by ``kind``."""
        for event in self._events:
            if kind is None or event.kind == kind:
                yield event

    def count(self, kind: str | None = None) -> int:
        """Number of (matching) events."""
        return sum(1 for _ in self.events(kind))

    def __len__(self) -> int:
        return len(self._events)
