"""Batched cycle-level simulation of many ``(spec, fold)`` jobs.

Sweeps and benchmarks evaluate dozens of layer shapes, often many jobs
over the *same* shape (seeds, batch elements, Monte-Carlo operands).
:class:`BatchEngine` therefore executes jobs **fused by schedule**: jobs
sharing a ``(spec, fold)`` pair are grouped, their operands stacked into
one ``(B, pixels, C)`` tensor, and every kernel-tap group of the
analytically compiled schedule (:mod:`repro.sim.compiler`) runs as one
batched matmul across the whole group, accumulating into a pooled
``(B, OH*OW, M)`` output arena.  Python-level work per group is O(taps),
not O(jobs x taps).

The fused float64 path is *bit-identical* to running each job through
:class:`~repro.sim.engine.CycleEngine` by hand — same compiled schedule,
same per-tap GEMMs and accumulation order — which
``tests/sim/test_batch_engine.py`` and
``benchmarks/bench_cycle_compile.py`` assert exactly.  Throughput-bound
sweeps can opt into ``dtype=np.float32`` execution (tolerance-tested,
not bit-identical).  Requesting a per-job trace (``trace_limit > 0``)
falls back to per-job engine runs, since traces are inherently per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fold import resolve_fold
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError, ShapeError
from repro.sim.counters import CounterSet
from repro.sim.engine import CycleEngine, compile_schedule, counters_from_schedule


@dataclass(frozen=True)
class BatchJob:
    """One layer execution request.

    Attributes:
        spec: layer specification.
        fold: Eq. 2 interleave factor, or ``'auto'`` for the area-capped
            choice (same rule as :class:`~repro.core.red_design.REDDesign`).
        seed: RNG seed used to synthesize operands when none are supplied.
        label: free-form tag carried through to the result.
    """

    spec: DeconvSpec
    fold: int | str = 1
    seed: int = 0
    label: str = ""

    def resolved_fold(self, max_sub_crossbars: int = 128) -> int:
        """The concrete fold this job runs with (shared resolution rule)."""
        return resolve_fold(self.spec, self.fold, max_sub_crossbars)


@dataclass
class BatchJobResult:
    """Output of one job within a batch."""

    job: BatchJob
    fold: int
    output: np.ndarray
    cycles: int
    counters: dict[str, int]


@dataclass
class BatchResult:
    """Per-job results plus batch-level aggregate statistics."""

    results: list[BatchJobResult] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.results)

    @property
    def total_cycles(self) -> int:
        """Sum of compute rounds over every job."""
        return sum(r.cycles for r in self.results)

    def merged_counters(self) -> CounterSet:
        """All per-job activity counters summed into one set."""
        merged = CounterSet()
        for result in self.results:
            for name, value in result.counters.items():
                merged.add(name, value)
        return merged

    def group_sizes(self) -> dict[tuple[DeconvSpec, int], int]:
        """Job count per fused ``(spec, fold)`` execution group."""
        sizes: dict[tuple[DeconvSpec, int], int] = {}
        for result in self.results:
            key = (result.job.spec, result.fold)
            sizes[key] = sizes.get(key, 0) + 1
        return sizes

    def summary(self) -> dict[str, object]:
        """Aggregate statistics for reports and benchmarks.

        Besides the counter roll-ups, reports the grouping efficiency of
        the fused executor: the resolved-fold distribution, the number of
        distinct ``(spec, fold)`` groups and their per-group job counts
        (descending — a single large group means maximal fusion).
        """
        counters = self.merged_counters()
        jobs = max(self.num_jobs, 1)
        folds: dict[int, int] = {}
        for result in self.results:
            folds[result.fold] = folds.get(result.fold, 0) + 1
        sizes = sorted(self.group_sizes().values(), reverse=True)
        return {
            "jobs": self.num_jobs,
            "total_cycles": self.total_cycles,
            "mean_cycles_per_job": self.total_cycles / jobs,
            "sc_fires": counters.get("sc_fire"),
            "buffer_reads": counters.get("buffer_reads"),
            "live_rows": counters.get("live_rows"),
            "output_pixels": counters.get("output_pixels"),
            "fold_distribution": dict(sorted(folds.items())),
            "num_groups": len(sizes),
            "group_sizes": sizes,
            "mean_jobs_per_group": self.num_jobs / max(len(sizes), 1),
        }


class BatchEngine:
    """Run many jobs through the cycle engine with shared compilation.

    Args:
        max_sub_crossbars: SC budget used to resolve ``fold='auto'``.
        trace_limit: per-job trace budget; the default ``0`` takes the
            fused cross-job path (counters are still exact).  A non-zero
            limit runs jobs one at a time through a traced
            :class:`~repro.sim.engine.CycleEngine`.
        dtype: execution dtype of the fused path.  ``np.float64`` (the
            default) is bit-identical to per-job engine runs;
            ``np.float32`` halves memory traffic for throughput-bound
            sweeps at standard single-precision tolerance.  Combining a
            non-float64 dtype with tracing is rejected rather than
            silently ignored.
    """

    def __init__(
        self,
        max_sub_crossbars: int = 128,
        trace_limit: int = 0,
        dtype: np.dtype | str = np.float64,
    ) -> None:
        self.max_sub_crossbars = max_sub_crossbars
        self.trace_limit = trace_limit
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ParameterError(f"dtype must be a float dtype, got {self.dtype}")
        if trace_limit > 0 and self.dtype != np.float64:
            raise ParameterError(
                "dtype overrides apply to the fused path only; the traced "
                f"per-job fallback (trace_limit={trace_limit}) always runs "
                "float64"
            )

    def operands_for(self, job: BatchJob) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic synthetic operands for a job (seeded normal)."""
        rng = np.random.default_rng(job.seed)
        x = rng.normal(size=job.spec.input_shape)
        w = rng.normal(size=job.spec.kernel_shape)
        return x, w

    def run(
        self,
        jobs: list[BatchJob] | tuple[BatchJob, ...],
        operands: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> BatchResult:
        """Execute every job and collect the batch result (in job order).

        Args:
            jobs: the work list; jobs sharing ``(spec, fold)`` are fused
                into one stacked execution over a single compiled
                schedule.
            operands: optional explicit ``(x, w)`` pairs, one per job;
                omitted entries are synthesized from ``job.seed``.
        """
        jobs = list(jobs)
        if not jobs:
            raise ParameterError("jobs must be non-empty")
        if operands is not None and len(operands) != len(jobs):
            raise ShapeError(
                f"got {len(operands)} operand pairs for {len(jobs)} jobs"
            )
        pairs = [
            operands[index] if operands is not None else self.operands_for(job)
            for index, job in enumerate(jobs)
        ]
        for job, (x, w) in zip(jobs, pairs):
            if tuple(np.shape(x)) != job.spec.input_shape:
                raise ShapeError(
                    f"input shape {np.shape(x)} != spec {job.spec.input_shape}"
                )
            if tuple(np.shape(w)) != job.spec.kernel_shape:
                raise ShapeError(
                    f"kernel shape {np.shape(w)} != spec {job.spec.kernel_shape}"
                )
        folds = [job.resolved_fold(self.max_sub_crossbars) for job in jobs]
        if self.trace_limit > 0:
            return self._run_per_job(jobs, pairs, folds)
        return self._run_fused(jobs, pairs, folds)

    def _run_per_job(self, jobs, pairs, folds) -> BatchResult:
        """Traced fallback: one :class:`CycleEngine` run per job."""
        results = [
            BatchJobResult(
                job=job,
                fold=fold,
                output=run.output,
                cycles=run.cycles,
                counters=run.counters.as_dict(),
            )
            for job, (x, w), fold in zip(jobs, pairs, folds)
            for run in (
                CycleEngine(job.spec, fold=fold, trace_limit=self.trace_limit).run(x, w),
            )
        ]
        return BatchResult(results=results)

    def _run_fused(self, jobs, pairs, folds) -> BatchResult:
        """The hot path: one stacked execution per ``(spec, fold)`` group.

        Per group, the Eq. 1 tap segment ``W[kh, kw]`` is read directly
        from the stacked raw kernels — the folded sub-crossbar tensor
        stores exactly that ``(C, M)`` matrix at ``(slot, phys)``, so no
        per-job SCT/fold construction is needed on this path.
        """
        groups: dict[tuple[DeconvSpec, int], list[int]] = {}
        for index, (job, fold) in enumerate(zip(jobs, folds)):
            groups.setdefault((job.spec, fold), []).append(index)
        results: list[BatchJobResult | None] = [None] * len(jobs)
        for (spec, fold), indices in groups.items():
            compiled = compile_schedule(spec, fold)
            c = spec.in_channels
            kw_width = spec.kernel_width
            oh, ow, m = spec.output_shape
            x_stack = np.stack(
                [
                    np.asarray(pairs[i][0], dtype=np.float64).reshape(-1, c)
                    for i in indices
                ]
            ).astype(self.dtype, copy=False)
            w_stack = np.stack(
                [np.asarray(pairs[i][1], dtype=np.float64) for i in indices]
            ).astype(self.dtype, copy=False)
            arena = np.zeros((len(indices), oh * ow, m), dtype=self.dtype)
            for group in compiled.tap_groups:
                kh, kw = divmod(group.tap, kw_width)
                # (B, P, C) @ (B, C, M): one GEMM per job and tap, same
                # operand values/shapes as the per-job engine, so the
                # float64 results are bit-identical.  Outputs are unique
                # within a tap group, so the fancy-index accumulate is
                # exact.
                arena[:, group.outputs, :] += np.matmul(
                    x_stack[:, group.pixels, :], w_stack[:, kh, kw]
                )
            counters = counters_from_schedule(compiled).as_dict()
            for row, index in enumerate(indices):
                results[index] = BatchJobResult(
                    job=jobs[index],
                    fold=fold,
                    # Copy out of the arena: a view would pin the whole
                    # group's memory for as long as any one result lives.
                    output=arena[row].reshape(oh, ow, m).copy(),
                    cycles=compiled.cycles,
                    counters=dict(counters),
                )
        return BatchResult(results=results)  # type: ignore[arg-type]
