"""Batched cycle-level simulation of many ``(spec, fold)`` jobs.

Sweeps and benchmarks evaluate dozens of layer shapes; running each one
through a fresh scalar schedule walk made the cycle engine the repo's
hottest Python loop.  :class:`BatchEngine` runs a whole list of
:class:`BatchJob` entries through the (now vectorized)
:class:`~repro.sim.engine.CycleEngine`, reusing the LRU-cached compiled
schedule whenever jobs share a ``(spec, fold)`` pair, and aggregates the
per-job counters into a :class:`BatchResult`.

The engine is *bit-identical* to running each job through
``CycleEngine.run`` by hand — same code path, same compiled schedule —
which ``tests/sim/test_batch_engine.py`` asserts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fold import resolve_fold
from repro.deconv.shapes import DeconvSpec
from repro.errors import ParameterError, ShapeError
from repro.sim.counters import CounterSet
from repro.sim.engine import CycleEngine


@dataclass(frozen=True)
class BatchJob:
    """One layer execution request.

    Attributes:
        spec: layer specification.
        fold: Eq. 2 interleave factor, or ``'auto'`` for the area-capped
            choice (same rule as :class:`~repro.core.red_design.REDDesign`).
        seed: RNG seed used to synthesize operands when none are supplied.
        label: free-form tag carried through to the result.
    """

    spec: DeconvSpec
    fold: int | str = 1
    seed: int = 0
    label: str = ""

    def resolved_fold(self, max_sub_crossbars: int = 128) -> int:
        """The concrete fold this job runs with (shared resolution rule)."""
        return resolve_fold(self.spec, self.fold, max_sub_crossbars)


@dataclass
class BatchJobResult:
    """Output of one job within a batch."""

    job: BatchJob
    fold: int
    output: np.ndarray
    cycles: int
    counters: dict[str, int]


@dataclass
class BatchResult:
    """Per-job results plus batch-level aggregate statistics."""

    results: list[BatchJobResult] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.results)

    @property
    def total_cycles(self) -> int:
        """Sum of compute rounds over every job."""
        return sum(r.cycles for r in self.results)

    def merged_counters(self) -> CounterSet:
        """All per-job activity counters summed into one set."""
        merged = CounterSet()
        for result in self.results:
            for name, value in result.counters.items():
                merged.add(name, value)
        return merged

    def summary(self) -> dict[str, float]:
        """Aggregate statistics for reports and benchmarks."""
        counters = self.merged_counters()
        jobs = max(self.num_jobs, 1)
        return {
            "jobs": self.num_jobs,
            "total_cycles": self.total_cycles,
            "mean_cycles_per_job": self.total_cycles / jobs,
            "sc_fires": counters.get("sc_fire"),
            "buffer_reads": counters.get("buffer_reads"),
            "live_rows": counters.get("live_rows"),
            "output_pixels": counters.get("output_pixels"),
        }


class BatchEngine:
    """Run many jobs through the cycle engine with shared compilation.

    Args:
        max_sub_crossbars: SC budget used to resolve ``fold='auto'``.
        trace_limit: per-job trace budget; the default ``0`` skips trace
            replay on the hot path (counters are still exact).
    """

    def __init__(self, max_sub_crossbars: int = 128, trace_limit: int = 0) -> None:
        self.max_sub_crossbars = max_sub_crossbars
        self.trace_limit = trace_limit

    def operands_for(self, job: BatchJob) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic synthetic operands for a job (seeded normal)."""
        rng = np.random.default_rng(job.seed)
        x = rng.normal(size=job.spec.input_shape)
        w = rng.normal(size=job.spec.kernel_shape)
        return x, w

    def run(
        self,
        jobs: list[BatchJob] | tuple[BatchJob, ...],
        operands: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> BatchResult:
        """Execute every job in order and collect the batch result.

        Args:
            jobs: the work list; jobs sharing ``(spec, fold)`` reuse one
                compiled schedule.
            operands: optional explicit ``(x, w)`` pairs, one per job;
                omitted entries are synthesized from ``job.seed``.
        """
        jobs = list(jobs)
        if not jobs:
            raise ParameterError("jobs must be non-empty")
        if operands is not None and len(operands) != len(jobs):
            raise ShapeError(
                f"got {len(operands)} operand pairs for {len(jobs)} jobs"
            )
        results: list[BatchJobResult] = []
        for index, job in enumerate(jobs):
            x, w = operands[index] if operands is not None else self.operands_for(job)
            fold = job.resolved_fold(self.max_sub_crossbars)
            # Schedule reuse across same-shape jobs happens inside run()
            # via compile_schedule's LRU cache; engines are stateless.
            run = CycleEngine(job.spec, fold=fold, trace_limit=self.trace_limit).run(x, w)
            results.append(
                BatchJobResult(
                    job=job,
                    fold=fold,
                    output=run.output,
                    cycles=run.cycles,
                    counters=run.counters.as_dict(),
                )
            )
        return BatchResult(results=results)
