"""Contract linter for the RED reproduction substrate.

A small :mod:`ast`-based static-analysis pass over this repository's own
source.  The substrate built across PRs 1-6 rests on invariants that
ordinary linters cannot see — the SeedSequence seeding contract, frozen
``schema_version``-tagged payloads, registry-only design dispatch, the
exactly-two-store-calls runner discipline, scalar-oracle purity, and
clock/entropy-free evaluation paths.  This package checks them on every
``make lint`` and CI run:

>>> from repro.analysis import run_analysis
>>> report = run_analysis(["src"])
>>> report.findings
[]

Command line::

    python -m repro.analysis [paths ...] [--json] [--baseline FILE]

Exit codes: 0 clean, 1 findings, 2 usage or internal error.  Findings
are suppressed per line with ``# red: ignore[RED004]`` or grandfathered
via a ``--baseline`` JSON file; see README.md for the rule catalogue.
"""

from __future__ import annotations

from repro.analysis.engine import (
    PARSE_ERROR,
    AnalysisReport,
    Finding,
    ModuleSource,
    Rule,
    load_baseline,
    run_analysis,
    save_baseline,
    walk_python_files,
)
from repro.analysis.rules import default_rules

__all__ = [
    "PARSE_ERROR",
    "AnalysisReport",
    "Finding",
    "ModuleSource",
    "Rule",
    "default_rules",
    "load_baseline",
    "run_analysis",
    "save_baseline",
    "walk_python_files",
]
