"""RED004: the exactly-two-store-calls runner discipline (PR 5).

The packed sweep store is batch-first: runners probe once
(``job_keys`` + ``get_many``) and publish once (``put_many``) per
invocation — never per job.  Per-entry traffic re-opens the index,
defeats the in-memory hit tier, and (for writes) publishes one index
generation per entry instead of one per batch.  Inside ``repro/eval/``:

* no single-entry ``cache.get(...)`` / ``store.put(...)`` calls — the
  scalar wrappers exist only as compatibility surface on the stores
  themselves;
* no ``get_many`` / ``put_many`` inside a ``for``/``while`` body or a
  comprehension — a batched call per loop iteration is per-entry
  traffic wearing a batch API.

Calls in a loop *iterator* position (``for x in enumerate(
cache.get_many(keys))``) run once and are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule, walk_loop_contexts

#: Receiver names treated as store/cache handles.
_STORE_SUFFIXES = ("cache", "store")

#: The batched store protocol surface.
_BATCH_METHODS = frozenset({"get_many", "put_many"})

#: The single-entry compatibility surface.
_SCALAR_METHODS = frozenset({"get", "put"})


def _is_store_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return any(name == s or name.endswith("_" + s) for s in _STORE_SUFFIXES)


class StoreDisciplineRule(Rule):
    rule_id = "RED004"
    summary = (
        "eval runners touch the store exactly twice: one batched probe, "
        "one batched publish"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module_parts[:2] == ("repro", "eval")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        for node, in_loop_body in walk_loop_contexts(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            receiver = node.func.value
            if method in _SCALAR_METHODS and _is_store_receiver(receiver):
                yield self.finding(
                    module,
                    node,
                    f"single-entry store call .{method}(); batch through "
                    f"{method}_many with keys computed via job_keys",
                )
            elif method in _BATCH_METHODS and in_loop_body:
                yield self.finding(
                    module,
                    node,
                    f".{method}() inside a loop body; runners make one "
                    "batched probe and one batched publish per invocation",
                )
