"""RED003: registry-only design dispatch (established in PR 2).

The registry (``repro.api.registry``) is the *only* name-to-design
dispatch: a design registered there appears in every sweep, figure and
cache key with no other edits — and a design class that is *not*
registered silently falls out of all of them.  Two checks:

* every concrete ``DeconvDesign`` subclass (one that overrides
  ``perf_input`` without ``@abstractmethod``) must be referenced from a
  module that calls ``register_design`` — i.e. some registered factory
  builds it.  (Standalone performance models that do not subclass
  ``DeconvDesign`` — the convolution reference design — are outside
  the deconv registry by construction and out of scope here.);
* inside ``repro.api.registry`` itself, the keyword surface of
  ``register_design`` must stay in sync with the ``DesignEntry``
  hook fields — adding a hook to one without the other would let
  registrations silently drop it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

REGISTRY_MODULE = ("repro", "api", "registry")

#: Base-class names that mark a class as a registrable design.
DESIGN_BASES = frozenset({"DeconvDesign"})

#: DesignEntry fields that are not register_design keywords by design.
ENTRY_ONLY_FIELDS = frozenset({"name", "factory"})


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _has_abstract_perf_input(func: ast.FunctionDef) -> bool:
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "abstractmethod":
            return True
    return False


class RegistryRule(Rule):
    rule_id = "RED003"
    summary = (
        "concrete design classes are register_design-registered and the "
        "DesignEntry hook surface stays in sync"
    )

    def __init__(self) -> None:
        #: (class name, module, node) of concrete design subclasses.
        self._design_classes: list[tuple[str, ModuleSource, ast.ClassDef]] = []
        #: Identifiers referenced anywhere inside registering modules.
        self._registered_references: set[str] = set()
        self._saw_registering_module = False

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module_parts[:1] == ("repro",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None

        calls_register = False
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                target = node.func
                name = target.attr if isinstance(target, ast.Attribute) else (
                    target.id if isinstance(target, ast.Name) else ""
                )
                if name == "register_design":
                    calls_register = True
        if calls_register:
            self._saw_registering_module = True
            for node in ast.walk(tree):
                if isinstance(node, ast.Name):
                    self._registered_references.add(node.id)
                elif isinstance(node, ast.Attribute):
                    self._registered_references.add(node.attr)

        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (_base_names(node) & DESIGN_BASES):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "perf_input":
                    if not _has_abstract_perf_input(item):
                        self._design_classes.append((node.name, module, node))
                    break

        if module.module_parts == REGISTRY_MODULE:
            yield from self._check_hook_sync(module, tree)

    def finalize(self) -> Iterator[Finding]:
        if not self._saw_registering_module:
            # Analyzing a subtree without the registry; coverage cannot
            # be judged, so stay silent rather than flag everything.
            return
        for name, module, node in self._design_classes:
            if name not in self._registered_references:
                yield self.finding(
                    module,
                    node,
                    f"design class {name} defines perf_input but no "
                    "register_design-ing module references it; unregistered "
                    "designs fall out of every sweep, figure and cache key",
                )

    # ------------------------------------------------------------------
    # DesignEntry <-> register_design keyword sync
    # ------------------------------------------------------------------
    def _check_hook_sync(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        entry_fields: set[str] = set()
        entry_node: ast.ClassDef | None = None
        register_kwargs: set[str] = set()
        register_node: ast.FunctionDef | None = None
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "DesignEntry":
                entry_node = node
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        entry_fields.add(item.target.id)
            elif isinstance(node, ast.FunctionDef) and node.name == "register_design":
                register_node = node
                register_kwargs = {a.arg for a in node.args.kwonlyargs}
        if entry_node is None or register_node is None:
            yield self.finding(
                module,
                tree.body[0] if tree.body else None,
                "registry module must define both DesignEntry and "
                "register_design",
            )
            return
        hooks = entry_fields - ENTRY_ONLY_FIELDS
        for missing in sorted(hooks - register_kwargs):
            yield self.finding(
                module,
                entry_node,
                f"DesignEntry field {missing!r} is not a register_design "
                "keyword; registrations cannot populate it",
            )
        for orphan in sorted(register_kwargs - hooks):
            yield self.finding(
                module,
                register_node,
                f"register_design keyword {orphan!r} has no DesignEntry "
                "field; the value would be dropped",
            )
