"""RED002: the frozen versioned-payload contract (established in PR 2).

Every payload crossing the service boundary lives in
``repro/api/schema.py`` and must:

* be declared ``@dataclass(frozen=True)`` — payloads are immutable;
* if it is a wire payload (its ``to_dict`` emits a ``"kind"``
  discriminator), carry a ``schema_version`` field so readers can
  reject foreign API generations;
* have its ``kind`` dispatched by ``payload_from_dict`` — i.e. appear
  in the ``PAYLOAD_KINDS`` table (and every table entry must point at a
  class that actually emits that kind).

Leaf row types (``SweepPoint`` and friends) have no ``kind`` and ride
inside a versioned envelope; they only need to be frozen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

#: The module this contract covers.
SCHEMA_MODULE = ("repro", "api", "schema")


@dataclass
class _SchemaClass:
    node: ast.ClassDef
    frozen: bool = False
    is_dataclass: bool = False
    field_names: set[str] = field(default_factory=set)
    kind: str | None = None


def _dataclass_decoration(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, frozen)`` from the class decorators."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
                    frozen = bool(keyword.value.value)
        return True, frozen
    return False, False


def _declared_kind(node: ast.ClassDef) -> str | None:
    """The ``"kind"`` string the class's ``to_dict`` emits, if any."""
    for item in node.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "to_dict"):
            continue
        for sub in ast.walk(item):
            if not isinstance(sub, ast.Dict):
                continue
            for key, value in zip(sub.keys, sub.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "kind"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    return value.value
    return None


def _payload_kinds_table(tree: ast.Module) -> tuple[dict[str, str], ast.AST | None]:
    """``kind -> class name`` from the ``PAYLOAD_KINDS`` assignment."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "PAYLOAD_KINDS" for t in targets
        ):
            continue
        table = {}
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(val, ast.Name):
                    table[str(key.value)] = val.id
        return table, node
    return {}, None


class SchemaRule(Rule):
    rule_id = "RED002"
    summary = (
        "schema payloads are frozen dataclasses carrying schema_version, "
        "with every kind dispatched by payload_from_dict"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module_parts == SCHEMA_MODULE

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        classes: list[_SchemaClass] = []
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass, frozen = _dataclass_decoration(node)
            info = _SchemaClass(node=node, frozen=frozen, is_dataclass=is_dataclass)
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    info.field_names.add(item.target.id)
            info.kind = _declared_kind(node)
            classes.append(info)

        table, table_node = _payload_kinds_table(tree)
        class_names = {c.node.name for c in classes}

        for info in classes:
            name = info.node.name
            if not info.is_dataclass:
                continue  # helper classes are not payloads
            if not info.frozen:
                yield self.finding(
                    module,
                    info.node,
                    f"schema dataclass {name} is not frozen=True; payloads "
                    "must be immutable",
                )
            if info.kind is None:
                continue  # leaf row type riding inside an envelope
            if "schema_version" not in info.field_names:
                yield self.finding(
                    module,
                    info.node,
                    f"payload {name} emits kind {info.kind!r} but carries no "
                    "schema_version field; wire payloads must be versioned",
                )
            if info.kind not in table:
                yield self.finding(
                    module,
                    info.node,
                    f"payload kind {info.kind!r} ({name}) is missing from "
                    "PAYLOAD_KINDS; payload_from_dict cannot dispatch it",
                )
            elif table[info.kind] != name:
                yield self.finding(
                    module,
                    info.node,
                    f"PAYLOAD_KINDS maps kind {info.kind!r} to "
                    f"{table[info.kind]} but {name} emits it",
                )

        if table_node is None:
            yield self.finding(
                module,
                tree.body[0] if tree.body else None,
                "no PAYLOAD_KINDS table found; payload_from_dict has nothing "
                "to dispatch on",
            )
        else:
            emitted = {c.kind for c in classes if c.kind is not None}
            for kind, target in sorted(table.items()):
                if target not in class_names:
                    yield self.finding(
                        module,
                        table_node,
                        f"PAYLOAD_KINDS entry {kind!r} points at unknown "
                        f"class {target}",
                    )
                elif kind not in emitted:
                    yield self.finding(
                        module,
                        table_node,
                        f"PAYLOAD_KINDS entry {kind!r} -> {target}, but "
                        f"{target}.to_dict does not emit that kind",
                    )
