"""The contract-rule catalogue (RED001-RED008).

Each module here encodes one substrate invariant established by an
earlier PR; see the per-module docstrings and ``../README.md`` for the
full catalogue.  :func:`default_rules` is the engine's entry point — it
returns *fresh* instances because rules may accumulate cross-file state
between :meth:`~repro.analysis.engine.Rule.check` and
:meth:`~repro.analysis.engine.Rule.finalize`.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.blocking import BlockingAsyncRule
from repro.analysis.rules.nondeterminism import NondeterminismRule
from repro.analysis.rules.oracle import OraclePurityRule
from repro.analysis.rules.registry import RegistryRule
from repro.analysis.rules.schema import SchemaRule
from repro.analysis.rules.seeding import SeedingRule
from repro.analysis.rules.store import StoreDisciplineRule
from repro.analysis.rules.swallow import SwallowRule

__all__ = [
    "BlockingAsyncRule",
    "NondeterminismRule",
    "OraclePurityRule",
    "RegistryRule",
    "SchemaRule",
    "SeedingRule",
    "StoreDisciplineRule",
    "SwallowRule",
    "default_rules",
]


def default_rules() -> list[Rule]:
    """One fresh instance of every contract rule, in rule-id order."""
    return [
        SeedingRule(),
        SchemaRule(),
        RegistryRule(),
        StoreDisciplineRule(),
        OraclePurityRule(),
        NondeterminismRule(),
        SwallowRule(),
        BlockingAsyncRule(),
    ]
