"""RED001: the SeedSequence seeding contract (established in PR 6).

All library randomness must be reproducible from an explicit seed:

* the legacy global-state samplers (``np.random.rand`` and friends, the
  stdlib ``random`` module) are banned everywhere, including inside
  docstring examples — an unseeded demo is a nondeterministic demo;
* ``default_rng()`` must never be called unseeded;
* inside the service tier (``repro.api``) generators are never
  constructed at all — requests carry seeds, and the library entry
  point that consumes the seed owns the seed-to-generator mapping;
* elsewhere in the library, ``default_rng(...)`` must derive from a
  :class:`~numpy.random.SeedSequence` spawn, from an injected
  seed parameter, or appear as the ``rng = rng or default_rng(0)``
  default idiom of a function accepting an ``rng=`` argument.
  (Benchmarks and examples may seed literally — a constant-seeded
  generator at the top of a script is exactly right.)

``repro.reram.noise`` is exempt: it *is* the contract's implementation
(every draw there derives from ``SeedSequence(seed, spawn_key=...)``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

#: numpy.random module-level samplers that mutate hidden global state.
LEGACY_SAMPLERS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "logseries", "multinomial",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
        "rand", "randint", "randn", "random", "random_integers",
        "random_sample", "ranf", "rayleigh", "sample", "seed", "shuffle",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
        "wald", "weibull", "zipf",
    }
)

#: stdlib ``random`` module samplers (same hidden-global-state problem).
STDLIB_SAMPLERS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: Modules exempt from every RED001 clause (the contract implementation).
EXEMPT_MODULES = (("repro", "reram", "noise"),)

_DOCSTRING_SAMPLER_RE = re.compile(
    r"(?:np|numpy)\.random\.(" + "|".join(sorted(LEGACY_SAMPLERS)) + r")\s*\("
)


def _attribute_chain(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_numpy_random_chain(chain: tuple[str, ...]) -> bool:
    return len(chain) >= 2 and chain[0] in {"np", "numpy"} and chain[1] == "random"


def _is_seed_sequence_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _attribute_chain(node.func)
    return bool(chain) and chain[-1] == "SeedSequence"


def _is_seed_valued(node: ast.AST) -> bool:
    """An expression that plainly carries an injected seed: a name or
    attribute whose final identifier mentions ``seed``."""
    if isinstance(node, ast.Name):
        return "seed" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "seed" in node.attr.lower()
    if isinstance(node, ast.Call):
        # int(seed), operator.index(seed), ... — seed passed through a cast.
        return any(_is_seed_valued(arg) for arg in node.args)
    if isinstance(node, ast.BinOp):
        return _is_seed_valued(node.left) or _is_seed_valued(node.right)
    return False


def _mentions_rng(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id.lower().endswith("rng")
        for sub in ast.walk(node)
    )


class SeedingRule(Rule):
    rule_id = "RED001"
    summary = (
        "randomness flows through SeedSequence spawn keys, injected "
        "seeds/Generators, or rng= default idioms — never global state"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module_parts not in EXEMPT_MODULES

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        in_library = module.module_parts[:1] == ("repro",)
        in_api_tier = module.module_parts[:2] == ("repro", "api")
        stdlib_random_names = self._stdlib_random_imports(tree)
        default_idiom_calls = self._default_idiom_call_ids(tree)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if not chain:
                continue
            # Clause 1: legacy global-state samplers.
            if (
                _is_numpy_random_chain(chain)
                and len(chain) == 3
                and chain[2] in LEGACY_SAMPLERS
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state sampler np.random.{chain[2]}(); "
                    "draw from an injected Generator or SeedSequence spawn",
                )
                continue
            if (
                len(chain) == 2
                and chain[0] in stdlib_random_names
                and chain[1] in STDLIB_SAMPLERS
            ):
                yield self.finding(
                    module,
                    node,
                    f"stdlib global-state sampler random.{chain[1]}(); "
                    "use a seeded numpy Generator instead",
                )
                continue
            # Clause 2: default_rng discipline.
            if chain[-1] != "default_rng":
                continue
            if len(chain) > 1 and not _is_numpy_random_chain(chain):
                continue  # someone else's default_rng
            if in_api_tier:
                yield self.finding(
                    module,
                    node,
                    "the service tier must not construct generators; pass the "
                    "request seed to the library entry point that owns the "
                    "seed-to-generator mapping",
                )
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded default_rng(); results are irreproducible — "
                    "seed it from the caller",
                )
                continue
            if not in_library:
                continue  # literal seeds are fine in scripts/benchmarks
            seed_arg = node.args[0] if node.args else None
            if seed_arg is not None and (
                _is_seed_sequence_call(seed_arg) or _is_seed_valued(seed_arg)
            ):
                continue
            if id(node) in default_idiom_calls:
                continue
            yield self.finding(
                module,
                node,
                "default_rng with a hard-wired seed outside an rng= default "
                "idiom; derive from SeedSequence(seed, spawn_key=...) or an "
                "injected seed",
            )

        yield from self._docstring_findings(module, tree)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _stdlib_random_imports(tree: ast.Module) -> frozenset[str]:
        """Names the stdlib ``random`` module is bound to in this file."""
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        names.add(alias.asname or "random")
        return frozenset(names)

    @staticmethod
    def _default_idiom_call_ids(tree: ast.Module) -> frozenset[int]:
        """``id()`` of default_rng calls inside an rng-default idiom.

        Recognized shapes: ``rng or default_rng(0)`` and
        ``default_rng(0) if rng is None else rng`` (either arm).
        """
        allowed: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                if any(
                    isinstance(v, ast.Name) and v.id.lower().endswith("rng")
                    for v in node.values
                ):
                    for value in node.values:
                        if isinstance(value, ast.Call):
                            allowed.add(id(value))
            elif isinstance(node, ast.IfExp) and _mentions_rng(node.test):
                for arm in (node.body, node.orelse):
                    if isinstance(arm, ast.Call):
                        allowed.add(id(arm))
        return frozenset(allowed)

    def _docstring_findings(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        """Clause 3: docstring examples must be deterministic too."""
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            body = node.body
            if not (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                continue
            doc_node = body[0].value
            for offset, line in enumerate(doc_node.value.splitlines()):
                match = _DOCSTRING_SAMPLER_RE.search(line)
                if match:
                    finding = Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=doc_node.lineno + offset,
                        message=(
                            f"docstring example calls np.random.{match.group(1)}(); "
                            "demo code must seed via default_rng(<seed>) so the "
                            "quickstart is deterministic"
                        ),
                    )
                    yield finding
