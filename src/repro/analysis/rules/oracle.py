"""RED005: scalar oracles stay oracle-only (PRs 3, 4 and 6).

The hot paths are analytic and batched; the scalar implementations
survive *only* as correctness oracles for property tests and trace
replay.  Library code that routes work through a scalar oracle silently
reverts a measured 10-100x win:

* ``walk_events`` (the scalar schedule walk) is called only by its
  defining module ``repro.sim.compiler`` and the documented trace-replay
  consumer ``repro.sim.engine``;
* ``fidelity_point`` (the scalar Monte-Carlo sample) is called only by
  ``repro.reram.batch``, where the vectorized sampler is property-tested
  bit-identical to it;
* ``evaluate_design`` / ``evaluate_design_job`` may be called for a
  single evaluation anywhere (that *is* the scalar oracle surface), but
  never inside a ``for``/``while`` body or comprehension outside the
  batch substrate ``repro.eval.parallel`` — a per-job loop belongs on
  the vectorized plane (``run_design_jobs``).

Tests and benchmarks are exempt: exercising the oracle is their job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule, walk_loop_contexts

#: Oracle callables that only their contract modules may call at all.
RESTRICTED_ORACLES: dict[str, tuple[tuple[str, ...], ...]] = {
    "walk_events": (("repro", "sim", "compiler"), ("repro", "sim", "engine")),
    "fidelity_point": (("repro", "reram", "batch"),),
}

#: Oracle callables banned from loop bodies outside the batch substrate.
LOOP_RESTRICTED_ORACLES: dict[str, tuple[tuple[str, ...], ...]] = {
    "evaluate_design": (("repro", "arch", "metrics"), ("repro", "eval", "parallel")),
    "evaluate_design_job": (("repro", "eval", "parallel"),),
}


def _called_name(node: ast.Call) -> str:
    target = node.func
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return ""


class OraclePurityRule(Rule):
    rule_id = "RED005"
    summary = (
        "scalar oracles (walk_events, fidelity_point, per-job "
        "evaluate_design loops) stay confined to their contract modules"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module_parts[:1] == ("repro",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        parts = module.module_parts
        for node, in_loop_body in walk_loop_contexts(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            allowed = RESTRICTED_ORACLES.get(name)
            if allowed is not None and parts not in allowed:
                yield self.finding(
                    module,
                    node,
                    f"scalar oracle {name}() called outside its contract "
                    "modules; the batched/analytic plane is the production "
                    "path (the oracle exists for property tests and replay)",
                )
                continue
            loop_allowed = LOOP_RESTRICTED_ORACLES.get(name)
            if loop_allowed is not None and in_loop_body and parts not in loop_allowed:
                yield self.finding(
                    module,
                    node,
                    f"per-job {name}() loop; route the job list through "
                    "run_design_jobs / the vectorized plane instead of "
                    "looping the scalar oracle",
                )
