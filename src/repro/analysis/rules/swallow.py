"""RED007: no silent exception swallowing in the library tree.

The resilience plane (PR 8) gives every failure exactly two legitimate
destinations: it is retried/degraded by the reliability machinery, or
it surfaces to the caller (optionally as a wire-level
:class:`~repro.api.schema.ErrorInfo`).  A handler that catches
everything and drops it on the floor creates a third, invisible
destination — the classic way fault-injection campaigns and real
incidents alike go undiagnosed.  Inside ``repro.*``:

* a bare ``except:`` is always a finding — it traps ``SystemExit`` and
  ``KeyboardInterrupt`` along with everything else;
* ``except Exception`` / ``except BaseException`` (alone or in a
  tuple) is a finding unless the handler body contains a ``raise`` —
  broad catches are for *routing* (inspect, then re-raise what is not
  yours), never for discarding.

Narrowed handlers (``except OSError: pass`` on a best-effort cleanup,
``except ReproError`` at the CLI boundary) are out of scope: naming
the exception type is the declaration that this failure mode was
considered.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

#: Exception names whose handlers must re-raise to be considered routing.
BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's type clause includes Exception/BaseException."""
    clause = handler.type
    if clause is None:
        return True
    candidates = clause.elts if isinstance(clause, ast.Tuple) else [clause]
    return any(
        isinstance(entry, ast.Name) and entry.id in BROAD_EXCEPTION_NAMES
        for entry in candidates
    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether any path through the handler body raises."""
    return any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


class SwallowRule(Rule):
    rule_id = "RED007"
    summary = (
        "no silent exception swallowing: bare except is banned, and "
        "except Exception/BaseException must re-raise on some path"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        parts = module.module_parts
        return len(parts) >= 1 and parts[0] == "repro"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' swallows every signal (including "
                    "KeyboardInterrupt); name the exception types this "
                    "site can actually handle",
                )
            elif _catches_broadly(node) and not _reraises(node):
                yield self.finding(
                    module,
                    node,
                    "broad 'except Exception' handler never re-raises; "
                    "either narrow it to the failure modes this site "
                    "owns or route what is not yours with 'raise'",
                )
