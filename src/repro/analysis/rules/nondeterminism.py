"""RED006: no ambient nondeterminism in cache-keyed or evaluation paths.

Cache keys are SHA-256 digests over canonical job fields
(``repro.eval.parallel.job_keys``); evaluation results are pure
functions of ``(design, spec, tech, fold, seed)``.  A wall-clock or
entropy read anywhere in those paths breaks the two properties the
whole substrate is tested on — byte-identical cold/warm cache routes
and cross-process reproducibility.  Inside the evaluation subpackages
(``eval``, ``sim``, ``arch``, ``reram``, ``api``, ``core``, ``deconv``,
``system``, ``designs``), calls to:

* ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
  ``time.perf_counter`` (wall-clock reads — retention *times* are
  explicit request parameters, never "now"),
* ``datetime.now`` / ``datetime.utcnow`` / ``datetime.today`` /
  ``date.today``,
* ``os.urandom`` / ``uuid.uuid1`` / ``uuid.uuid4`` and the ``secrets``
  module (entropy reads — seeds arrive via requests)

are findings.  Benchmarks time wall-clock by definition and are out of
scope, as is the CLI shell.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

#: repro subpackages whose modules feed cache keys or evaluations.
DETERMINISTIC_SUBPACKAGES = frozenset(
    {"eval", "sim", "arch", "reram", "api", "core", "deconv", "system", "designs"}
)

#: ``(receiver, method)`` attribute calls that read clocks or entropy.
FORBIDDEN_ATTR_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("secrets", "token_bytes"),
        ("secrets", "token_hex"),
        ("secrets", "token_urlsafe"),
        ("secrets", "randbelow"),
        ("secrets", "choice"),
    }
)

#: Bare names that are clock/entropy reads when imported directly.
FORBIDDEN_BARE_CALLS = frozenset(
    {"time_ns", "monotonic", "perf_counter", "urandom", "uuid1", "uuid4"}
)


class NondeterminismRule(Rule):
    rule_id = "RED006"
    summary = (
        "no wall-clock or entropy reads in cache-keyed/evaluation paths; "
        "timestamps and seeds are explicit request parameters"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        parts = module.module_parts
        return (
            len(parts) >= 2
            and parts[0] == "repro"
            and parts[1] in DETERMINISTIC_SUBPACKAGES
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Attribute):
                receiver = target.value
                receiver_name = (
                    receiver.id
                    if isinstance(receiver, ast.Name)
                    else receiver.attr
                    if isinstance(receiver, ast.Attribute)
                    else ""
                )
                key = (receiver_name, target.attr)
                if key in FORBIDDEN_ATTR_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{receiver_name}.{target.attr}() reads ambient "
                        "clock/entropy in a deterministic path; thread the "
                        "value through the request/job instead",
                    )
            elif isinstance(target, ast.Name) and target.id in FORBIDDEN_BARE_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{target.id}() reads ambient clock/entropy in a "
                    "deterministic path; thread the value through the "
                    "request/job instead",
                )
