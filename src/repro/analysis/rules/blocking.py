"""RED008: no blocking calls inside ``async def`` bodies.

The serving plane (PR 9) runs its front door on a single asyncio event
loop: one coroutine calling ``time.sleep`` or doing synchronous store
or subprocess IO stalls *every* in-flight request, which defeats the
admission gate's fairness and turns a per-request deadline into a
whole-plane outage.  All blocking work therefore crosses into the
thread pool via ``run_in_executor`` — the loop itself only parses,
routes, and awaits.

Inside ``repro.*``, a call appearing directly in an ``async def`` body
is a finding when it names a known-blocking primitive:

* ``time.sleep`` (use ``asyncio.sleep`` or the executor);
* synchronous process machinery — ``subprocess.run`` / ``call`` /
  ``check_call`` / ``check_output`` / ``Popen``, ``os.system``,
  ``os.popen``, ``os.waitpid``;
* synchronous network/file IO — builtin ``open``, ``input``,
  ``socket.create_connection``, ``urllib.request.urlopen``.

Statements inside *nested* function definitions are out of scope: a
``def`` declared inside a coroutine is routinely handed to an executor
or a signal handler, where blocking is the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleSource, Rule

#: Dotted call targets that block the calling thread.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Bare builtins that block the calling thread.
BLOCKING_NAMES = frozenset({"open", "input"})


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` as a string, or None for non-trivial expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _async_body_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically in the coroutine body, skipping nested defs."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested callables run wherever they are dispatched
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class BlockingAsyncRule(Rule):
    rule_id = "RED008"
    summary = (
        "no blocking calls inside 'async def' bodies: time.sleep, "
        "synchronous subprocess/file/socket IO must cross into the "
        "executor, never run on the event loop"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        parts = module.module_parts
        return len(parts) >= 1 and parts[0] == "repro"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                target = _dotted_name(call.func)
                blocked = (
                    target in BLOCKING_DOTTED
                    or (
                        isinstance(call.func, ast.Name)
                        and call.func.id in BLOCKING_NAMES
                    )
                )
                if blocked:
                    label = target or getattr(call.func, "id", "<call>")
                    yield self.finding(
                        module,
                        call,
                        f"blocking call '{label}' inside coroutine "
                        f"'{node.name}' stalls the event loop; move it "
                        "behind loop.run_in_executor (or use the asyncio "
                        "equivalent)",
                    )
