"""``python -m repro.analysis`` — the contract-linter command line.

Walks the given paths (default: ``src benchmarks examples``), runs the
RED001-RED007 contract rules, and prints one line per finding::

    src/repro/api/service.py:272: RED001 ...

Exit codes follow the usual linter convention so ``make lint`` and CI
can chain it: 0 when the tree is clean, 1 when findings remain after
suppressions and the baseline, 2 on usage or internal errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.engine import load_baseline, run_analysis, save_baseline
from repro.analysis.rules import default_rules

#: Paths checked when none are given: the library plus the two trees
#: that consume it directly (tests exercise oracles by design and are
#: covered by their own suite instead).
DEFAULT_PATHS = ("src", "benchmarks", "examples")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the RED substrate contracts (RED001-RED007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to check (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full report as JSON instead of one line per finding",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; normalise.
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    if options.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return EXIT_CLEAN

    baseline = None
    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    try:
        report = run_analysis(options.paths, baseline=baseline)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if options.write_baseline:
        save_baseline(options.write_baseline, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {options.write_baseline}"
        )
        return EXIT_CLEAN

    if options.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        tail = (
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) ({report.suppressed} suppressed, "
            f"{report.baselined} baselined)"
        )
        print(tail)
    return EXIT_FINDINGS if report.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
