"""The contract-linter engine: rules, findings, suppressions, baselines.

The substrate built in PRs 1-6 rests on a handful of hand-maintained
invariants — the SeedSequence spawn-key seeding contract, frozen
``schema_version``-tagged payloads, registry-only design dispatch, the
exactly-two-store-calls runner discipline, scalar-oracle-only code
paths.  This package turns each of them from a review comment into a
machine-checked rule (see ``rules/`` and README.md for the catalogue).

Moving parts
------------
* :class:`Finding` — one violation: rule id, file, line, message.
* :class:`Rule` — a check over one parsed module
  (:meth:`Rule.check`) plus an optional whole-tree pass
  (:meth:`Rule.finalize`) for cross-file contracts such as registry
  coverage.  :meth:`Rule.applies_to` scopes a rule to the module paths
  whose contract it encodes.
* :class:`ModuleSource` — one parsed file: source text, AST, and the
  dotted module parts the scoping predicates match against (computed
  from the path, stripping any leading ``src`` segment).
* Suppressions — a finding on a line carrying
  ``# red: ignore[RULE-ID]`` (or a bare ``# red: ignore`` for any rule)
  is dropped and counted, mirroring ``# noqa`` semantics.
* Baseline — a JSON file of grandfathered findings
  (:func:`load_baseline` / :func:`save_baseline`); matching is by
  ``(rule, path, message)``, deliberately ignoring line numbers so
  unrelated edits above a grandfathered site do not churn the file.
* :func:`run_analysis` — walk the requested paths (skipping
  ``__pycache__`` and hidden directories), run every rule, and return
  an :class:`AnalysisReport`.

Files that fail to parse surface as :data:`PARSE_ERROR` findings
rather than crashing the run, so one broken file cannot hide findings
in the rest of the tree (``compileall`` in ``make lint`` still fails
the build on them).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR = "RED000"

#: Baseline file format generation.
BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*red:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific site.

    Attributes:
        rule: rule identifier (``"RED001"`` ... or :data:`PARSE_ERROR`).
        path: file path as walked (POSIX separators, stable across runs).
        line: 1-based line of the offending node (0 when unknown).
        message: human-readable statement of the violated invariant.
    """

    rule: str
    path: str
    line: int
    message: str

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line-number free)."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class ModuleSource:
    """One parsed source file handed to the rules.

    Attributes:
        path: the walked path (as reported in findings).
        text: raw source text.
        tree: parsed :mod:`ast` module, or ``None`` on syntax error.
        module_parts: dotted-module segments derived from the path with
            any leading ``src`` layout segment stripped — e.g.
            ``("repro", "eval", "parallel")`` — so rules can scope to
            packages regardless of the directory the walk started from.
    """

    path: str
    text: str
    tree: ast.Module | None
    module_parts: tuple[str, ...]

    def lines(self) -> list[str]:
        return self.text.splitlines()


class Rule:
    """Base class for one machine-checked contract.

    Subclasses set :attr:`rule_id` / :attr:`summary` and override
    :meth:`check` (per module) and/or :meth:`finalize` (once, after all
    modules, for cross-file contracts).  A fresh instance is created per
    run, so :meth:`check` may accumulate state for :meth:`finalize`.
    """

    rule_id: str = "RED???"
    summary: str = ""

    def applies_to(self, module: ModuleSource) -> bool:
        """Whether this rule's contract covers ``module`` at all."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Findings local to one module."""
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Cross-module findings, after every file has been checked."""
        return iter(())

    # Helper shared by subclasses.
    def finding(self, module: ModuleSource, node, message: str) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        return Finding(
            rule=self.rule_id, path=module.path, line=line, message=message
        )


@dataclass
class AnalysisReport:
    """The outcome of one :func:`run_analysis` pass.

    Attributes:
        findings: violations after suppression and baseline filtering.
        suppressed: count of findings dropped by inline suppressions.
        baselined: count of findings matched by the baseline file.
        files_checked: number of Python files walked and parsed.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    def to_dict(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "files_checked": self.files_checked,
        }


# ----------------------------------------------------------------------
# Loop-context AST walking (shared by the loop-discipline rules)
# ----------------------------------------------------------------------
def walk_loop_contexts(tree: ast.AST) -> list[tuple[ast.AST, bool]]:
    """Every node paired with whether it re-executes per loop iteration.

    ``in_loop_body`` is True for nodes inside ``for``/``while`` bodies,
    ``while`` tests, and comprehension elements/conditions — and False
    for positions that run exactly once per statement: a ``for`` loop's
    iterable and the *first* generator's iterable of a comprehension
    (``[f(x) for x in make_once()]`` evaluates ``make_once()`` once).
    """
    out: list[tuple[ast.AST, bool]] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        out.append((node, in_loop))
        if isinstance(node, (ast.For, ast.AsyncFor)):
            visit(node.target, in_loop)
            visit(node.iter, in_loop)
            for stmt in (*node.body, *node.orelse):
                visit(stmt, True)
        elif isinstance(node, ast.While):
            visit(node.test, True)
            for stmt in (*node.body, *node.orelse):
                visit(stmt, True)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for index, gen in enumerate(node.generators):
                visit(gen.target, True)
                visit(gen.iter, in_loop if index == 0 else True)
                for cond in gen.ifs:
                    visit(cond, True)
            if isinstance(node, ast.DictComp):
                visit(node.key, True)
                visit(node.value, True)
            else:
                visit(node.elt, True)
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, in_loop)

    visit(tree, False)
    return out


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def suppressed_rules(line: str) -> frozenset[str] | None:
    """The rule ids a source line suppresses.

    Returns ``None`` when the line carries no suppression marker, an
    empty frozenset for the bare ``# red: ignore`` form (suppresses
    every rule on the line), or the explicit ids from
    ``# red: ignore[RED001, RED004]``.
    """
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """Whether ``finding`` is silenced by a marker on its source line."""
    if not 1 <= finding.line <= len(lines):
        return False
    rules = suppressed_rules(lines[finding.line - 1])
    if rules is None:
        return False
    return not rules or finding.rule in rules


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Grandfathered finding keys from a baseline JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} is not a version-{BASELINE_VERSION} baseline file"
        )
    keys = set()
    for entry in payload.get("findings", ()):
        keys.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return keys


def save_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as a baseline file (sorted, line numbers kept
    for human readers but ignored on matching)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    payload = {
        "version": BASELINE_VERSION,
        "findings": [f.to_dict() for f in ordered],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# File walking
# ----------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def walk_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted, caches excluded."""
    collected: list[Path] = []
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                collected.append(root)
            continue
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(part in _SKIP_DIRS or part.startswith(".") for part in parts):
                continue
            collected.append(candidate)
    # De-duplicate while preserving order (overlapping roots).
    seen: set[Path] = set()
    unique = []
    for path in collected:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def module_parts_for(path: Path) -> tuple[str, ...]:
    """Dotted-module segments for a file, stripping ``src`` layout roots.

    ``src/repro/eval/parallel.py`` -> ``("repro", "eval", "parallel")``;
    the rules' path predicates match on these segments so the engine
    behaves identically whether invoked on ``src`` or on the package
    directory itself.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "lib"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    return tuple(parts)


def parse_module(path: Path) -> ModuleSource:
    """Read and parse one file (``tree=None`` on syntax errors)."""
    text = path.read_text(encoding="utf-8", errors="replace")
    try:
        tree = ast.parse(text)
    except SyntaxError:
        tree = None
    return ModuleSource(
        path=path.as_posix(),
        text=text,
        tree=tree,
        module_parts=module_parts_for(path),
    )


# ----------------------------------------------------------------------
# The run loop
# ----------------------------------------------------------------------
def run_analysis(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
) -> AnalysisReport:
    """Run every rule over every Python file under ``paths``.

    Args:
        paths: files or directories to walk.
        rules: rule instances (default: one of each registered rule —
            a fresh set per run, since rules may carry cross-file state).
        baseline: grandfathered finding keys from :func:`load_baseline`.

    Returns:
        An :class:`AnalysisReport`; ``report.findings`` is empty exactly
        when the tree honours every contract (modulo suppressions and
        the baseline).
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    baseline = baseline or set()
    report = AnalysisReport()
    raw: list[tuple[Finding, Sequence[str]]] = []
    for path in walk_python_files(paths):
        module = parse_module(path)
        report.files_checked += 1
        if module.tree is None:
            raw.append(
                (
                    Finding(
                        rule=PARSE_ERROR,
                        path=module.path,
                        line=0,
                        message="file does not parse; rules were not evaluated",
                    ),
                    (),
                )
            )
            continue
        lines = module.lines()
        for rule in rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                raw.append((finding, lines))
    for rule in rules:
        for finding in rule.finalize():
            raw.append((finding, ()))
    for finding, lines in raw:
        if is_suppressed(finding, lines):
            report.suppressed += 1
        elif finding.baseline_key() in baseline:
            report.baselined += 1
        else:
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return report
