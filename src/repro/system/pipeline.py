"""Inter-layer pipelining (the ReGAN execution style).

ReGAN — the pipelined ReRAM GAN accelerator RED compares against — keeps
every layer's weights resident and streams samples through the layer
stages.  In steady state the throughput is set by the slowest stage and
the fill latency by the stage sum; this module applies that model to a
:class:`~repro.system.network_mapper.NetworkEvaluation`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.eval.parallel import SweepCache
from repro.eval.store import PackedSweepStore
from repro.system.network_mapper import NetworkEvaluation, evaluate_network
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PipelineReport:
    """Pipelined execution of one design over a network.

    Attributes:
        design: design name.
        stage_latencies: per-layer latency in execution order (seconds).
        fill_latency: first-sample latency (sum of stages).
        bottleneck_latency: steady-state initiation interval (max stage).
        batch: samples streamed.
        batch_latency: fill + (batch - 1) * bottleneck.
        throughput: samples per second in steady state.
        energy_per_sample: joules per sample (pipelining does not change
            energy, only scheduling).
    """

    design: str
    stage_latencies: tuple[float, ...]
    batch: int
    energy_per_sample: float

    @property
    def fill_latency(self) -> float:
        """Latency of the first sample through every stage."""
        return sum(self.stage_latencies)

    @property
    def bottleneck_latency(self) -> float:
        """Steady-state initiation interval."""
        return max(self.stage_latencies)

    @property
    def batch_latency(self) -> float:
        """Total time to stream the batch through the pipeline."""
        return self.fill_latency + (self.batch - 1) * self.bottleneck_latency

    @property
    def throughput(self) -> float:
        """Samples per second in steady state."""
        return 1.0 / self.bottleneck_latency

    @property
    def pipeline_speedup(self) -> float:
        """Batch-level gain over running stages back to back per sample."""
        sequential = self.batch * self.fill_latency
        return sequential / self.batch_latency


def pipeline_network(
    evaluation: NetworkEvaluation, design: str, batch: int = 16
) -> PipelineReport:
    """Build the pipeline report for one design over a mapped network."""
    check_positive_int(batch, "batch")
    if design not in evaluation.metrics:
        raise ParameterError(
            f"design {design!r} not in evaluation ({sorted(evaluation.metrics)})"
        )
    stages = tuple(
        evaluation.metrics[design][layer.name].latency.total
        for layer in evaluation.layers
    )
    energy = evaluation.total_energy(design)
    return PipelineReport(
        design=design,
        stage_latencies=stages,
        batch=batch,
        energy_per_sample=energy,
    )


def pipeline_network_sweep(
    network,
    designs: tuple[str, ...] | None = None,
    batch: int = 16,
    input_height: int = 1,
    input_width: int = 1,
    tech=None,
    jobs: int = 1,
    cache: SweepCache | PackedSweepStore | str | os.PathLike | None = None,
) -> dict[str, PipelineReport]:
    """Pipeline reports for every design over one network, evaluated
    through the parallel sweep runner.

    The per-(design, layer) evaluations fan out through the service's
    single evaluation path (:func:`~repro.eval.parallel.run_design_jobs`,
    ``jobs`` workers, optional on-disk ``cache``); the reports themselves
    are cheap roll-ups.  Returns ``{design: PipelineReport}`` in design
    order (default: every registered design).
    """
    from repro.api.registry import available_designs

    designs = designs or available_designs()
    evaluation = evaluate_network(
        network,
        input_height,
        input_width,
        tech=tech,
        designs=designs,
        jobs=jobs,
        cache=cache,
    )
    return {
        design: pipeline_network(evaluation, design, batch=batch)
        for design in designs
    }
