"""Fixed chip provisioning across a set of layers.

Fig. 9's "similar area overhead (+21.41%) for all the layers" only makes
sense at the *chip* level: one accelerator is provisioned once (sized by
its most demanding layer per resource class) and every layer then runs on
that same silicon.  :func:`provision_chip` computes that view: per-design
chip area as the component-wise maximum over the layers' per-layer
breakdowns, plus per-layer utilization of the provisioned resources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.breakdown import AreaBreakdown
from repro.errors import ParameterError
from repro.system.network_mapper import NetworkEvaluation


@dataclass(frozen=True)
class ChipProvision:
    """A design's provisioned chip over a set of layers.

    Attributes:
        design: design name.
        area: component-wise maximum area breakdown over the layers.
        per_layer_utilization: layer name -> fraction of the provisioned
            total area that the layer's own requirement occupies.
    """

    design: str
    area: AreaBreakdown
    per_layer_utilization: dict[str, float]

    @property
    def total_area(self) -> float:
        """Provisioned chip area in square metres."""
        return self.area.total

    def overhead_over(self, baseline: "ChipProvision") -> float:
        """Fractional chip-area overhead vs another provision."""
        return self.total_area / baseline.total_area - 1.0


def provision_chip(
    evaluation: NetworkEvaluation, design: str, mode: str = "time-multiplexed"
) -> ChipProvision:
    """Provision one design's chip for every layer of an evaluation.

    Two provisioning disciplines:

    * ``"time-multiplexed"`` — one layer resident at a time (weights are
      reprogrammed between layers): each resource class is sized by its
      *maximum* over the layers.
    * ``"pipelined"`` — every layer's weights stay resident so samples
      stream through all stages concurrently (the PipeLayer/ReGAN style
      required by :func:`repro.system.pipeline.pipeline_network`): each
      resource class is the *sum* over the layers.
    """
    if design not in evaluation.metrics:
        raise ParameterError(
            f"design {design!r} not in evaluation ({sorted(evaluation.metrics)})"
        )
    if mode not in ("time-multiplexed", "pipelined"):
        raise ParameterError(
            f"mode must be 'time-multiplexed' or 'pipelined', got {mode!r}"
        )
    layer_areas = {
        name: metrics.area for name, metrics in evaluation.metrics[design].items()
    }
    if not layer_areas:
        raise ParameterError("evaluation holds no layers")
    component_names = next(iter(layer_areas.values())).as_dict().keys()
    combine = max if mode == "time-multiplexed" else sum
    combined = {
        component: combine(area.as_dict()[component] for area in layer_areas.values())
        for component in component_names
    }
    provisioned = AreaBreakdown(**combined)
    utilization = {
        name: area.total / provisioned.total for name, area in layer_areas.items()
    }
    return ChipProvision(
        design=design, area=provisioned, per_layer_utilization=utilization
    )
