"""Chip- and network-level system modelling.

The paper evaluates isolated layers; real deployments (and the ReGAN
baseline it builds on) map whole networks onto one provisioned chip and
pipeline the layers.  This package adds that level:

* :mod:`repro.system.network_mapper` — walk a workload network, extract
  every deconvolution layer with its activation shape, and evaluate all
  three designs per layer and in aggregate.
* :mod:`repro.system.pipeline` — ReGAN-style inter-layer pipelining:
  throughput set by the slowest stage, latency by the stage sum.
* :mod:`repro.system.chip` — a fixed chip provisioning sized for a set of
  layers; reports per-design chip area and utilization (the accelerator-
  level view under which the paper's "+21.41% for all layers" area claim
  is recovered).
"""

from repro.system.chip import ChipProvision, provision_chip
from repro.system.network_mapper import (
    MappedLayer,
    NetworkEvaluation,
    evaluate_network,
    extract_deconv_layers,
)
from repro.system.pipeline import PipelineReport, pipeline_network, pipeline_network_sweep

__all__ = [
    "MappedLayer",
    "NetworkEvaluation",
    "extract_deconv_layers",
    "evaluate_network",
    "PipelineReport",
    "pipeline_network",
    "pipeline_network_sweep",
    "ChipProvision",
    "provision_chip",
]
