"""Full-network PIM mapping: convolution AND deconvolution layers.

:mod:`repro.system.network_mapper` covers the deconvolution layers the
paper benchmarks; real networks interleave them with plain convolutions
(FCN encoders, to-RGB heads).  This module walks the whole network and
assigns every spatial layer a PIM design — :class:`ConvolutionDesign`
(Fig. 1b) for convolutions, the chosen deconvolution design for
transposed convolutions — giving end-to-end accelerator numbers for a
complete model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.breakdown import DesignMetrics
from repro.arch.tech import TechnologyParams, default_tech
from repro.deconv.shapes import DeconvSpec
from repro.designs.conv_design import ConvolutionDesign, ConvSpec
from repro.errors import ShapeError
from repro.eval.harness import build_design
from repro.nn.modules import BatchNorm2d, Conv2d, ConvTranspose2d, Identity, Module, Sequential
from repro.workloads.specs import BenchmarkLayer


@dataclass(frozen=True)
class MappedSpatialLayer:
    """One spatial layer of a network with its PIM-relevant spec.

    Attributes:
        name: dotted module path.
        kind: ``"conv"`` or ``"deconv"``.
        conv_spec / deconv_spec: exactly one is set, per ``kind``.
    """

    name: str
    kind: str
    conv_spec: ConvSpec | None = None
    deconv_spec: DeconvSpec | None = None

    @property
    def num_weights(self) -> int:
        """Scalar weights stored on the array for this layer."""
        spec = self.conv_spec if self.kind == "conv" else self.deconv_spec
        return spec.num_weights


def _walk_all(
    module: Module, prefix: str, height: int, width: int,
    found: list[MappedSpatialLayer],
) -> tuple[int, int]:
    if isinstance(module, Sequential):
        for index, layer in enumerate(module.layers):
            height, width = _walk_all(layer, f"{prefix}{index}.", height, width, found)
        return height, width
    if isinstance(module, ConvTranspose2d):
        spec = module.deconv_spec(height, width)
        found.append(
            MappedSpatialLayer(name=prefix.rstrip("."), kind="deconv", deconv_spec=spec)
        )
        return spec.output_height, spec.output_width
    if isinstance(module, Conv2d):
        spec = ConvSpec(
            input_height=height, input_width=width,
            in_channels=module.in_channels,
            kernel_height=module.kernel_size, kernel_width=module.kernel_size,
            out_channels=module.out_channels,
            stride=module.stride, padding=module.padding,
        )
        found.append(
            MappedSpatialLayer(name=prefix.rstrip("."), kind="conv", conv_spec=spec)
        )
        return spec.output_height, spec.output_width
    if isinstance(module, (BatchNorm2d, Identity)) or not module._children:
        return height, width
    for name, child in module._children.items():
        height, width = _walk_all(child, f"{prefix}{name}.", height, width, found)
    return height, width


def extract_spatial_layers(
    network: Module, input_height: int, input_width: int
) -> list[MappedSpatialLayer]:
    """All conv/deconv layers of a *sequential-topology* network.

    Networks with skip connections (FCN8s) have data-dependent fan-in the
    walker cannot follow; for those, extract per-branch sub-modules.
    """
    found: list[MappedSpatialLayer] = []
    _walk_all(network, "", input_height, input_width, found)
    if not found:
        raise ShapeError("network contains no spatial layers")
    return found


@dataclass
class FullNetworkEvaluation:
    """Per-layer metrics over conv + deconv layers for one deconv design.

    Attributes:
        layers: the spatial layers in execution order.
        metrics: layer name -> DesignMetrics.
        deconv_design: the design used for the deconvolution layers
            (convolutions always use the Fig. 1b mapping).
    """

    layers: list[MappedSpatialLayer]
    metrics: dict[str, DesignMetrics]
    deconv_design: str

    @property
    def total_latency(self) -> float:
        """Seconds over every spatial layer."""
        return sum(m.latency.total for m in self.metrics.values())

    @property
    def total_energy(self) -> float:
        """Joules over every spatial layer."""
        return sum(m.energy.total for m in self.metrics.values())

    @property
    def deconv_latency_share(self) -> float:
        """Fraction of total latency spent in deconvolution layers."""
        deconv = sum(
            self.metrics[l.name].latency.total
            for l in self.layers
            if l.kind == "deconv"
        )
        return deconv / self.total_latency


def evaluate_full_network(
    network: Module,
    input_height: int = 1,
    input_width: int = 1,
    deconv_design: str = "RED",
    tech: TechnologyParams | None = None,
) -> FullNetworkEvaluation:
    """Map every spatial layer of a network onto PIM designs."""
    tech = tech or default_tech()
    layers = extract_spatial_layers(network, input_height, input_width)
    metrics: dict[str, DesignMetrics] = {}
    for layer in layers:
        if layer.kind == "conv":
            design = ConvolutionDesign(layer.conv_spec, tech)
            metrics[layer.name] = design.evaluate(layer.name)
        else:
            shim = BenchmarkLayer(
                name=layer.name, network="", dataset="", spec=layer.deconv_spec
            )
            metrics[layer.name] = build_design(deconv_design, shim, tech).evaluate(
                layer.name
            )
    return FullNetworkEvaluation(
        layers=layers, metrics=metrics, deconv_design=deconv_design
    )
