"""Map whole workload networks onto the accelerator designs.

Walks a network module tree, propagates activation shapes, extracts every
:class:`~repro.nn.modules.ConvTranspose2d` with its concrete input size,
and evaluates each accelerator design on each layer — the aggregation the
single-layer Table I rows are sampled from.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.api.registry import baseline_design
from repro.arch.breakdown import DesignMetrics
from repro.arch.tech import TechnologyParams, default_tech
from repro.deconv.shapes import DeconvSpec
from repro.errors import ShapeError
from repro.eval.parallel import SweepCache
from repro.eval.store import PackedSweepStore
from repro.nn.modules import ConvTranspose2d, Module, Sequential


@dataclass(frozen=True)
class MappedLayer:
    """One deconvolution layer found in a network.

    Attributes:
        name: dotted module path within the network.
        spec: the resolved shape specification.
    """

    name: str
    spec: DeconvSpec


def _walk(module: Module, prefix: str, height: int, width: int, found: list[MappedLayer]) -> tuple[int, int]:
    """Depth-first walk propagating spatial dims; returns the output size.

    Handles the module types the workload networks use.  Elementwise and
    normalization layers preserve the spatial size; convolutions and
    transposed convolutions transform it.
    """
    from repro.nn.modules import BatchNorm2d, Conv2d, Identity

    if isinstance(module, Sequential):
        for index, layer in enumerate(module.layers):
            height, width = _walk(layer, f"{prefix}{index}.", height, width, found)
        return height, width
    if isinstance(module, ConvTranspose2d):
        spec = module.deconv_spec(height, width)
        found.append(MappedLayer(name=prefix.rstrip("."), spec=spec))
        return spec.output_height, spec.output_width
    if isinstance(module, Conv2d):
        k, s, p = module.kernel_size, module.stride, module.padding
        return ((height + 2 * p - k) // s + 1, (width + 2 * p - k) // s + 1)
    if isinstance(module, (BatchNorm2d, Identity)) or not module._children:
        # Elementwise layers (ReLU/Tanh/...) and leaves preserve size.
        return height, width
    for name, child in module._children.items():
        height, width = _walk(child, f"{prefix}{name}.", height, width, found)
    return height, width


def extract_deconv_layers(network: Module, input_height: int, input_width: int) -> list[MappedLayer]:
    """Find every transposed-convolution layer with its concrete shape.

    Args:
        network: the workload module tree.
        input_height / input_width: spatial size of the network input
            (1 for latent-vector generators).
    """
    found: list[MappedLayer] = []
    _walk(network, "", input_height, input_width, found)
    if not found:
        raise ShapeError("network contains no ConvTranspose2d layers")
    return found


@dataclass
class NetworkEvaluation:
    """All designs evaluated over all deconv layers of one network.

    Attributes:
        layers: the mapped layers, in execution order.
        metrics: ``metrics[design][layer_name]`` -> DesignMetrics.
    """

    layers: list[MappedLayer]
    metrics: dict[str, dict[str, DesignMetrics]]
    tech: TechnologyParams = field(default_factory=default_tech)

    def total_latency(self, design: str) -> float:
        """Sequential (non-pipelined) latency over all layers, seconds."""
        return sum(m.latency.total for m in self.metrics[design].values())

    def total_energy(self, design: str) -> float:
        """Total energy over all layers, joules."""
        return sum(m.energy.total for m in self.metrics[design].values())

    def speedup(self, design: str, baseline: str | None = None) -> float:
        """End-to-end latency ratio baseline/design."""
        baseline = baseline or baseline_design()
        return self.total_latency(baseline) / self.total_latency(design)

    def energy_saving(self, design: str, baseline: str | None = None) -> float:
        """End-to-end fractional energy saving vs baseline."""
        baseline = baseline or baseline_design()
        return 1.0 - self.total_energy(design) / self.total_energy(baseline)


def evaluate_network(
    network: Module,
    input_height: int = 1,
    input_width: int = 1,
    tech: TechnologyParams | None = None,
    designs: tuple[str, ...] | None = None,
    jobs: int = 1,
    cache: SweepCache | PackedSweepStore | str | os.PathLike | None = None,
) -> NetworkEvaluation:
    """Evaluate every design over every deconv layer of a network.

    Delegates to
    :meth:`repro.api.service.RedService.network_evaluation`, the single
    evaluation path: each (design, layer) pair becomes one
    :class:`~repro.eval.parallel.DesignJob` routed through
    :func:`~repro.eval.parallel.run_design_jobs`.  ``designs=None``
    evaluates every registered design; a ``cache`` directory path
    constructs the batched :class:`~repro.eval.store.PackedSweepStore`.
    """
    from repro.api.service import RedService

    return RedService(num_workers=jobs, cache=cache).network_evaluation(
        network, input_height, input_width, tech=tech, designs=designs
    )
