"""Shard worker process: one supervised evaluator per key range.

Each shard is a forked child running :func:`shard_worker_main`: a
blocking request/response loop over a :mod:`multiprocessing` pipe.  The
shard owns a private :class:`~repro.eval.store.PackedSweepStore` under
``<cache_dir>/shard-<index>`` — shared-nothing by construction, so the
store's offset index, mmaps and LRU hit tier stay hot for exactly the
key range the consistent-hash ring routes here, and no cross-process
lock ever serializes the planes.

Wire protocol (pickled tuples, sequence-numbered)::

    ("ping",        seq)                          -> ("pong", seq, stats)
    ("design_jobs", seq, jobs, timeout_s, attempt) -> ("ok", seq, metrics)
                                                  |  ("error", seq, info_dict)
    ("shutdown",)                                 -> (loop exits, store closed)

Failure contract: expected failures — anything in the
:class:`~repro.errors.ReproError` taxonomy plus ``OSError`` — travel
back as :class:`~repro.api.schema.ErrorInfo` dicts and the worker keeps
serving.  Anything else is a bug: the worker re-raises, the process
dies, and the supervisor's respawn policy takes over (crash-mode
failpoints at ``serving.shard_call`` exercise exactly that path with a
real ``os._exit``).
"""

from __future__ import annotations

import os

from repro.errors import ReproError
from repro.eval.parallel import run_design_jobs
from repro.eval.store import PackedSweepStore
from repro.reliability import failpoints
from repro.reliability.failpoints import mark_worker_process

#: Failpoint site armed around every shard-side batch evaluation.
SHARD_CALL_SITE = "serving.shard_call"


def shard_store_path(cache_dir, shard_index: int) -> str | None:
    """The private store directory of one shard (``None`` -> no store)."""
    if cache_dir is None:
        return None
    return os.path.join(os.fspath(cache_dir), f"shard-{shard_index}")


def shard_worker_main(
    conn,
    shard_index: int,
    cache_dir=None,
    vectorized: bool = True,
) -> None:
    """Blocking request loop of one shard process (fork target)."""
    # ErrorInfo pulls the schema layer in; import here so the parent's
    # import graph decides nothing about the child.
    from repro.api.schema import ErrorInfo

    mark_worker_process()  # crash-mode failpoints hard-exit this process
    store = None
    store_path = shard_store_path(cache_dir, shard_index)
    if store_path is not None:
        store = PackedSweepStore(store_path)
    jobs_done = 0
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "shutdown":
                return
            seq = message[1]
            if kind == "ping":
                conn.send(("pong", seq, {"shard": shard_index, "jobs_done": jobs_done}))
                continue
            if kind != "design_jobs":
                conn.send(
                    (
                        "error",
                        seq,
                        ErrorInfo(
                            error_type="SchemaError",
                            message=f"unknown shard message kind {kind!r}",
                            source=f"shard-{shard_index}",
                        ).to_dict(),
                    )
                )
                continue
            _, seq, jobs, timeout_s, attempt = message
            try:
                # The deterministic chaos hook: io_error mode raises and
                # travels back as a retryable envelope; crash mode kills
                # this process for real and the supervisor respawns it.
                failpoints.inject(SHARD_CALL_SITE, shard_index, seq, attempt)
                metrics = run_design_jobs(
                    list(jobs),
                    num_workers=1,
                    cache=store,
                    vectorized=vectorized,
                    timeout=timeout_s,
                )
            except (ReproError, OSError) as exc:
                conn.send(
                    (
                        "error",
                        seq,
                        ErrorInfo.from_exception(
                            exc, source=f"shard-{shard_index}"
                        ).to_dict(),
                    )
                )
                continue
            jobs_done += len(metrics)
            conn.send(("ok", seq, metrics))
    except (EOFError, OSError, KeyboardInterrupt):
        # Parent went away (or is tearing us down): exit quietly.
        return
    finally:
        if store is not None:
            store.close()
