"""Warm response tier of the serving front door.

Every evaluation the substrate performs is a pure function of the
request payload — that is the repo's reproducibility contract (stores
replay byte-identical metrics, failpoint recovery is byte-identical,
the RNG plane is seed-addressed).  The serving plane exploits it:
successful ``POST /v1/payload`` responses are memoized by their exact
request body bytes, so a repeated request is answered from memory
without touching the admission gate, the scatter pool, or a shard
pipe.

Design points:

- **Keyed by raw body bytes.**  The client's ``schema_version`` lives
  inside the body, so a v1 client's downgraded response can never be
  served to a v2 client — different bytes, different key.  Semantically
  equal bodies with different key order simply miss; the cache is a
  fast path, not a correctness layer.
- **Only 200s are stored.**  Error envelopes (overload, deadline,
  shard loss) describe the plane's state at one instant and must never
  outlive it.
- **Bounded LRU.**  ``max_entries`` caps memory; the eviction order is
  recency of *use*, so a steady working set stays resident under churn.
- **Loop-safe.**  ``get``/``put`` are dict moves under a lock — no IO,
  no blocking calls — so the event loop may consult the cache directly
  (RED008-clean).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ParameterError


class ResponseCache:
    """Bounded LRU of successful wire responses, keyed by body bytes."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ParameterError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, body: bytes):
        """The cached 200 payload for ``body``, or ``None`` (a miss)."""
        with self._lock:
            payload = self._entries.get(body)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(body)
            self.hits += 1
            return payload

    def put(self, body: bytes, payload: dict) -> None:
        """Remember a successful response; evicts the coldest entry."""
        with self._lock:
            self._entries[body] = payload
            self._entries.move_to_end(body)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Health-endpoint counters (cheap, loop-safe)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
