"""Per-shard circuit breaker over the transient/permanent taxonomy.

The breaker protects the rest of the plane from a shard that keeps
failing: after ``failure_threshold`` *consecutive* transient failures
(only failures :func:`~repro.reliability.policy.is_retryable` classifies
as transient are recorded) the circuit opens and the runner stops
calling the shard — its key range reroutes to the degraded in-process
fallback.  After ``cooldown_s`` the circuit half-opens and exactly one
probe call is let through: success closes the circuit, failure re-opens
it for another cooldown.

The clock is injectable (``time.monotonic`` by default) so tests drive
open -> half-open -> closed transitions deterministically without
sleeping — the same pattern as
:class:`~repro.reliability.policy.Deadline`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ParameterError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-transient-failure breaker with a half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not cooldown_s > 0:
            raise ParameterError(f"cooldown_s must be > 0, got {cooldown_s!r}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_taken = False
        self.opened_total = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        """``closed``/``open``/``half_open`` — cooldown expiry applied."""
        with self._lock:
            self._tick()
            return self._state

    def _tick(self) -> None:
        # Lock held.  OPEN ages into HALF_OPEN once the cooldown passes.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_taken = False

    def allow(self) -> bool:
        """May the caller contact the shard right now?

        CLOSED always allows.  OPEN refuses until the cooldown elapses.
        HALF_OPEN allows exactly one probe; concurrent callers behind
        the probe are refused until it resolves via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_taken:
                self._probe_taken = True
                return True
            return False

    def record_success(self) -> None:
        """A call came back healthy: close the circuit, reset the count."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_taken = False

    def record_failure(self) -> None:
        """A *transient* call failure (feed only ``is_retryable`` ones).

        A failed half-open probe re-opens immediately; in CLOSED the
        circuit opens once the consecutive count reaches the threshold.
        """
        with self._lock:
            self._tick()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._open()
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        # Lock held.
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_taken = False
        self.opened_total += 1
