"""Asyncio HTTP/JSON front door over the sharded evaluation plane.

One :class:`ServingServer` owns the whole vertical: admission gate ->
request thread pool -> :class:`~repro.api.service.RedService` (with a
:class:`~repro.serving.runner.ShardedRunner` injected as its
``design_runner``) -> shard supervisor -> worker processes.  The event
loop only parses bytes and routes; every blocking step (schema
validation, evaluation, shard pipes, store IO) runs on the executor —
enforced by the RED008 lint rule, which bans blocking calls inside
``async def`` bodies in this package.

Wire protocol (HTTP/1.1, JSON bodies)::

    GET  /healthz      -> 200 {"status": "ok"|"draining", shards, gate}
    GET  /readyz       -> 200 ready | 503 {"status": ...} (draining,
                          no running shard, or heartbeats dead)
    POST /v1/payload   -> any request payload from repro.api.schema
                          (``payload_from_dict`` dispatch); the
                          response is the matching result payload, or
                          an ``error_info`` envelope

Request headers: ``X-Red-Timeout-S`` propagates a per-request deadline
into the substrate's ``Deadline``/``timeout=`` plumbing;
``X-Red-Attempt`` is the client's retry counter, threaded into every
failpoint draw so retried requests re-roll deterministically.

Status mapping (taxonomy -> HTTP): draining -> 503 (permanent for this
server), overload -> 429 with ``Retry-After``, deadline -> 504, other
transients -> 503, permanent errors -> 400.  Responses to a client
that spoke ``schema_version: 1`` are rewritten through
:func:`~repro.api.schema.downgrade_payload` so old clients keep
parsing.

Graceful drain (SIGTERM): stop admitting (new requests -> 503
draining), flush in-flight work, close stores and shards, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from repro.api.schema import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ErrorInfo,
    downgrade_payload,
    payload_from_dict,
)
from repro.api.service import RedService
from repro.errors import (
    DrainingError,
    EvaluationTimeoutError,
    OverloadedError,
    ParameterError,
    ReproError,
    SchemaError,
)
from repro.reliability import failpoints
from repro.reliability.policy import is_retryable
from repro.serving.admission import AdmissionGate
from repro.serving.respcache import ResponseCache
from repro.serving.runner import ShardedRunner
from repro.serving.supervisor import ShardSupervisor

#: Failpoint site armed at request admission (front-door ingress).
ACCEPT_SITE = "serving.accept"

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


def _status_for(exc: BaseException) -> int:
    """The HTTP status the failure taxonomy assigns to an exception."""
    if isinstance(exc, DrainingError):
        return 503
    if isinstance(exc, OverloadedError):
        return 429
    if isinstance(exc, EvaluationTimeoutError):
        return 504
    if is_retryable(exc, follow_cause=True):
        return 503
    return 400


class ServingServer:
    """The resilient sharded serving plane, one object end to end.

    Args:
        host / port: bind address (``port=0`` picks a free port;
            :attr:`port` reports the bound one after :meth:`start`).
        num_shards: supervised worker processes.
        cache_dir: parent directory for the per-shard packed stores.
        vectorized: substrate plane selection, forwarded everywhere.
        max_inflight / max_queue / retry_after_base_s: admission gate
            tuning (:class:`~repro.serving.admission.AdmissionGate`).
        fallback: reroute circuit-broken/dead shard partitions to the
            degraded in-process tier (:class:`ShardedRunner`).
        failure_threshold / cooldown_s: per-shard circuit breaker.
        respawn_budget / sleeper: shard supervisor restart contract.
        call_timeout_s: hard per-shard-call budget when a request
            carries no deadline.
        drain_timeout_s: longest :meth:`drain` waits for in-flight
            requests before tearing down anyway.
        response_cache_entries: size of the warm response tier
            (:class:`~repro.serving.respcache.ResponseCache`) memoizing
            successful evaluation responses by request bytes — sound
            because evaluation is a pure function of the payload.
            ``0`` disables the tier (every request hits the shards).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int = 2,
        cache_dir=None,
        vectorized: bool = True,
        max_inflight: int = 8,
        max_queue: int = 32,
        retry_after_base_s: float = 0.05,
        fallback: bool = True,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        respawn_budget: int = 2,
        sleeper=None,
        call_timeout_s: float = 60.0,
        drain_timeout_s: float = 30.0,
        response_cache_entries: int = 256,
    ) -> None:
        if not drain_timeout_s > 0:
            raise ParameterError(
                f"drain_timeout_s must be > 0, got {drain_timeout_s!r}"
            )
        self.host = host
        self._requested_port = port
        self.drain_timeout_s = drain_timeout_s
        self.gate = AdmissionGate(
            max_inflight=max_inflight,
            max_queue=max_queue,
            retry_after_base_s=retry_after_base_s,
        )
        self.supervisor = ShardSupervisor(
            num_shards=num_shards,
            cache_dir=cache_dir,
            vectorized=vectorized,
            respawn_budget=respawn_budget,
            sleeper=sleeper,
            call_timeout_s=call_timeout_s,
        )
        self._runner_kwargs = {
            "fallback": fallback,
            "failure_threshold": failure_threshold,
            "cooldown_s": cooldown_s,
        }
        self._vectorized = vectorized
        self.respcache = (
            ResponseCache(response_cache_entries)
            if response_cache_entries
            else None
        )
        self.runner: ShardedRunner | None = None
        self.service: RedService | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="red-serve"
        )
        self._lsock: socket.socket | None = None
        self._accept_task: asyncio.Task | None = None
        self._bound_port = 0
        self._writers: set = set()
        self._handlers: set = set()
        self._drain_started = asyncio.Event()
        self._drained = False
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Set once the listening socket is bound — lets another thread
        #: (tests, the bench harness) wait for readiness.
        self.ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`).

        Cached at bind time: it must stay readable while (and after)
        the drain path closes the listening sockets.
        """
        return self._bound_port if self._bound_port else self._requested_port

    async def start(self) -> "ServingServer":
        """Spawn the shards and bind the listening socket."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        await loop.run_in_executor(self._pool, self.supervisor.start)
        self.runner = ShardedRunner(self.supervisor, **self._runner_kwargs)
        self.service = RedService(
            vectorized=self._vectorized, design_runner=self.runner
        )
        self._lsock = self._bind_socket()
        self._accept_task = loop.create_task(self._accept_loop(loop))
        self.ready.set()
        return self

    def _bind_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(128)
        sock.setblocking(False)
        self._bound_port = sock.getsockname()[1]
        return sock

    async def _accept_loop(self, loop) -> None:
        """Own the accept pipeline end to end.

        Every accepted socket gets an owning, tracked task
        *synchronously* — before the next await — so drain can always
        account for it.  ``asyncio.start_server`` is deliberately not
        used: a connection it accepts just before ``Server.close()``
        may have its transport built after the close, which trips
        ``Server._attach``'s assertion and strands the accepted socket
        with no owner — the client then blocks until its own timeout.
        """
        while True:
            try:
                conn, _addr = await loop.sock_accept(self._lsock)
            except asyncio.CancelledError:
                return
            except OSError:
                if self._drain_started.is_set():
                    return
                continue
            task = loop.create_task(self._serve_connection(loop, conn))
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)

    async def _serve_connection(self, loop, conn) -> None:
        try:
            reader = asyncio.StreamReader(loop=loop)
            protocol = asyncio.StreamReaderProtocol(reader, loop=loop)
            transport, _ = await loop.connect_accepted_socket(
                lambda: protocol, conn
            )
        except asyncio.CancelledError:
            conn.close()
            raise
        except OSError:
            conn.close()
            return
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        await self._handle_client(reader, writer)

    async def drain(self) -> None:
        """Graceful shutdown: shed, flush, stop accepting, close."""
        if self._drained:
            return
        self._drained = True
        self._drain_started.set()
        self.gate.begin_drain()
        loop = asyncio.get_running_loop()
        # In-flight requests hold gate slots; wait for the last
        # release.  The accept loop keeps running meanwhile, so a
        # connect racing the drain gets its 503 envelope instead of a
        # dead socket.
        await loop.run_in_executor(
            None, self.gate.wait_idle, self.drain_timeout_s
        )
        if self._accept_task is not None:
            self._accept_task.cancel()
            try:
                await self._accept_task
            except asyncio.CancelledError:
                pass
            self._accept_task = None
        if self._lsock is not None:
            # Closing the listener resets whatever is still in the
            # kernel backlog — refused beats waiting forever.
            self._lsock.close()
            self._lsock = None
        await self._settle_connections(loop)
        await loop.run_in_executor(None, self._close_backends)
        self._pool.shutdown(wait=True)

    async def _settle_connections(self, loop) -> None:
        """Answer or close every accepted connection before the loop dies.

        ``asyncio.run`` tears down whatever is still pending once
        :meth:`_run_async` returns; a connection task cancelled before
        its response was flushed leaves its client blocked on an
        ESTABLISHED socket that only the garbage collector will close
        — a silent hang until the client's own timeout.  Give handlers
        a short grace to write their final bytes (the gate is already
        idle, so only draining 503s and health probes remain), then
        cancel stragglers and force the FINs out.
        """
        grace = min(1.0, self.drain_timeout_s)
        deadline = loop.time() + grace
        while True:
            pending = {task for task in self._handlers if not task.done()}
            if not pending and not self._writers:
                return
            remaining = deadline - loop.time()
            if remaining <= 0 or not pending:
                break
            await asyncio.wait(pending, timeout=remaining)
        for task in tuple(self._handlers):
            task.cancel()
        pending = {task for task in self._handlers if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=grace)
        for writer in tuple(self._writers):
            self._writers.discard(writer)
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), timeout=0.25)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    def _close_backends(self) -> None:
        # Blocking teardown, executor-side: service thread pool, scatter
        # pool, shard processes and their stores.
        if self.service is not None:
            self.service.close()
        if self.runner is not None:
            self.runner.close()
        self.supervisor.stop()

    def run(self, install_signals: bool = True) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT, drain, 0.

        ``install_signals=False`` is the embedded mode (tests, bench
        harness): the loop runs in a worker thread — where signal
        handlers cannot be installed — and :meth:`request_drain` is the
        shutdown trigger instead.
        """
        return asyncio.run(self._run_async(install_signals))

    def request_drain(self) -> None:
        """Thread-safe drain trigger (what the SIGTERM handler does).

        Idempotent and safe at any lifecycle point — asking an
        already-drained server (closed loop) to drain is a no-op.
        """
        if self._loop is None:
            self._drain_started.set()
            return
        try:
            self._loop.call_soon_threadsafe(self._drain_started.set)
        except RuntimeError:
            pass  # loop already closed: the drain has happened

    async def _run_async(self, install_signals: bool = True) -> int:
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._drain_started.set)
        await self._drain_started.wait()
        await self.drain()
        return 0

    # ------------------------------------------------------------------
    # HTTP plumbing (event loop side: parse and route only)
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except SchemaError as exc:
                    info = ErrorInfo.from_exception(exc, source="serving.http")
                    await self._respond(writer, 400, info.to_dict(), {}, False)
                    return
                if request is None:
                    return
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload, extra = await self._route(
                    method, path, headers, body
                )
                await self._respond(writer, status, payload, extra, keep_alive)
                if not keep_alive or self.gate.draining:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _read_request(self, reader):
        """One parsed HTTP/1.1 request, or ``None`` at EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError as exc:
            raise SchemaError("request head too large") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise SchemaError("request head too large")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise SchemaError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise SchemaError(f"request body of {length} bytes exceeds the cap")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, method, path, headers, body):
        """Dispatch one request; returns ``(status, json_payload, extra)``."""
        loop = asyncio.get_running_loop()
        if method == "GET" and path == "/healthz":
            return 200, self._health_payload(), {}
        if method == "GET" and path == "/readyz":
            return await loop.run_in_executor(self._pool, self._readyz)
        if method == "POST" and path == "/v1/payload":
            return await self._payload(loop, headers, body)
        info = ErrorInfo(
            error_type="SchemaError",
            message=f"no route for {method} {path}",
            source="serving.route",
        )
        return 404, info.to_dict(), {}

    async def _payload(self, loop, headers, body):
        """The evaluation route: warm tier, else admit and hand off."""
        timeout_s, attempt, error = self._request_meta(headers)
        if error is not None:
            return 400, error.to_dict(), {}
        if self.respcache is not None and not self.gate.draining:
            hit = self.respcache.get(body)
            if hit is not None:
                # The ingress failpoint still draws on the warm tier:
                # chaos coverage of the front door must not shrink just
                # because the answer is memoized.
                try:
                    failpoints.inject(ACCEPT_SITE, zlib.crc32(body), attempt)
                except (ReproError, OSError) as exc:
                    info = ErrorInfo.from_exception(
                        exc, source="serving.dispatch"
                    )
                    return (
                        _status_for(exc),
                        info.to_dict(),
                        self._retry_headers(exc),
                    )
                return 200, hit, {}
        try:
            self.gate.admit()
        except (DrainingError, OverloadedError) as exc:
            info = ErrorInfo.from_exception(exc, source="serving.admission")
            return _status_for(exc), info.to_dict(), self._retry_headers(exc)
        try:
            return await loop.run_in_executor(
                self._pool, self._process, body, timeout_s, attempt
            )
        finally:
            self.gate.release()

    def _request_meta(self, headers):
        """Parse the deadline/attempt headers (400 on malformed values)."""
        timeout_s = None
        raw = headers.get("x-red-timeout-s")
        if raw is not None:
            try:
                timeout_s = float(raw)
            except ValueError:
                timeout_s = -1.0
            if not timeout_s > 0:
                return None, 0, ErrorInfo(
                    error_type="SchemaError",
                    message=f"X-Red-Timeout-S must be a positive number, got {raw!r}",
                    source="serving.headers",
                )
        try:
            attempt = int(headers.get("x-red-attempt", "0") or "0")
        except ValueError:
            attempt = -1
        if attempt < 0:
            return None, 0, ErrorInfo(
                error_type="SchemaError",
                message="X-Red-Attempt must be a non-negative integer",
                source="serving.headers",
            )
        return timeout_s, attempt, None

    @staticmethod
    def _retry_headers(exc) -> dict:
        retry_after = getattr(exc, "retry_after_s", None)
        if retry_after is None:
            return {}
        return {"Retry-After": str(max(1, round(retry_after)))}

    # ------------------------------------------------------------------
    # Executor side (blocking work lives here, never in the loop)
    # ------------------------------------------------------------------
    def _process(self, body: bytes, timeout_s, attempt: int):
        """Decode -> dispatch -> encode, entirely on a worker thread."""
        client_version = SCHEMA_VERSION
        try:
            failpoints.inject(ACCEPT_SITE, zlib.crc32(body), attempt)
            try:
                wire = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise SchemaError(f"request body is not valid JSON: {exc}") from exc
            if (
                isinstance(wire, dict)
                and wire.get("schema_version") in SUPPORTED_SCHEMA_VERSIONS
            ):
                client_version = wire["schema_version"]
            request = payload_from_dict(wire)
            self.runner.set_attempt(attempt)
            handler = self.service._handler_for(request)
            result = handler(request, timeout=timeout_s)
        except (ReproError, OSError) as exc:
            info = ErrorInfo.from_exception(exc, source="serving.dispatch")
            payload = info.to_dict()
            if client_version < SCHEMA_VERSION:
                payload = downgrade_payload(payload, client_version)
            return _status_for(exc), payload, self._retry_headers(exc)
        payload = result.to_dict()
        if client_version < SCHEMA_VERSION:
            payload = downgrade_payload(payload, client_version)
        if self.respcache is not None:
            # Only settled successes enter the warm tier; the key is the
            # raw body, so a v1 client's downgraded payload can never be
            # replayed to a v2 client.
            self.respcache.put(body, payload)
        return 200, payload, {}

    def _readyz(self):
        """Readiness: not draining, and a live heartbeat from any shard."""
        if self.gate.draining:
            info = ErrorInfo.from_exception(
                DrainingError("server is draining"), source="serving.readyz"
            )
            return 503, info.to_dict(), {}
        beats = self.supervisor.heartbeat_all()
        alive = sum(1 for beat in beats.values() if beat.get("alive"))
        payload = self._health_payload()
        payload["heartbeats"] = {str(k): v for k, v in beats.items()}
        if alive == 0:
            payload["status"] = "no-running-shard"
            return 503, payload, {}
        return 200, payload, {}

    def _health_payload(self) -> dict:
        """Liveness body: cheap, no pipe IO (loop-safe)."""
        return {
            "status": "draining" if self.gate.draining else "ok",
            "schema_version": SCHEMA_VERSION,
            "supported_schema_versions": sorted(SUPPORTED_SCHEMA_VERSIONS),
            "shards": {
                str(k): v for k, v in self.supervisor.states().items()
            },
            "gate": {
                "inflight": self.gate.inflight,
                "capacity": self.gate.capacity,
                "admitted_total": self.gate.admitted_total,
                "shed_total": self.gate.shed_total,
            },
            "degraded_calls": 0 if self.runner is None else self.runner.degraded_calls,
            "response_cache": (
                {"hits": 0, "misses": 0, "entries": 0, "max_entries": 0}
                if self.respcache is None
                else self.respcache.stats()
            ),
        }

    async def _respond(self, writer, status, payload, extra, keep_alive) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            429: "Too Many Requests",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "Error")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"X-Red-Schema-Version: {SCHEMA_VERSION}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
