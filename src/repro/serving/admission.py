"""Bounded admission: deterministic load shedding and drain.

The gate is the server's first line of defence: every request must
acquire a slot before any work happens.  Capacity is two-tier —
``max_inflight`` requests execute concurrently and up to ``max_queue``
more may wait behind them (the dispatch executor is sized to
``max_inflight``, so "waiting" is literal queueing there).  Beyond
that the gate sheds deterministically: the same occupancy always
produces the same :class:`~repro.errors.OverloadedError`, whose
``retry_after_s`` hint scales linearly with the backlog so clients
back off harder the deeper the overload.

Draining flips one latch: new admissions fail fast with
:class:`~repro.errors.DrainingError` (permanent — resend elsewhere)
while already-admitted requests keep their slots until they release
them; :meth:`AdmissionGate.wait_idle` is the drain barrier.

Thread-safe — the asyncio front door admits from the event loop while
executor threads release, and tests drive it from many threads at once.
"""

from __future__ import annotations

import threading

from repro.errors import DrainingError, OverloadedError, ParameterError


class AdmissionGate:
    """Counted two-tier admission with a drain latch.

    Args:
        max_inflight: concurrently executing requests (>= 1).
        max_queue: extra admitted-but-queued requests beyond
            ``max_inflight`` (>= 0).
        retry_after_base_s: backoff hint unit; a shed request is told
            to wait ``base * (queued_over_capacity + 1)`` seconds.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        retry_after_base_s: float = 0.05,
    ) -> None:
        if max_inflight < 1:
            raise ParameterError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ParameterError(f"max_queue must be >= 0, got {max_queue}")
        if not retry_after_base_s > 0:
            raise ParameterError(
                f"retry_after_base_s must be > 0, got {retry_after_base_s!r}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after_base_s = retry_after_base_s
        self._admitted = 0
        self.shed_total = 0
        self.admitted_total = 0
        self._draining = False
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)

    @property
    def capacity(self) -> int:
        """Total admitted requests the gate tolerates at once."""
        return self.max_inflight + self.max_queue

    @property
    def inflight(self) -> int:
        """Currently admitted (executing + queued) requests."""
        with self._lock:
            return self._admitted

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def admit(self) -> None:
        """Take a slot or raise; pair every success with :meth:`release`.

        Raises:
            DrainingError: the server is shutting down — permanent.
            OverloadedError: the queue is full — retryable, with a
                ``retry_after_s`` hint proportional to the backlog.
        """
        with self._lock:
            if self._draining:
                raise DrainingError(
                    "server is draining; no new work is admitted"
                )
            if self._admitted >= self.capacity:
                self.shed_total += 1
                backlog = self._admitted - self.max_inflight + 1
                raise OverloadedError(
                    f"admission queue full ({self._admitted} in flight, "
                    f"capacity {self.capacity})",
                    retry_after_s=self.retry_after_base_s * backlog,
                )
            self._admitted += 1
            self.admitted_total += 1

    def release(self) -> None:
        """Return a slot taken by :meth:`admit`."""
        with self._idle:
            if self._admitted <= 0:
                raise ParameterError("release() without a matching admit()")
            self._admitted -= 1
            if self._admitted == 0:
                self._idle.notify_all()

    def begin_drain(self) -> None:
        """Flip the drain latch: every future :meth:`admit` fails fast."""
        with self._lock:
            self._draining = True

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every admitted request released (the drain barrier).

        Returns ``False`` if ``timeout`` elapsed with work still in
        flight.
        """
        with self._idle:
            return self._idle.wait_for(lambda: self._admitted == 0, timeout)

    def __enter__(self) -> "AdmissionGate":
        self.admit()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
