"""The sharded evaluation substrate behind the serving front door.

:class:`ShardedRunner` is a drop-in for
:func:`~repro.eval.parallel.run_design_jobs` — same signature, same
ordered-results contract — that scatters the work list across the
supervised shard processes and merges the replies:

1. the batched :func:`~repro.eval.parallel.job_keys` pass keys every
   job exactly as the cache tier would;
2. the consistent-hash ring partitions the key list so each shard's
   private store stays hot for its range;
3. per-shard partitions dispatch concurrently on a thread pool; each
   dispatch consults that shard's circuit breaker first;
4. replies merge back into request order (``serving.merge`` failpoint
   armed around the merge).

Robustness: a transient shard failure
(:func:`~repro.reliability.policy.is_retryable`) feeds the breaker and
reroutes that partition to the degraded in-process fallback — the
caller still gets complete results, just slower.  With the fallback
disabled the transient surfaces as
:class:`~repro.errors.ShardUnavailableError`, which
:meth:`RedService.sweep <repro.api.service.RedService.sweep>` turns
into a *partial* :class:`~repro.api.schema.SweepResult` whose
``failures`` name the strides the dead shard owned.  Permanent errors
always surface unchanged.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ParameterError, ShardUnavailableError
from repro.eval.parallel import job_keys, run_design_jobs
from repro.reliability import failpoints
from repro.reliability.policy import is_retryable
from repro.serving.breaker import CircuitBreaker
from repro.serving.ring import HashRing

#: Failpoint site armed around the ordered result merge.
MERGE_SITE = "serving.merge"


class ShardedRunner:
    """Scatter/gather ``run_design_jobs`` over supervised shards.

    Args:
        supervisor: a started
            :class:`~repro.serving.supervisor.ShardSupervisor`.
        fallback: reroute a transiently-failing partition to an
            in-process :func:`run_design_jobs` call (the degraded tier;
            counted in :attr:`degraded_calls`).  ``False`` surfaces
            :class:`~repro.errors.ShardUnavailableError` instead so the
            service tier can build partial results.
        failure_threshold / cooldown_s / clock: per-shard
            :class:`~repro.serving.breaker.CircuitBreaker` tuning.
        replicas: virtual nodes per shard on the hash ring.
    """

    def __init__(
        self,
        supervisor,
        fallback: bool = True,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock=None,
        replicas: int = 128,
    ) -> None:
        self.supervisor = supervisor
        self.fallback = fallback
        self.ring = HashRing(supervisor.shard_ids, replicas=replicas)
        breaker_kwargs = {
            "failure_threshold": failure_threshold,
            "cooldown_s": cooldown_s,
        }
        if clock is not None:
            breaker_kwargs["clock"] = clock
        self.breakers = {
            shard_id: CircuitBreaker(**breaker_kwargs)
            for shard_id in supervisor.shard_ids
        }
        self.degraded_calls = 0
        self._pool = ThreadPoolExecutor(
            max_workers=len(supervisor.shard_ids),
            thread_name_prefix="red-scatter",
        )
        self._local = threading.local()
        self._closed = False

    # ------------------------------------------------------------------
    # Attempt token: the wire layer stamps the client's X-Red-Attempt
    # here so retried requests draw fresh failpoint decisions while the
    # draw stays a pure function of (seed, site, tokens).
    # ------------------------------------------------------------------
    @property
    def attempt(self) -> int:
        return getattr(self._local, "attempt", 0)

    def set_attempt(self, attempt: int) -> None:
        if attempt < 0:
            raise ParameterError(f"attempt must be >= 0, got {attempt}")
        self._local.attempt = attempt

    # ------------------------------------------------------------------
    # The run_design_jobs-shaped entry point
    # ------------------------------------------------------------------
    def __call__(
        self,
        jobs,
        num_workers: int = 1,
        cache=None,
        chunk_size: int | None = None,
        vectorized: bool = True,
        timeout: float | None = None,
        retry_policy=None,
    ):
        """Evaluate every job, in order, scattered across the shards.

        ``num_workers``/``cache``/``chunk_size``/``retry_policy`` are
        accepted for signature compatibility but owned by the shards
        (each runs its own store and pool settings) — the serving plane
        is shared-nothing on purpose.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        attempt = self.attempt
        partitions = self.ring.partition(job_keys(jobs))
        ordered = sorted(partitions.items())
        futures = [
            self._pool.submit(
                self._call_shard,
                shard_id,
                [jobs[i] for i in indices],
                timeout,
                vectorized,
                attempt,
            )
            for shard_id, indices in ordered
        ]
        results: list = [None] * len(jobs)
        first_error = None
        for (shard_id, indices), future in zip(ordered, futures):
            # exception() blocks like result() but hands the failure
            # over without raising, so every partition is drained (no
            # abandoned futures) before the first failure surfaces.
            exc = future.exception()
            if exc is not None:
                if first_error is None:
                    first_error = exc
                continue
            for index, metric in zip(indices, future.result()):
                results[index] = metric
        if first_error is not None:
            raise first_error
        failpoints.inject(MERGE_SITE, len(jobs), attempt)
        return results

    def _call_shard(self, shard_id, sub_jobs, timeout, vectorized, attempt):
        """One partition: breaker -> shard -> (maybe) degraded fallback."""
        breaker = self.breakers[shard_id]
        if not breaker.allow():
            return self._degraded(
                shard_id,
                sub_jobs,
                timeout,
                vectorized,
                ShardUnavailableError(
                    f"shard-{shard_id} circuit is {breaker.state}"
                ),
            )
        try:
            metrics = self.supervisor.call(
                shard_id, sub_jobs, timeout=timeout, attempt=attempt
            )
        except Exception as exc:
            if not is_retryable(exc):
                raise
            breaker.record_failure()
            return self._degraded(shard_id, sub_jobs, timeout, vectorized, exc)
        breaker.record_success()
        return metrics

    def _degraded(self, shard_id, sub_jobs, timeout, vectorized, cause):
        """In-process rescue of one partition, or surface the cause."""
        if not self.fallback:
            raise cause
        self.degraded_calls += 1
        return run_design_jobs(
            sub_jobs,
            num_workers=1,
            cache=None,
            vectorized=vectorized,
            timeout=timeout,
        )

    def close(self) -> None:
        """Stop the scatter pool (the supervisor is its owner's to stop)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
