"""The resilient sharded serving plane (see README.md in this package).

Composition, bottom up:

* :mod:`~repro.serving.ring` — consistent-hash routing of
  :func:`~repro.eval.parallel.job_keys` ranges to shards;
* :mod:`~repro.serving.shard` / :mod:`~repro.serving.supervisor` —
  supervised worker processes with respawn-budget-then-degrade;
* :mod:`~repro.serving.breaker` — per-shard circuit breaking over the
  transient/permanent taxonomy;
* :mod:`~repro.serving.runner` — the ``run_design_jobs``-shaped
  scatter/gather substrate injected into
  :class:`~repro.api.service.RedService`;
* :mod:`~repro.serving.admission` — bounded admission with
  deterministic load shedding and the drain latch;
* :mod:`~repro.serving.server` / :mod:`~repro.serving.client` — the
  asyncio HTTP/JSON front door and its blocking client.

Unlike the deterministic evaluation packages (RED006), this package may
touch the clock — but only through injectable seams (breaker ``clock``,
supervisor ``sleeper``), and never with blocking calls inside ``async``
bodies (RED008).
"""

from repro.serving.admission import AdmissionGate
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.client import ServingCallError, ServingClient
from repro.serving.ring import HashRing
from repro.serving.runner import ShardedRunner
from repro.serving.server import ServingServer
from repro.serving.supervisor import (
    DEGRADED,
    RESTARTING,
    RUNNING,
    STOPPED,
    ShardSupervisor,
)

__all__ = [
    "AdmissionGate",
    "CLOSED",
    "CircuitBreaker",
    "DEGRADED",
    "HALF_OPEN",
    "HashRing",
    "OPEN",
    "RESTARTING",
    "RUNNING",
    "STOPPED",
    "ServingCallError",
    "ServingClient",
    "ServingServer",
    "ShardSupervisor",
    "ShardedRunner",
]
